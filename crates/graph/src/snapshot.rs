//! Meta-data persistence for the Experiment Graph.
//!
//! The paper's EG lives for the lifetime of a collaborative environment;
//! a server restart must not forget it. This module serialises the
//! *meta-data* side of the graph — every vertex's
//! ⟨id, kind, frequency, compute-time, size, quality, description,
//! lineage⟩ — to a simple line-oriented format, without external
//! serialisation crates.
//!
//! Artifact *content* is deliberately not persisted: EG keeps meta-data
//! for all artifacts but content only for the materialized subset (§3.2),
//! and on restart contents repopulate as workloads execute (sources are
//! re-stored by the updater on their first appearance). A restored graph
//! therefore plans with full cost information immediately, and regains
//! reuse opportunities as content streams back in.
//!
//! Format (`EGSNAP 1`): one record per line, tab-separated, with `\`
//! escapes for tabs/newlines/backslashes in free-text fields.

use crate::artifact::{ArtifactId, NodeKind};
use crate::error::{GraphError, Result};
use crate::experiment::{EgVertex, ExperimentGraph};
use std::fmt::Write as _;
use std::path::Path;

const HEADER: &str = "EGSNAP 1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn kind_code(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Dataset => "D",
        NodeKind::Aggregate => "A",
        NodeKind::Model => "M",
    }
}

fn parse_kind(code: &str) -> Option<NodeKind> {
    match code {
        "D" => Some(NodeKind::Dataset),
        "A" => Some(NodeKind::Aggregate),
        "M" => Some(NodeKind::Model),
        _ => None,
    }
}

/// Serialise the graph's meta-data to a string.
#[must_use]
pub fn to_snapshot(eg: &ExperimentGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    for id in eg.topo_order() {
        let v = eg.vertex(*id).expect("topo order lists known vertices");
        let parents: Vec<String> = v.parents.iter().map(|p| format!("{:x}", p.0)).collect();
        let _ = writeln!(
            out,
            "{:x}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            v.id.0,
            kind_code(v.kind),
            v.frequency,
            v.compute_time,
            v.size,
            v.quality,
            v.op_hash
                .map_or_else(|| "-".to_owned(), |h| format!("{h:x}")),
            v.source_name
                .as_deref()
                .map_or_else(|| "-".to_owned(), escape),
            escape(&v.description),
            parents.join(","),
        );
    }
    out
}

fn parse_err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::InvalidStructure(format!("snapshot line {line}: {}", message.into()))
}

/// Rebuild a graph (meta-data only; empty content store with the given
/// dedup mode) from a snapshot string.
pub fn from_snapshot(text: &str, dedup: bool) -> Result<ExperimentGraph> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header == HEADER => {}
        other => {
            return Err(parse_err(
                1,
                format!(
                    "expected header {HEADER:?}, found {:?}",
                    other.map(|(_, l)| l)
                ),
            ))
        }
    }
    let mut eg = ExperimentGraph::new(dedup);
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 10 {
            return Err(parse_err(
                lineno + 1,
                format!("expected 10 fields, got {}", fields.len()),
            ));
        }
        let id = ArtifactId(
            u64::from_str_radix(fields[0], 16).map_err(|e| parse_err(lineno + 1, e.to_string()))?,
        );
        let kind = parse_kind(fields[1])
            .ok_or_else(|| parse_err(lineno + 1, format!("bad kind {:?}", fields[1])))?;
        let frequency = fields[2]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad frequency"))?;
        let compute_time = fields[3]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad compute time"))?;
        let size = fields[4]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad size"))?;
        let quality = fields[5]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad quality"))?;
        let op_hash = if fields[6] == "-" {
            None
        } else {
            Some(
                u64::from_str_radix(fields[6], 16)
                    .map_err(|e| parse_err(lineno + 1, e.to_string()))?,
            )
        };
        let source_name = if fields[7] == "-" {
            None
        } else {
            Some(unescape(fields[7]))
        };
        let description = unescape(fields[8]);
        let parents: Vec<ArtifactId> = if fields[9].is_empty() {
            Vec::new()
        } else {
            fields[9]
                .split(',')
                .map(|p| {
                    u64::from_str_radix(p, 16)
                        .map(ArtifactId)
                        .map_err(|e| parse_err(lineno + 1, e.to_string()))
                })
                .collect::<Result<_>>()?
        };
        for p in &parents {
            if !eg.contains(*p) {
                return Err(parse_err(
                    lineno + 1,
                    format!("parent {:x} referenced before definition", p.0),
                ));
            }
        }
        let vertex = EgVertex {
            id,
            kind,
            frequency,
            compute_time,
            size,
            quality,
            description,
            source_name,
            op_hash,
            parents,
            children: Vec::new(),
        };
        eg.restore_vertex(vertex)?;
    }
    Ok(eg)
}

/// Write a snapshot to disk.
pub fn save(eg: &ExperimentGraph, path: &Path) -> Result<()> {
    std::fs::write(path, to_snapshot(eg))
        .map_err(|e| GraphError::Io(format!("cannot write snapshot {}: {e}", path.display())))
}

/// Load a snapshot from disk.
pub fn load(path: &Path, dedup: bool) -> Result<ExperimentGraph> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| GraphError::Io(format!("cannot read snapshot {}: {e}", path.display())))?;
    from_snapshot(&text, dedup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;
    use crate::value::Value;
    use crate::workload::WorkloadDag;
    use co_dataframe::Scalar;
    use std::sync::Arc;

    struct Step(&'static str, NodeKind);
    impl Operation for Step {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            "p\tq".to_owned() // exercise escaping through op identity
        }
        fn output_kind(&self) -> NodeKind {
            self.1
        }
        fn run(&self, _inputs: &[&Value]) -> Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(0.0)))
        }
    }

    fn populated() -> ExperimentGraph {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("train\tcsv", Value::Aggregate(Scalar::Float(0.0)));
        let a = dag
            .add_op(Arc::new(Step("clean", NodeKind::Dataset)), &[s])
            .unwrap();
        let b = dag
            .add_op(Arc::new(Step("other", NodeKind::Dataset)), &[s])
            .unwrap();
        let m = dag
            .add_op(Arc::new(Step("train", NodeKind::Model)), &[a, b])
            .unwrap();
        dag.mark_terminal(m).unwrap();
        dag.annotate(a, 1.5, 100).unwrap();
        dag.annotate(b, 0.5, 200).unwrap();
        dag.annotate(m, 2.25, 50).unwrap();
        dag.node_mut(m).unwrap().quality = 0.875;
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        eg.update_with_workload(&dag).unwrap(); // bump frequencies
        eg
    }

    #[test]
    fn round_trips_meta_data() {
        let eg = populated();
        let restored = from_snapshot(&to_snapshot(&eg), true).unwrap();
        assert_eq!(restored.n_vertices(), eg.n_vertices());
        assert_eq!(restored.topo_order(), eg.topo_order());
        assert_eq!(restored.sources(), eg.sources());
        for id in eg.topo_order() {
            let a = eg.vertex(*id).unwrap();
            let b = restored.vertex(*id).unwrap();
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.frequency, b.frequency);
            assert_eq!(a.compute_time, b.compute_time);
            assert_eq!(a.size, b.size);
            assert_eq!(a.quality, b.quality);
            assert_eq!(a.op_hash, b.op_hash);
            assert_eq!(a.source_name, b.source_name);
            assert_eq!(a.parents, b.parents);
            let mut ca = a.children.clone();
            let mut cb = b.children.clone();
            ca.sort();
            cb.sort();
            assert_eq!(ca, cb);
        }
        // Content is not persisted: nothing is materialized.
        assert_eq!(restored.storage().n_artifacts(), 0);
        // Derived attributes recompute identically.
        assert_eq!(restored.recreation_costs(), eg.recreation_costs());
        assert_eq!(restored.potentials(), eg.potentials());
    }

    #[test]
    fn file_round_trip() {
        let eg = populated();
        let path = std::env::temp_dir().join("co_graph_snapshot_test.egsnap");
        save(&eg, &path).unwrap();
        let restored = load(&path, true).unwrap();
        assert_eq!(restored.n_vertices(), eg.n_vertices());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_snapshot("", true).is_err());
        assert!(from_snapshot("WRONG", true).is_err());
        assert!(from_snapshot("EGSNAP 1\nnot\tenough\tfields", true).is_err());
        // Parent referenced before definition.
        let bad = "EGSNAP 1\nff\tD\t1\t0\t0\t0\t-\t-\tdesc\taa";
        assert!(from_snapshot(bad, true).is_err());
    }

    #[test]
    fn escaping_survives_hostile_names() {
        assert_eq!(unescape(&escape("a\tb\\c\nd")), "a\tb\\c\nd");
        let eg = populated();
        let restored = from_snapshot(&to_snapshot(&eg), true).unwrap();
        let src = restored.sources()[0];
        assert_eq!(
            restored.vertex(src).unwrap().source_name.as_deref(),
            Some("train\tcsv")
        );
    }
}
