//! Artifact content: the `Value` a workload node evaluates to.
//!
//! Dataset and model payloads are `Arc`-backed, so cloning a `Value` is a
//! pointer bump, never a deep copy. This is what lets the server pipeline
//! hand executed artifacts from the lock-free execution stage to the
//! updater/materializer (and offer every computed dataframe to the
//! materializer) without copying column data: the same heap allocation is
//! shared by the workload DAG, the content store, and any in-flight
//! snapshot of planned loads.

use crate::artifact::NodeKind;
use co_dataframe::{DataFrame, Scalar};
use co_ml::TrainedModel;
use std::sync::Arc;

/// A trained model plus the quality attribute `q` of its Experiment Graph
/// vertex (paper §5: `0 <= q <= 1`, assigned by the evaluation function).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// The trained model.
    pub model: TrainedModel,
    /// Evaluation score in `[0, 1]`. Training operations assign an initial
    /// score; an explicit evaluation operation downstream refines it.
    pub quality: f64,
}

impl ModelArtifact {
    /// Wrap a model with a quality score (clamped into `[0, 1]`).
    #[must_use]
    pub fn new(model: TrainedModel, quality: f64) -> Self {
        ModelArtifact {
            model,
            quality: quality.clamp(0.0, 1.0),
        }
    }
}

/// The content of an artifact. Cloning is cheap: datasets and models are
/// behind `Arc`, aggregates are inline scalars.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A dataframe (shared, zero-copy clone).
    Dataset(Arc<DataFrame>),
    /// A scalar (evaluation score, row count, ...).
    Aggregate(Scalar),
    /// A trained model with its quality (shared, zero-copy clone).
    Model(Arc<ModelArtifact>),
}

impl Value {
    /// Wrap a dataframe.
    #[must_use]
    pub fn dataset(df: DataFrame) -> Self {
        Value::Dataset(Arc::new(df))
    }

    /// Wrap a model artifact.
    #[must_use]
    pub fn model(m: ModelArtifact) -> Self {
        Value::Model(Arc::new(m))
    }

    /// The artifact kind of this content.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        match self {
            Value::Dataset(_) => NodeKind::Dataset,
            Value::Aggregate(_) => NodeKind::Aggregate,
            Value::Model(_) => NodeKind::Model,
        }
    }

    /// Content size in bytes (the `s` vertex attribute).
    #[must_use]
    pub fn nbytes(&self) -> usize {
        match self {
            Value::Dataset(df) => df.nbytes(),
            Value::Aggregate(s) => s.nbytes(),
            Value::Model(m) => m.model.nbytes(),
        }
    }

    /// Meta-data description: schema digest for datasets, params digest
    /// for models.
    #[must_use]
    pub fn description(&self) -> String {
        match self {
            Value::Dataset(df) => df.schema().digest(),
            Value::Aggregate(s) => s.digest(),
            Value::Model(m) => {
                format!("{}:{}", m.model.kind().name(), m.model.params_digest())
            }
        }
    }

    /// Borrow the dataframe, if this is a dataset.
    #[must_use]
    pub fn as_dataset(&self) -> Option<&DataFrame> {
        match self {
            Value::Dataset(df) => Some(df),
            _ => None,
        }
    }

    /// The shared dataframe handle, if this is a dataset.
    #[must_use]
    pub fn as_dataset_arc(&self) -> Option<&Arc<DataFrame>> {
        match self {
            Value::Dataset(df) => Some(df),
            _ => None,
        }
    }

    /// Borrow the model artifact, if this is a model.
    #[must_use]
    pub fn as_model(&self) -> Option<&ModelArtifact> {
        match self {
            Value::Model(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the scalar, if this is an aggregate.
    #[must_use]
    pub fn as_aggregate(&self) -> Option<&Scalar> {
        match self {
            Value::Aggregate(s) => Some(s),
            _ => None,
        }
    }
}

impl From<DataFrame> for Value {
    fn from(df: DataFrame) -> Self {
        Value::dataset(df)
    }
}

impl From<ModelArtifact> for Value {
    fn from(m: ModelArtifact) -> Self {
        Value::model(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::{Column, ColumnData};
    use co_ml::linear::{LogisticParams, LogisticRegression};
    use co_ml::Matrix;

    #[test]
    fn kinds_and_sizes() {
        let df =
            DataFrame::new(vec![Column::source("t", "a", ColumnData::Int(vec![1, 2]))]).unwrap();
        let v = Value::dataset(df);
        assert_eq!(v.kind(), NodeKind::Dataset);
        assert_eq!(v.nbytes(), 16);
        assert!(v.as_dataset().is_some());
        assert!(v.as_model().is_none());

        let a = Value::Aggregate(Scalar::Float(0.9));
        assert_eq!(a.kind(), NodeKind::Aggregate);
        assert_eq!(a.as_aggregate(), Some(&Scalar::Float(0.9)));

        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let m = LogisticRegression::new(LogisticParams::default())
            .fit(&x, &[0.0, 1.0])
            .unwrap();
        let v = Value::model(ModelArtifact::new(TrainedModel::Logistic(m), 1.5));
        assert_eq!(v.kind(), NodeKind::Model);
        assert_eq!(v.as_model().unwrap().quality, 1.0); // clamped
        assert!(v.description().starts_with("logistic:"));
    }

    #[test]
    fn clones_share_the_payload() {
        let df = DataFrame::new(vec![Column::source(
            "t",
            "a",
            ColumnData::Float((0..10_000).map(f64::from).collect()),
        )])
        .unwrap();
        let v = Value::dataset(df);
        let w = v.clone();
        // Zero-copy: both values point at the same DataFrame allocation.
        let (a, b) = (v.as_dataset_arc().unwrap(), w.as_dataset_arc().unwrap());
        assert!(Arc::ptr_eq(a, b));
        assert_eq!(Arc::strong_count(a), 2);
    }
}
