//! Static value metadata for pre-execution workload validation.
//!
//! [`ValueMeta`] is the abstract-interpretation counterpart of
//! [`crate::value::Value`]: instead of column *contents* it carries the
//! inferred column *schema* (or model feature set), which the validator
//! propagates through a workload DAG without executing anything. Each
//! operation describes its schema transfer via [`crate::Operation::infer`];
//! the default is [`ValueMeta::Unknown`], so custom user operations remain
//! valid without extra work — unknown metadata simply suppresses downstream
//! checks instead of producing false rejections.

use co_dataframe::schema::{DType, InferredColumn};
use std::fmt;

/// Diagnostic class of a static-validation failure. Every class the
/// validator can reject is enumerated here so tests (and CI) can assert
/// on the *kind* of rejection, not on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaCode {
    /// An operation references a column its input does not have.
    MissingColumn,
    /// An operation would produce two columns with the same name.
    DuplicateColumn,
    /// A column exists but has a dtype the operation cannot accept.
    TypeMismatch,
    /// A join key is absent or non-integer on one of the sides.
    JoinKeyMismatch,
    /// An operation received the wrong number of inputs (supernode
    /// input-arity violation).
    ArityMismatch,
    /// An operation received a dataset where it needs a model, an
    /// aggregate where it needs a dataset, etc.
    BadInputKind,
    /// A model is asked to predict on a feature set diverging from the
    /// one it was (or will be) fitted on.
    FitPredictMismatch,
    /// An operation statically selects zero columns / zero features.
    EmptySelection,
    /// Operation parameters are malformed independent of any input.
    BadParams,
    /// Two structurally different operations share an op-hash — artifact
    /// identity would alias them in the Experiment Graph.
    HashCollision,
    /// A subgraph can never contribute to a requested terminal
    /// (reported as a warning, not a rejection).
    DeadSubgraph,
}

impl MetaCode {
    /// Short stable name used in diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MetaCode::MissingColumn => "missing-column",
            MetaCode::DuplicateColumn => "duplicate-column",
            MetaCode::TypeMismatch => "type-mismatch",
            MetaCode::JoinKeyMismatch => "join-key-mismatch",
            MetaCode::ArityMismatch => "arity-mismatch",
            MetaCode::BadInputKind => "bad-input-kind",
            MetaCode::FitPredictMismatch => "fit-predict-mismatch",
            MetaCode::EmptySelection => "empty-selection",
            MetaCode::BadParams => "bad-params",
            MetaCode::HashCollision => "op-hash-collision",
            MetaCode::DeadSubgraph => "dead-subgraph",
        }
    }
}

impl fmt::Display for MetaCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A static-validation failure raised by an operation's schema transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaError {
    /// Diagnostic class.
    pub code: MetaCode,
    /// Human-readable detail (op + columns involved).
    pub message: String,
}

impl MetaError {
    /// Build an error from a class and message.
    #[must_use]
    pub fn new(code: MetaCode, message: impl Into<String>) -> Self {
        MetaError {
            code,
            message: message.into(),
        }
    }

    /// A missing-column error naming the operation and column.
    #[must_use]
    pub fn missing_column(op: &str, column: &str) -> Self {
        MetaError::new(
            MetaCode::MissingColumn,
            format!("{op}: column {column:?} does not exist in the input"),
        )
    }

    /// A wrong-arity error naming expected vs. actual input counts.
    #[must_use]
    pub fn arity(op: &str, expected: &str, got: usize) -> Self {
        MetaError::new(
            MetaCode::ArityMismatch,
            format!("{op}: expects {expected} input(s), got {got}"),
        )
    }

    /// A wrong-input-kind error.
    #[must_use]
    pub fn bad_kind(op: &str, expected: &str, got: &str) -> Self {
        MetaError::new(
            MetaCode::BadInputKind,
            format!("{op}: expects a {expected} input, got {got}"),
        )
    }

    /// A dtype-mismatch error naming the column and what was required.
    #[must_use]
    pub fn type_mismatch(op: &str, column: &str, need: &str, got: DType) -> Self {
        MetaError::new(
            MetaCode::TypeMismatch,
            format!("{op}: column {column:?} must be {need}, found {got}"),
        )
    }
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for MetaError {}

/// Result alias for schema-transfer functions.
pub type MetaResult = Result<ValueMeta, MetaError>;

/// Statically inferred dataset schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DatasetMeta {
    /// Inferred columns in frame order; a `None` dtype is statically
    /// unknown (data-dependent promotion).
    pub columns: Vec<InferredColumn>,
    /// `true` when the *column set* itself is data-dependent (one-hot,
    /// vectorizers, select-k-best): downstream missing-column checks are
    /// suppressed, because the column may legitimately appear at runtime.
    pub open: bool,
}

impl DatasetMeta {
    /// A closed schema with fully known columns.
    #[must_use]
    pub fn closed(columns: Vec<InferredColumn>) -> Self {
        DatasetMeta {
            columns,
            open: false,
        }
    }

    /// An open schema: the listed columns exist, but others may too.
    #[must_use]
    pub fn open(columns: Vec<InferredColumn>) -> Self {
        DatasetMeta {
            columns,
            open: true,
        }
    }

    /// The inferred dtype of `name`, if the column is statically known.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Option<DType>> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, dt)| *dt)
    }

    /// Require `name` to exist. `Ok(Some(dtype))` when the column and its
    /// dtype are statically known; `Ok(None)` when the column exists with
    /// unknown dtype *or* the schema is open (so it may exist at runtime);
    /// `Err` only when the schema is closed and the column is absent.
    pub fn require(&self, op: &str, name: &str) -> Result<Option<DType>, MetaError> {
        match self.lookup(name) {
            Some(dt) => Ok(dt),
            None if self.open => Ok(None),
            None => Err(MetaError::missing_column(op, name)),
        }
    }

    /// Require `name` to exist with a dtype accepted by `accept`
    /// (described as `need` in the diagnostic). Unknown dtypes pass.
    pub fn require_dtype(
        &self,
        op: &str,
        name: &str,
        need: &str,
        accept: impl Fn(DType) -> bool,
    ) -> Result<(), MetaError> {
        match self.require(op, name)? {
            Some(dt) if !accept(dt) => Err(MetaError::type_mismatch(op, name, need, dt)),
            _ => Ok(()),
        }
    }

    /// The statically known numeric columns, minus `exclude` names.
    #[must_use]
    pub fn numeric_columns(&self, exclude: &[&str]) -> Vec<String> {
        self.columns
            .iter()
            .filter(|(n, dt)| !exclude.contains(&n.as_str()) && dt.is_none_or(DType::is_numeric))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Error if the column list contains a duplicate name.
    pub fn ensure_unique(&self, op: &str) -> Result<(), MetaError> {
        for (i, (name, _)) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|(n, _)| n == name) {
                return Err(MetaError::new(
                    MetaCode::DuplicateColumn,
                    format!("{op}: output would contain column {name:?} twice"),
                ));
            }
        }
        Ok(())
    }
}

/// Statically inferred model metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelMeta {
    /// Feature column names the model is fitted on, in order.
    pub features: Vec<String>,
    /// The label column the model predicts, when known.
    pub label: Option<String>,
    /// `true` when the feature set is data-dependent (trained on an open
    /// schema) — fit/predict divergence checks are suppressed.
    pub open: bool,
}

/// Statically inferred metadata of a workload value — the abstract
/// domain the validator propagates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueMeta {
    /// A dataframe with an inferred schema.
    Dataset(DatasetMeta),
    /// A scalar aggregate.
    Aggregate,
    /// A trained model.
    Model(ModelMeta),
    /// Nothing statically known (custom operations, unanalyzed inputs).
    Unknown,
}

impl ValueMeta {
    /// Metadata of an already-computed value (workload source / reused
    /// artifact): datasets yield their exact schema, models an open
    /// feature set (the training pipeline is not visible here).
    #[must_use]
    pub fn of_value(value: &crate::value::Value) -> Self {
        match value {
            crate::value::Value::Dataset(df) => ValueMeta::Dataset(DatasetMeta::closed(
                df.schema()
                    .fields()
                    .iter()
                    .map(|f| (f.name.clone(), Some(f.dtype)))
                    .collect(),
            )),
            crate::value::Value::Aggregate(_) => ValueMeta::Aggregate,
            crate::value::Value::Model(_) => ValueMeta::Model(ModelMeta {
                features: Vec::new(),
                label: None,
                open: true,
            }),
        }
    }

    /// Human-readable kind name used in [`MetaError::bad_kind`].
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            ValueMeta::Dataset(_) => "dataset",
            ValueMeta::Aggregate => "aggregate",
            ValueMeta::Model(_) => "model",
            ValueMeta::Unknown => "unknown",
        }
    }

    /// View as a dataset schema; `Unknown` yields an anonymous open
    /// schema (checks are suppressed, not failed), other kinds error.
    pub fn expect_dataset(&self, op: &str) -> Result<DatasetMeta, MetaError> {
        match self {
            ValueMeta::Dataset(ds) => Ok(ds.clone()),
            ValueMeta::Unknown => Ok(DatasetMeta::open(Vec::new())),
            other => Err(MetaError::bad_kind(op, "dataset", other.kind_name())),
        }
    }

    /// View as model metadata; `Unknown` yields an open model, other
    /// kinds error.
    pub fn expect_model(&self, op: &str) -> Result<ModelMeta, MetaError> {
        match self {
            ValueMeta::Model(m) => Ok(m.clone()),
            ValueMeta::Unknown => Ok(ModelMeta {
                features: Vec::new(),
                label: None,
                open: true,
            }),
            other => Err(MetaError::bad_kind(op, "model", other.kind_name())),
        }
    }
}

/// Check that exactly `n` inputs were supplied.
pub fn expect_arity(op: &str, inputs: &[&ValueMeta], n: usize) -> Result<(), MetaError> {
    if inputs.len() == n {
        Ok(())
    } else {
        Err(MetaError::arity(op, &n.to_string(), inputs.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(cols: &[(&str, Option<DType>)]) -> DatasetMeta {
        DatasetMeta::closed(cols.iter().map(|(n, dt)| ((*n).to_owned(), *dt)).collect())
    }

    #[test]
    fn require_distinguishes_open_and_closed() {
        let closed = ds(&[("a", Some(DType::Int)), ("b", None)]);
        assert_eq!(closed.require("op", "a").unwrap(), Some(DType::Int));
        assert_eq!(closed.require("op", "b").unwrap(), None);
        let err = closed.require("op", "zzz").unwrap_err();
        assert_eq!(err.code, MetaCode::MissingColumn);
        assert!(err.to_string().contains("zzz"));

        let mut open = closed.clone();
        open.open = true;
        assert_eq!(open.require("op", "zzz").unwrap(), None);
    }

    #[test]
    fn dtype_checks_skip_unknown() {
        let m = ds(&[("k", Some(DType::Str)), ("u", None)]);
        let err = m
            .require_dtype("join", "k", "int", |dt| dt == DType::Int)
            .unwrap_err();
        assert_eq!(err.code, MetaCode::TypeMismatch);
        m.require_dtype("join", "u", "int", |dt| dt == DType::Int)
            .unwrap();
    }

    #[test]
    fn numeric_columns_include_unknown_dtypes() {
        let m = ds(&[
            ("a", Some(DType::Int)),
            ("s", Some(DType::Str)),
            ("u", None),
            ("y", Some(DType::Float)),
        ]);
        assert_eq!(m.numeric_columns(&["y"]), vec!["a", "u"]);
    }

    #[test]
    fn duplicate_detection() {
        let good = ds(&[("a", None), ("b", None)]);
        good.ensure_unique("op").unwrap();
        let bad = ds(&[("a", None), ("b", None), ("a", None)]);
        assert_eq!(
            bad.ensure_unique("op").unwrap_err().code,
            MetaCode::DuplicateColumn
        );
    }

    #[test]
    fn unknown_meta_suppresses_rather_than_fails() {
        let u = ValueMeta::Unknown;
        assert!(u.expect_dataset("op").unwrap().open);
        assert!(u.expect_model("op").unwrap().open);
        let agg = ValueMeta::Aggregate;
        assert_eq!(
            agg.expect_dataset("op").unwrap_err().code,
            MetaCode::BadInputKind
        );
    }

    #[test]
    fn arity_helper() {
        let d = ValueMeta::Aggregate;
        expect_arity("op", &[&d], 1).unwrap();
        assert_eq!(
            expect_arity("op", &[&d], 2).unwrap_err().code,
            MetaCode::ArityMismatch
        );
    }
}
