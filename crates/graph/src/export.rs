//! Graphviz (DOT) export and summary statistics — the introspection
//! surface a collaborative platform's UI would build on (the paper's
//! Figure 1 is exactly such a rendering of a workload DAG).

use crate::artifact::NodeKind;
use crate::experiment::ExperimentGraph;
use crate::workload::{NodeId, WorkloadDag};
use std::fmt::Write as _;

fn kind_style(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Dataset => "shape=box",
        NodeKind::Aggregate => "shape=ellipse",
        NodeKind::Model => "shape=diamond",
    }
}

/// Render a workload DAG as Graphviz DOT. Terminal vertices are drawn
/// bold; inactive (pruned) edges dashed.
#[must_use]
pub fn workload_to_dot(dag: &WorkloadDag) -> String {
    let mut out = String::from("digraph workload {\n  rankdir=LR;\n");
    for (i, node) in dag.nodes().iter().enumerate() {
        let label = node
            .name
            .clone()
            .or_else(|| dag.producer(NodeId(i)).map(|e| e.op.name().to_owned()))
            .unwrap_or_else(|| format!("n{i}"));
        let mut attrs = vec![
            kind_style(node.kind).to_owned(),
            format!("label=\"{label}\""),
        ];
        if node.terminal {
            attrs.push("penwidth=2".to_owned());
        }
        if node.computed.is_some() && node.producer.is_some() {
            attrs.push("style=filled, fillcolor=lightgrey".to_owned());
        }
        let _ = writeln!(out, "  n{i} [{}];", attrs.join(", "));
    }
    for edge in dag.edges() {
        for input in &edge.inputs {
            let style = if edge.active { "" } else { " [style=dashed]" };
            let _ = writeln!(out, "  n{} -> n{}{};", input.0, edge.output.0, style);
        }
    }
    out.push_str("}\n");
    out
}

/// Summary statistics of an Experiment Graph — what a dashboard would
/// show about the store.
#[derive(Debug, Clone, PartialEq)]
pub struct EgStats {
    /// Total vertices.
    pub n_vertices: usize,
    /// Source vertices.
    pub n_sources: usize,
    /// Dataset / aggregate / model vertex counts.
    pub n_datasets: usize,
    /// Aggregate vertices.
    pub n_aggregates: usize,
    /// Model vertices.
    pub n_models: usize,
    /// Materialized vertices.
    pub n_materialized: usize,
    /// Sum of all vertices' nominal sizes, bytes.
    pub total_bytes: u64,
    /// Bytes physically held by the store (after dedup).
    pub stored_unique_bytes: u64,
    /// Nominal bytes of the materialized artifacts.
    pub stored_logical_bytes: u64,
    /// Best model quality seen.
    pub best_model_quality: f64,
    /// Highest vertex frequency.
    pub max_frequency: u64,
}

/// Compute [`EgStats`].
#[must_use]
pub fn eg_stats(eg: &ExperimentGraph) -> EgStats {
    let mut stats = EgStats {
        n_vertices: eg.n_vertices(),
        n_sources: eg.sources().len(),
        n_datasets: 0,
        n_aggregates: 0,
        n_models: 0,
        n_materialized: eg.storage().n_artifacts(),
        total_bytes: 0,
        stored_unique_bytes: eg.storage().unique_bytes(),
        stored_logical_bytes: eg.storage().logical_bytes(),
        best_model_quality: 0.0,
        max_frequency: 0,
    };
    for v in eg.vertices() {
        match v.kind {
            NodeKind::Dataset => stats.n_datasets += 1,
            NodeKind::Aggregate => stats.n_aggregates += 1,
            NodeKind::Model => stats.n_models += 1,
        }
        stats.total_bytes += v.size;
        stats.best_model_quality = stats.best_model_quality.max(v.quality);
        stats.max_frequency = stats.max_frequency.max(v.frequency);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;
    use crate::value::Value;
    use co_dataframe::Scalar;
    use std::sync::Arc;

    struct Step(&'static str, NodeKind);
    impl Operation for Step {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            self.1
        }
        fn run(&self, _inputs: &[&Value]) -> crate::error::Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(0.0)))
        }
    }

    fn dag() -> WorkloadDag {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("train.csv", Value::Aggregate(Scalar::Float(0.0)));
        let a = dag
            .add_op(Arc::new(Step("clean", NodeKind::Dataset)), &[s])
            .unwrap();
        let m = dag
            .add_op(Arc::new(Step("train_model", NodeKind::Model)), &[a])
            .unwrap();
        dag.mark_terminal(m).unwrap();
        dag.annotate(a, 1.0, 100).unwrap();
        dag.annotate(m, 2.0, 50).unwrap();
        dag.node_mut(m).unwrap().quality = 0.9;
        dag
    }

    #[test]
    fn dot_contains_nodes_edges_and_styles() {
        let mut d = dag();
        d.prune().unwrap();
        let dot = workload_to_dot(&d);
        assert!(dot.starts_with("digraph workload {"));
        assert!(dot.contains("label=\"train.csv\""));
        assert!(dot.contains("label=\"train_model\""));
        assert!(dot.contains("shape=diamond")); // model styling
        assert!(dot.contains("penwidth=2")); // terminal styling
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn pruned_edges_are_dashed() {
        let mut d = dag();
        // Mark the model computed: its producing edge gets pruned.
        d.set_computed(NodeId(2), Value::Aggregate(Scalar::Float(0.0)))
            .unwrap();
        d.prune().unwrap();
        let dot = workload_to_dot(&d);
        assert!(dot.contains("n1 -> n2 [style=dashed]"));
    }

    #[test]
    fn stats_count_kinds_and_storage() {
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag()).unwrap();
        let stats = eg_stats(&eg);
        assert_eq!(stats.n_vertices, 3);
        assert_eq!(stats.n_sources, 1);
        assert_eq!(stats.n_models, 1);
        assert_eq!(stats.n_datasets, 1);
        assert_eq!(stats.n_aggregates, 1); // the source aggregate
        assert_eq!(stats.n_materialized, 1); // the source content
        assert_eq!(stats.total_bytes, 100 + 50 + 8);
        assert_eq!(stats.best_model_quality, 0.9);
        assert_eq!(stats.max_frequency, 1);
    }
}
