//! The Experiment Graph: the union of all executed workload DAGs (paper
//! §3.2).
//!
//! Every vertex keeps `⟨frequency, compute_time, size, materialized⟩` plus
//! the model-quality attribute `q`; meta-data is kept for *all* artifacts,
//! content only for the materialized subset (held by the embedded
//! [`StorageManager`]).

use crate::artifact::{ArtifactId, NodeKind};
use crate::error::{GraphError, Result};
use crate::operation::OpHash;
use crate::storage::StorageManager;
use crate::workload::WorkloadDag;
use std::collections::{HashMap, HashSet};

/// One vertex of the Experiment Graph.
#[derive(Debug, Clone, PartialEq)]
pub struct EgVertex {
    /// Artifact identity.
    pub id: ArtifactId,
    /// Artifact kind.
    pub kind: NodeKind,
    /// `f`: number of workloads this artifact appeared in.
    pub frequency: u64,
    /// `t`: compute time (seconds) of the operation producing it.
    pub compute_time: f64,
    /// `s`: content size in bytes.
    pub size: u64,
    /// `q`: model quality in `[0, 1]` (0 for non-models).
    pub quality: f64,
    /// Meta-data description (schema or hyperparameter digest).
    pub description: String,
    /// Source-dataset name, for source vertices.
    pub source_name: Option<String>,
    /// Hash of the producing operation (sources have none).
    pub op_hash: Option<OpHash>,
    /// Ordered inputs of the producing operation.
    pub parents: Vec<ArtifactId>,
    /// Outputs of operations consuming this artifact.
    pub children: Vec<ArtifactId>,
}

/// The Experiment Graph.
pub struct ExperimentGraph {
    vertices: HashMap<ArtifactId, EgVertex>,
    /// Insertion order; parents always precede children, so this is a
    /// topological order of the whole graph.
    topo: Vec<ArtifactId>,
    sources: Vec<ArtifactId>,
    storage: StorageManager,
    /// Artifacts whose `mat` flag was recovered from a snapshot or
    /// journal. Content is never persisted, so after a restart these
    /// ids count as "was materialized" for durability bookkeeping even
    /// though the store holds nothing yet; they clear as eviction or
    /// re-materialization brings the store back in charge.
    restored_mat: HashSet<ArtifactId>,
}

impl ExperimentGraph {
    /// An empty graph whose store deduplicates columns iff `dedup`.
    #[must_use]
    pub fn new(dedup: bool) -> Self {
        ExperimentGraph {
            vertices: HashMap::new(),
            topo: Vec::new(),
            sources: Vec::new(),
            storage: StorageManager::new(dedup),
            restored_mat: HashSet::new(),
        }
    }

    /// Merge an *executed* workload DAG (annotated with compute times and
    /// sizes) into the graph:
    ///
    /// 1. source artifacts not yet present are stored — meta-data **and**
    ///    content ("this is to ensure that EG contains every raw dataset");
    /// 2. all vertices and edges are added; existing vertices get their
    ///    frequency bumped (once per workload);
    /// 3. model qualities are recorded.
    ///
    /// Content materialization for non-source artifacts is the
    /// materializer's decision and happens separately via
    /// [`ExperimentGraph::storage_mut`].
    pub fn update_with_workload(&mut self, dag: &WorkloadDag) -> Result<()> {
        self.merge_masked(dag, None)
    }

    /// Merge only the nodes of `dag` for which `keep[index]` is true —
    /// used to salvage the successfully computed prefix of a failed
    /// workload (vertices tainted by a failure carry no measurements and
    /// must not enter the graph).
    ///
    /// The mask must be *ancestor-closed*: a kept node's parents must be
    /// kept too, otherwise the merged vertices would reference artifacts
    /// the graph never defines (breaking, among other things, the
    /// snapshot format's parents-before-definition invariant).
    pub fn update_with_workload_partial(&mut self, dag: &WorkloadDag, keep: &[bool]) -> Result<()> {
        if keep.len() != dag.nodes().len() {
            return Err(GraphError::InvalidStructure(format!(
                "salvage mask covers {} nodes, workload has {}",
                keep.len(),
                dag.nodes().len()
            )));
        }
        for (idx, kept) in keep.iter().enumerate() {
            if !kept {
                continue;
            }
            for p in dag.parents(crate::workload::NodeId(idx)) {
                if !keep[p.0] {
                    return Err(GraphError::InvalidStructure(format!(
                        "salvage mask keeps node {idx} but drops its parent {}",
                        p.0
                    )));
                }
            }
        }
        self.merge_masked(dag, Some(keep))
    }

    fn merge_masked(&mut self, dag: &WorkloadDag, mask: Option<&[bool]>) -> Result<()> {
        for (idx, node) in dag.nodes().iter().enumerate() {
            if let Some(mask) = mask {
                if !mask[idx] {
                    continue;
                }
            }
            let id = node.artifact;
            let parents: Vec<ArtifactId> = dag
                .parents(crate::workload::NodeId(idx))
                .iter()
                .map(|n| dag.nodes()[n.0].artifact)
                .collect();
            let op_hash = dag
                .producer(crate::workload::NodeId(idx))
                .map(|e| e.op.op_hash());

            match self.vertices.get_mut(&id) {
                Some(v) => {
                    v.frequency += 1;
                    // Refresh measurements when the client observed them.
                    if let Some(t) = node.compute_time {
                        v.compute_time = t;
                    }
                    if let Some(s) = node.size {
                        v.size = s;
                    }
                    if node.quality > 0.0 {
                        v.quality = node.quality;
                    }
                }
                None => {
                    let description = node
                        .computed
                        .as_ref()
                        .map(crate::value::Value::description)
                        .unwrap_or_default();
                    let vertex = EgVertex {
                        id,
                        kind: node.kind,
                        frequency: 1,
                        compute_time: node.compute_time.unwrap_or(0.0),
                        size: node.size.unwrap_or(0),
                        quality: node.quality,
                        description,
                        source_name: node.name.clone(),
                        op_hash,
                        parents: parents.clone(),
                        children: Vec::new(),
                    };
                    self.vertices.insert(id, vertex);
                    self.topo.push(id);
                    if node.producer.is_none() {
                        self.sources.push(id);
                        // Sources: store content unconditionally.
                        if let Some(value) = &node.computed {
                            self.storage.store(id, value);
                        }
                    }
                    for p in &parents {
                        if let Some(pv) = self.vertices.get_mut(p) {
                            if !pv.children.contains(&id) {
                                pv.children.push(id);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge a single node of an executed workload DAG into this graph —
    /// the sharded updater's unit of work, where each node lands in the
    /// shard owning its artifact id. Identical to one step of
    /// [`ExperimentGraph::update_with_workload`] except that **no child
    /// links are wired** (a parent may live in another shard); the
    /// caller wires them via [`ExperimentGraph::add_child_link`] on the
    /// parent's shard. Returns whether the node was inserted (false:
    /// an existing vertex was bumped).
    pub fn merge_workload_node(&mut self, dag: &WorkloadDag, idx: usize) -> Result<bool> {
        let node = dag
            .nodes()
            .get(idx)
            .ok_or_else(|| GraphError::InvalidStructure(format!("workload has no node {idx}")))?;
        let id = node.artifact;
        match self.vertices.get_mut(&id) {
            Some(v) => {
                v.frequency += 1;
                if let Some(t) = node.compute_time {
                    v.compute_time = t;
                }
                if let Some(s) = node.size {
                    v.size = s;
                }
                if node.quality > 0.0 {
                    v.quality = node.quality;
                }
                Ok(false)
            }
            None => {
                let parents: Vec<ArtifactId> = dag
                    .parents(crate::workload::NodeId(idx))
                    .iter()
                    .map(|n| dag.nodes()[n.0].artifact)
                    .collect();
                let op_hash = dag
                    .producer(crate::workload::NodeId(idx))
                    .map(|e| e.op.op_hash());
                let description = node
                    .computed
                    .as_ref()
                    .map(crate::value::Value::description)
                    .unwrap_or_default();
                let vertex = EgVertex {
                    id,
                    kind: node.kind,
                    frequency: 1,
                    compute_time: node.compute_time.unwrap_or(0.0),
                    size: node.size.unwrap_or(0),
                    quality: node.quality,
                    description,
                    source_name: node.name.clone(),
                    op_hash,
                    parents,
                    children: Vec::new(),
                };
                self.vertices.insert(id, vertex);
                self.topo.push(id);
                if node.producer.is_none() {
                    self.sources.push(id);
                    // Sources: store content unconditionally.
                    if let Some(value) = &node.computed {
                        self.storage.store(id, value);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Record that `child` consumes `parent` (idempotent). The sharded
    /// updater and the recovery rewire pass call this on the *parent's*
    /// shard; `child` may live elsewhere.
    pub fn add_child_link(&mut self, parent: ArtifactId, child: ArtifactId) -> Result<()> {
        let pv = self
            .vertices
            .get_mut(&parent)
            .ok_or(GraphError::UnknownArtifact(parent.0))?;
        if !pv.children.contains(&child) {
            pv.children.push(child);
        }
        Ok(())
    }

    /// Insert a fully specified vertex during snapshot restoration
    /// (see [`crate::snapshot`]). Parents must already be present; the
    /// vertex must be new; children links are rebuilt here.
    pub fn restore_vertex(&mut self, mut vertex: EgVertex) -> Result<()> {
        if self.vertices.contains_key(&vertex.id) {
            return Err(GraphError::InvalidStructure(format!(
                "duplicate vertex {:x} in snapshot",
                vertex.id.0
            )));
        }
        for p in &vertex.parents {
            if !self.vertices.contains_key(p) {
                return Err(GraphError::UnknownArtifact(p.0));
            }
        }
        vertex.children.clear();
        let id = vertex.id;
        let parents = vertex.parents.clone();
        let is_source = vertex.op_hash.is_none();
        self.vertices.insert(id, vertex);
        self.topo.push(id);
        if is_source {
            self.sources.push(id);
        }
        for p in parents {
            let pv = self.vertices.get_mut(&p).expect("checked above"); // co-lint:allow(no-panic) every parent was presence-checked before any mutation
            if !pv.children.contains(&id) {
                pv.children.push(id);
            }
        }
        Ok(())
    }

    /// Insert a fully specified vertex *without* resolving its lineage:
    /// parents are recorded but not required to exist (they may live in
    /// another shard) and no child links are wired. Used when restoring
    /// one shard of a sharded graph; the recovery rewire pass
    /// (`crate::shard::rewire_children`) rebuilds children afterwards.
    pub fn restore_vertex_unlinked(&mut self, mut vertex: EgVertex) -> Result<()> {
        if self.vertices.contains_key(&vertex.id) {
            return Err(GraphError::InvalidStructure(format!(
                "duplicate vertex {:x} in snapshot",
                vertex.id.0
            )));
        }
        vertex.children.clear();
        let id = vertex.id;
        let is_source = vertex.op_hash.is_none();
        self.vertices.insert(id, vertex);
        self.topo.push(id);
        if is_source {
            self.sources.push(id);
        }
        Ok(())
    }

    /// Whether an artifact (materialized or not) is known to the graph.
    #[must_use]
    pub fn contains(&self, id: ArtifactId) -> bool {
        self.vertices.contains_key(&id)
    }

    /// Vertex accessor.
    pub fn vertex(&self, id: ArtifactId) -> Result<&EgVertex> {
        self.vertices
            .get(&id)
            .ok_or(GraphError::UnknownArtifact(id.0))
    }

    /// Mutable vertex accessor.
    pub fn vertex_mut(&mut self, id: ArtifactId) -> Result<&mut EgVertex> {
        self.vertices
            .get_mut(&id)
            .ok_or(GraphError::UnknownArtifact(id.0))
    }

    /// Whether the artifact's content is stored (`mat`).
    #[must_use]
    pub fn is_materialized(&self, id: ArtifactId) -> bool {
        self.storage.contains(id)
    }

    /// Whether the artifact either holds content now or had its `mat`
    /// flag recovered from persistence (content pending repopulation).
    /// This is the flag snapshots and journals persist.
    #[must_use]
    pub fn was_materialized(&self, id: ArtifactId) -> bool {
        self.storage.contains(id) || self.restored_mat.contains(&id)
    }

    /// Record a `mat` flag recovered from a snapshot or journal.
    pub fn mark_restored_materialized(&mut self, id: ArtifactId) {
        self.restored_mat.insert(id);
    }

    /// Drop a recovered `mat` flag (eviction during replay, or the
    /// store re-materializing the artifact for real). Returns whether
    /// the flag was present.
    pub fn unmark_restored_materialized(&mut self, id: ArtifactId) -> bool {
        self.restored_mat.remove(&id)
    }

    /// Ids whose `mat` flag was recovered but whose content has not
    /// repopulated yet.
    #[must_use]
    pub fn restored_materialized(&self) -> &HashSet<ArtifactId> {
        &self.restored_mat
    }

    /// Number of vertices.
    #[must_use]
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Vertex ids in topological order.
    #[must_use]
    pub fn topo_order(&self) -> &[ArtifactId] {
        &self.topo
    }

    /// Source artifact ids.
    #[must_use]
    pub fn sources(&self) -> &[ArtifactId] {
        &self.sources
    }

    /// The content store.
    #[must_use]
    pub fn storage(&self) -> &StorageManager {
        &self.storage
    }

    /// Mutable access to the content store (used by the updater /
    /// materializer).
    pub fn storage_mut(&mut self) -> &mut StorageManager {
        &mut self.storage
    }

    /// Replace the content store wholesale — used when assembling a
    /// sharded graph, where every shard's store must share one
    /// [`crate::ColumnVault`]. Restored-materialization flags are kept;
    /// any content held by the old store is dropped, so callers swap
    /// stores only on freshly built or freshly recovered graphs (content
    /// is never persisted, so a recovered store is empty by definition).
    pub fn set_storage(&mut self, storage: StorageManager) {
        self.storage = storage;
    }

    /// Approximate recreation cost `Cr(v)` for every vertex, computed in
    /// one topological pass as `t(v) + Σ_parents Cr(p)` — the linear-time
    /// scheme the paper uses (§5.2 "we compute the recreation cost and
    /// potential of the nodes incrementally using one pass"). On DAGs with
    /// shared ancestors this over-counts; see
    /// [`ExperimentGraph::exact_recreation_cost`].
    ///
    /// Materialized vertices still report their full recreation cost (the
    /// utility function compares it against the load cost).
    #[must_use]
    pub fn recreation_costs(&self) -> HashMap<ArtifactId, f64> {
        let mut costs: HashMap<ArtifactId, f64> = HashMap::with_capacity(self.vertices.len());
        for id in &self.topo {
            let v = &self.vertices[id];
            let parent_cost: f64 = v
                .parents
                .iter()
                .map(|p| costs.get(p).copied().unwrap_or(0.0))
                .sum();
            costs.insert(*id, v.compute_time + parent_cost);
        }
        costs
    }

    /// Exact recreation cost: the sum of `t` over the vertex's compute
    /// graph (all distinct ancestors, including itself).
    pub fn exact_recreation_cost(&self, id: ArtifactId) -> Result<f64> {
        self.vertex(id)?;
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        let mut total = 0.0;
        while let Some(a) = stack.pop() {
            if !seen.insert(a) {
                continue;
            }
            let v = &self.vertices[&a];
            total += v.compute_time;
            stack.extend(v.parents.iter().copied());
        }
        Ok(total)
    }

    /// Potential `p(v)` for every vertex: the quality of the best ML model
    /// reachable from it (paper §5.1), computed in one reverse topological
    /// pass.
    #[must_use]
    pub fn potentials(&self) -> HashMap<ArtifactId, f64> {
        let mut potential: HashMap<ArtifactId, f64> = HashMap::with_capacity(self.vertices.len());
        for id in self.topo.iter().rev() {
            let v = &self.vertices[id];
            let own = if v.kind == NodeKind::Model {
                v.quality
            } else {
                0.0
            };
            let best_child = v
                .children
                .iter()
                .map(|c| potential.get(c).copied().unwrap_or(0.0))
                .fold(0.0, f64::max);
            potential.insert(*id, own.max(best_child));
        }
        potential
    }

    /// All vertices (arbitrary order).
    pub fn vertices(&self) -> impl Iterator<Item = &EgVertex> {
        self.vertices.values()
    }

    /// Total nominal size of every artifact ever seen (bytes).
    #[must_use]
    pub fn total_artifact_bytes(&self) -> u64 {
        self.vertices.values().map(|v| v.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;
    use crate::value::Value;
    use crate::workload::WorkloadDag;
    use co_dataframe::Scalar;
    use std::sync::Arc;

    struct Step {
        name: &'static str,
        cost_marker: f64,
        kind: NodeKind,
    }

    impl Operation for Step {
        fn name(&self) -> &str {
            self.name
        }
        fn params_digest(&self) -> String {
            co_dataframe::hash::float_digest(self.cost_marker)
        }
        fn output_kind(&self) -> NodeKind {
            self.kind
        }
        fn run(&self, _inputs: &[&Value]) -> Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(self.cost_marker)))
        }
    }

    fn step(name: &'static str, marker: f64) -> Arc<Step> {
        Arc::new(Step {
            name,
            cost_marker: marker,
            kind: NodeKind::Dataset,
        })
    }

    fn model_step(name: &'static str, marker: f64) -> Arc<Step> {
        Arc::new(Step {
            name,
            cost_marker: marker,
            kind: NodeKind::Model,
        })
    }

    /// source -> a -> b(model q=0.8); source -> c.
    fn build_workload(q: f64) -> WorkloadDag {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
        let a = dag.add_op(step("a", 1.0), &[s]).unwrap();
        let b = dag.add_op(model_step("train", 2.0), &[a]).unwrap();
        let c = dag.add_op(step("c", 3.0), &[s]).unwrap();
        dag.mark_terminal(b).unwrap();
        dag.mark_terminal(c).unwrap();
        dag.annotate(a, 1.0, 100).unwrap();
        dag.annotate(b, 2.0, 50).unwrap();
        dag.annotate(c, 3.0, 200).unwrap();
        dag.node_mut(b).unwrap().quality = q;
        dag
    }

    #[test]
    fn update_merges_and_counts_frequency() {
        let mut eg = ExperimentGraph::new(true);
        let w1 = build_workload(0.8);
        eg.update_with_workload(&w1).unwrap();
        assert_eq!(eg.n_vertices(), 4);
        assert_eq!(eg.sources().len(), 1);

        // Same workload again: frequencies bump, no new vertices.
        eg.update_with_workload(&build_workload(0.8)).unwrap();
        assert_eq!(eg.n_vertices(), 4);
        let a_id = w1.nodes()[1].artifact;
        assert_eq!(eg.vertex(a_id).unwrap().frequency, 2);
    }

    #[test]
    fn sources_are_always_materialized() {
        let mut eg = ExperimentGraph::new(true);
        let w = build_workload(0.5);
        eg.update_with_workload(&w).unwrap();
        let src = eg.sources()[0];
        assert!(eg.is_materialized(src));
        // Non-sources are not materialized by the updater itself.
        let a_id = w.nodes()[1].artifact;
        assert!(!eg.is_materialized(a_id));
    }

    #[test]
    fn recreation_costs_accumulate_along_paths() {
        let mut eg = ExperimentGraph::new(true);
        let w = build_workload(0.5);
        eg.update_with_workload(&w).unwrap();
        let costs = eg.recreation_costs();
        let (s, a, b, c) = (
            w.nodes()[0].artifact,
            w.nodes()[1].artifact,
            w.nodes()[2].artifact,
            w.nodes()[3].artifact,
        );
        assert_eq!(costs[&s], 0.0);
        assert_eq!(costs[&a], 1.0);
        assert_eq!(costs[&b], 3.0); // 1 + 2
        assert_eq!(costs[&c], 3.0);
        assert_eq!(eg.exact_recreation_cost(b).unwrap(), 3.0);
    }

    #[test]
    fn exact_cost_avoids_diamond_double_count() {
        // s -> a -> m, s -> b -> m (m joins a and b): exact counts s once.
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
        let a = dag.add_op(step("a", 1.0), &[s]).unwrap();
        let b = dag.add_op(step("b", 2.0), &[s]).unwrap();
        let m = dag.add_op(step("m", 4.0), &[a, b]).unwrap();
        dag.mark_terminal(m).unwrap();
        for (n, t) in [(a, 1.0), (b, 2.0), (m, 4.0)] {
            dag.annotate(n, t, 10).unwrap();
        }
        // Give the source a nonzero compute time to expose double counting.
        dag.node_mut(s).unwrap().compute_time = Some(5.0);

        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        let m_id = dag.nodes()[m.0].artifact;
        assert_eq!(
            eg.exact_recreation_cost(m_id).unwrap(),
            5.0 + 1.0 + 2.0 + 4.0
        );
        // The linear approximation counts the source twice.
        assert_eq!(eg.recreation_costs()[&m_id], 5.0 + 1.0 + 5.0 + 2.0 + 4.0);
    }

    #[test]
    fn potentials_flow_backwards_from_models() {
        let mut eg = ExperimentGraph::new(true);
        let w = build_workload(0.8);
        eg.update_with_workload(&w).unwrap();
        let p = eg.potentials();
        let (s, a, b, c) = (
            w.nodes()[0].artifact,
            w.nodes()[1].artifact,
            w.nodes()[2].artifact,
            w.nodes()[3].artifact,
        );
        assert_eq!(p[&b], 0.8); // the model itself
        assert_eq!(p[&a], 0.8); // ancestor of the model
        assert_eq!(p[&s], 0.8);
        assert_eq!(p[&c], 0.0); // not connected to any model
    }

    #[test]
    fn better_models_raise_potentials() {
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&build_workload(0.6)).unwrap();
        // A second workload trains a better model from the same artifact.
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
        let a = dag.add_op(step("a", 1.0), &[s]).unwrap();
        let b2 = dag.add_op(model_step("train2", 9.0), &[a]).unwrap();
        dag.mark_terminal(b2).unwrap();
        dag.annotate(a, 1.0, 100).unwrap();
        dag.annotate(b2, 2.0, 50).unwrap();
        dag.node_mut(b2).unwrap().quality = 0.95;
        eg.update_with_workload(&dag).unwrap();

        let p = eg.potentials();
        let a_id = dag.nodes()[a.0].artifact;
        assert_eq!(p[&a_id], 0.95);
    }

    #[test]
    fn unknown_vertex_errors() {
        let eg = ExperimentGraph::new(true);
        assert!(eg.vertex(ArtifactId(1)).is_err());
        assert!(eg.exact_recreation_cost(ArtifactId(1)).is_err());
    }
}
