//! The artifact content store with column-level deduplication (paper
//! §5.3).
//!
//! "The storage manager stores the column data using the column id as the
//! key. Thus, ensuring duplicated columns are not stored multiple times."
//!
//! Two accounting views matter for the evaluation:
//! * [`StorageManager::unique_bytes`] — bytes physically held (what the
//!   materialization *budget* constrains for the storage-aware algorithm);
//! * [`StorageManager::logical_bytes`] — the sum of the nominal sizes of
//!   all materialized artifacts (the "real size of the stored artifacts"
//!   plotted in the paper's Figure 6, which reaches up to 8x the budget).
//!
//! Deduplication can be disabled (`dedup = false`) to model the plain
//! stores used by the heuristics-based and Helix materializers.

use crate::artifact::ArtifactId;
use crate::faults::FaultInjector;
use crate::value::Value;
use co_dataframe::{Column, ColumnData, ColumnId, DType, DataFrame};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-column entry of the dedup store.
struct StoredColumn {
    data: Arc<ColumnData>,
    nbytes: u64,
    refs: usize,
}

/// Schema entry needed to reassemble a deduplicated dataset.
#[derive(Clone)]
struct ColumnRef {
    name: String,
    id: ColumnId,
    #[allow(dead_code)] // lint:reason kept as artifact meta-data (paper §3.2)
    dtype: DType,
}

enum StoredArtifact {
    /// Stored verbatim (models, aggregates, and all artifacts when
    /// deduplication is disabled).
    Whole(Value),
    /// A dataset stored as schema + references into the column store.
    Dataset {
        columns: Vec<ColumnRef>,
        nbytes: u64,
    },
}

/// The cross-shard column store of a *sharded* Experiment Graph:
/// column data keyed by column id, itself partitioned into lock shards
/// so vertex-shards sharing no columns never contend. One vault is
/// shared (via `Arc`) by every vertex-shard's [`StorageManager`];
/// deduplication therefore works across vertex shards — the same
/// column stored from two shards is held once.
///
/// Content is never persisted (paper §3.2), so the vault has no
/// durability interaction at all.
pub struct ColumnVault {
    shards: Vec<parking_lot::Mutex<HashMap<ColumnId, StoredColumn>>>,
    unique_bytes: AtomicU64,
}

impl ColumnVault {
    /// A vault with `n_shards` column lock-shards (min 1).
    #[must_use]
    pub fn new(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        ColumnVault {
            shards: (0..n)
                .map(|_| parking_lot::Mutex::new(HashMap::new()))
                .collect(),
            unique_bytes: AtomicU64::new(0),
        }
    }

    /// Which lock-shard owns a column id.
    #[must_use]
    pub fn shard_of(&self, id: ColumnId) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut h);
        #[allow(clippy::cast_possible_truncation)] // lint:reason < shards.len(), which is a usize
        {
            (h.finish() % self.shards.len() as u64) as usize
        }
    }

    /// Number of column lock-shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Bytes physically held across all column shards (what the sharded
    /// materialization budget constrains).
    #[must_use]
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes.load(Ordering::SeqCst)
    }

    /// Unique columns held across all shards.
    #[must_use]
    pub fn n_columns(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Bytes storing this frame would *add* (columns not yet held).
    fn marginal(&self, df: &DataFrame) -> u64 {
        df.columns()
            .iter()
            .filter(|c| {
                !self.shards[self.shard_of(c.id())]
                    .lock()
                    .contains_key(&c.id())
            })
            .map(|c| c.nbytes() as u64)
            .sum()
    }

    /// Store (or reference) every column of `df`; returns the bytes
    /// actually added and the refs to record on the artifact.
    fn store_columns(&self, df: &DataFrame) -> (u64, Vec<ColumnRef>) {
        let mut added = 0u64;
        let mut refs = Vec::with_capacity(df.n_cols());
        for c in df.columns() {
            let mut shard = self.shards[self.shard_of(c.id())].lock();
            let entry = shard.entry(c.id()).or_insert_with(|| {
                added += c.nbytes() as u64;
                StoredColumn {
                    data: c.data(),
                    nbytes: c.nbytes() as u64,
                    refs: 0,
                }
            });
            entry.refs += 1;
            refs.push(ColumnRef {
                name: c.name().to_owned(),
                id: c.id(),
                dtype: c.dtype(),
            });
        }
        self.unique_bytes.fetch_add(added, Ordering::SeqCst);
        (added, refs)
    }

    /// Drop one reference per column; returns the bytes actually freed
    /// (columns still referenced elsewhere are kept).
    fn release(&self, refs: &[ColumnRef]) -> u64 {
        let mut freed = 0u64;
        for r in refs {
            let mut shard = self.shards[self.shard_of(r.id)].lock();
            if let Some(entry) = shard.get_mut(&r.id) {
                entry.refs -= 1;
                if entry.refs == 0 {
                    freed += entry.nbytes;
                    shard.remove(&r.id);
                }
            }
        }
        self.unique_bytes.fetch_sub(freed, Ordering::SeqCst);
        freed
    }

    /// Reassemble the referenced columns (`None` if any is missing).
    fn fetch(&self, refs: &[ColumnRef]) -> Option<Vec<Column>> {
        refs.iter()
            .map(|r| {
                self.shards[self.shard_of(r.id)]
                    .lock()
                    .get(&r.id)
                    .map(|sc| Column::from_arc(&r.name, r.id, Arc::clone(&sc.data)))
            })
            .collect()
    }

    /// Cross-manager accounting audit: recompute every column's
    /// reference count from the artifact tables of all vault-backed
    /// managers and compare against the vault's state (the sharded
    /// analogue of [`StorageManager::audit`]'s column checks).
    #[must_use]
    pub fn audit(&self, managers: &[&StorageManager]) -> Vec<String> {
        let mut violations = Vec::new();
        let mut want_refs: HashMap<ColumnId, usize> = HashMap::new();
        for m in managers {
            for (id, stored) in &m.artifacts {
                if let StoredArtifact::Dataset { columns, .. } = stored {
                    for r in columns {
                        if !self.shards[self.shard_of(r.id)].lock().contains_key(&r.id) {
                            violations.push(format!(
                                "artifact {:016x} references column {:?} ({}) absent from the vault",
                                id.0, r.id, r.name
                            ));
                        }
                        *want_refs.entry(r.id).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut unique = 0u64;
        for shard in &self.shards {
            let shard = shard.lock();
            for (cid, col) in shard.iter() {
                unique += col.nbytes;
                let want = want_refs.get(cid).copied().unwrap_or(0);
                if want == 0 {
                    violations.push(format!(
                        "vault column {cid:?} is held but referenced by no artifact"
                    ));
                } else if col.refs != want {
                    violations.push(format!(
                        "vault column {cid:?} refcount is {} but {} artifact reference(s) exist",
                        col.refs, want
                    ));
                }
            }
        }
        if unique != self.unique_bytes() {
            violations.push(format!(
                "vault unique_bytes counter is {} but stored columns sum to {unique}",
                self.unique_bytes()
            ));
        }
        violations
    }
}

/// The artifact content store.
pub struct StorageManager {
    columns: HashMap<ColumnId, StoredColumn>,
    artifacts: HashMap<ArtifactId, StoredArtifact>,
    unique_bytes: u64,
    logical_bytes: u64,
    dedup: bool,
    /// When set, dataset columns live in the shared [`ColumnVault`]
    /// instead of this manager's local column map; [`StorageManager::unique_bytes`]
    /// then counts only verbatim (`Whole`) content held locally.
    vault: Option<Arc<ColumnVault>>,
    faults: Option<Arc<FaultInjector>>,
}

impl StorageManager {
    /// Create a store; `dedup` enables column-level deduplication.
    #[must_use]
    pub fn new(dedup: bool) -> Self {
        StorageManager {
            columns: HashMap::new(),
            artifacts: HashMap::new(),
            unique_bytes: 0,
            logical_bytes: 0,
            dedup,
            vault: None,
            faults: None,
        }
    }

    /// Create a store backed by a shared cross-shard column vault
    /// (deduplication is implied — the vault *is* the dedup store).
    #[must_use]
    pub fn new_vaulted(vault: Arc<ColumnVault>) -> Self {
        StorageManager {
            columns: HashMap::new(),
            artifacts: HashMap::new(),
            unique_bytes: 0,
            logical_bytes: 0,
            dedup: true,
            vault: Some(vault),
            faults: None,
        }
    }

    /// The shared column vault, when this manager is vault-backed.
    #[must_use]
    pub fn vault(&self) -> Option<&Arc<ColumnVault>> {
        self.vault.as_ref()
    }

    /// Install a fault injector consulted on every [`StorageManager::get`].
    pub fn set_fault_injector(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// The installed fault injector, if any.
    #[must_use]
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Whether deduplication is enabled.
    #[must_use]
    pub fn dedup_enabled(&self) -> bool {
        self.dedup
    }

    /// Bytes that [`StorageManager::store`] would *add* for this value:
    /// with deduplication, only columns not yet held count.
    #[must_use]
    pub fn marginal_bytes(&self, value: &Value) -> u64 {
        if let (Value::Dataset(df), Some(vault)) = (value, &self.vault) {
            return vault.marginal(df);
        }
        match value {
            Value::Dataset(df) if self.dedup => df
                .columns()
                .iter()
                .filter(|c| !self.columns.contains_key(&c.id()))
                .map(|c| c.nbytes() as u64)
                .sum(),
            other => other.nbytes() as u64,
        }
    }

    /// Store an artifact's content. Returns the bytes actually added
    /// (0 if the artifact was already stored).
    pub fn store(&mut self, id: ArtifactId, value: &Value) -> u64 {
        if self.artifacts.contains_key(&id) {
            return 0;
        }
        let nominal = value.nbytes() as u64;
        if let (Value::Dataset(df), Some(vault)) = (value, &self.vault) {
            let (added, refs) = vault.store_columns(df);
            self.artifacts.insert(
                id,
                StoredArtifact::Dataset {
                    columns: refs,
                    nbytes: nominal,
                },
            );
            self.logical_bytes += nominal;
            return added;
        }
        let added = match value {
            Value::Dataset(df) if self.dedup => {
                let mut added = 0;
                let mut refs = Vec::with_capacity(df.n_cols());
                for c in df.columns() {
                    let entry = self.columns.entry(c.id()).or_insert_with(|| {
                        added += c.nbytes() as u64;
                        StoredColumn {
                            data: c.data(),
                            nbytes: c.nbytes() as u64,
                            refs: 0,
                        }
                    });
                    entry.refs += 1;
                    refs.push(ColumnRef {
                        name: c.name().to_owned(),
                        id: c.id(),
                        dtype: c.dtype(),
                    });
                }
                self.artifacts.insert(
                    id,
                    StoredArtifact::Dataset {
                        columns: refs,
                        nbytes: nominal,
                    },
                );
                added
            }
            other => {
                self.artifacts
                    .insert(id, StoredArtifact::Whole(other.clone()));
                nominal
            }
        };
        self.unique_bytes += added;
        self.logical_bytes += nominal;
        added
    }

    /// Remove an artifact's content. Returns the bytes actually freed
    /// (columns still referenced by other artifacts are kept).
    pub fn evict(&mut self, id: ArtifactId) -> u64 {
        let Some(stored) = self.artifacts.remove(&id) else {
            return 0;
        };
        if let (StoredArtifact::Dataset { columns, nbytes }, Some(vault)) = (&stored, &self.vault) {
            self.logical_bytes -= nbytes;
            return vault.release(columns);
        }
        let freed = match stored {
            StoredArtifact::Whole(v) => {
                self.logical_bytes -= v.nbytes() as u64;
                v.nbytes() as u64
            }
            StoredArtifact::Dataset { columns, nbytes } => {
                self.logical_bytes -= nbytes;
                let mut freed = 0;
                for r in columns {
                    if let Some(entry) = self.columns.get_mut(&r.id) {
                        entry.refs -= 1;
                        if entry.refs == 0 {
                            freed += entry.nbytes;
                            self.columns.remove(&r.id);
                        }
                    }
                }
                freed
            }
        };
        self.unique_bytes -= freed;
        freed
    }

    /// Recompute the store's accounting invariants from its contents and
    /// return a description of every discrepancy: byte counters that
    /// disagree with a fresh recomputation, dangling column references,
    /// wrong per-column reference counts, and orphaned columns no artifact
    /// references.
    ///
    /// Used by [`crate::fsck`]. Deliberately bypasses
    /// [`StorageManager::get`], which consults the fault injector — an
    /// injected load miss must not masquerade as store corruption.
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        // Recompute logical bytes and per-column reference counts from the
        // artifact table.
        let mut want_refs: HashMap<ColumnId, usize> = HashMap::new();
        let mut logical = 0u64;
        let mut unique_whole = 0u64;
        for (id, stored) in &self.artifacts {
            match stored {
                StoredArtifact::Whole(v) => {
                    logical += v.nbytes() as u64;
                    unique_whole += v.nbytes() as u64;
                }
                StoredArtifact::Dataset { columns, nbytes } => {
                    logical += nbytes;
                    for r in columns {
                        let held = match &self.vault {
                            Some(vault) => vault.shards[vault.shard_of(r.id)]
                                .lock()
                                .contains_key(&r.id),
                            None => self.columns.contains_key(&r.id),
                        };
                        if !held {
                            violations.push(format!(
                                "artifact {:016x} references column {:?} ({}) absent from the column store",
                                id.0, r.id, r.name
                            ));
                        }
                        *want_refs.entry(r.id).or_insert(0) += 1;
                    }
                }
            }
        }
        // Check the column store against the recomputed reference counts.
        // Vault-backed managers hold no local columns: reference counts
        // span managers there, so [`ColumnVault::audit`] checks them.
        let mut unique = unique_whole;
        for (cid, col) in &self.columns {
            unique += col.nbytes;
            let want = want_refs.get(cid).copied().unwrap_or(0);
            if want == 0 {
                violations.push(format!(
                    "column {cid:?} is held but referenced by no artifact"
                ));
            } else if col.refs != want {
                violations.push(format!(
                    "column {cid:?} refcount is {} but {} artifact reference(s) exist",
                    col.refs, want
                ));
            }
        }
        if unique != self.unique_bytes {
            violations.push(format!(
                "unique_bytes counter is {} but stored content sums to {}",
                self.unique_bytes, unique
            ));
        }
        if logical != self.logical_bytes {
            violations.push(format!(
                "logical_bytes counter is {} but artifact nominal sizes sum to {}",
                self.logical_bytes, logical
            ));
        }
        violations
    }

    /// Retrieve an artifact's content, reassembling deduplicated datasets
    /// from the column store.
    ///
    /// With a fault injector installed, the injector may turn the call
    /// into a miss (returning `None` even for stored artifacts) so
    /// callers' degradation paths can be exercised deterministically.
    #[must_use]
    pub fn get(&self, id: ArtifactId) -> Option<Value> {
        if let Some(f) = &self.faults {
            if f.on_load() {
                return None;
            }
        }
        match self.artifacts.get(&id)? {
            StoredArtifact::Whole(v) => Some(v.clone()),
            StoredArtifact::Dataset { columns, .. } => {
                let cols: Option<Vec<Column>> = if let Some(vault) = &self.vault {
                    vault.fetch(columns)
                } else {
                    columns
                        .iter()
                        .map(|r| {
                            self.columns
                                .get(&r.id)
                                .map(|sc| Column::from_arc(&r.name, r.id, Arc::clone(&sc.data)))
                        })
                        .collect()
                };
                DataFrame::new(cols?).ok().map(Value::dataset)
            }
        }
    }

    /// Whether the artifact's content is stored (the vertex `mat` flag).
    #[must_use]
    pub fn contains(&self, id: ArtifactId) -> bool {
        self.artifacts.contains_key(&id)
    }

    /// Bytes physically held after deduplication.
    #[must_use]
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }

    /// Sum of nominal sizes of all materialized artifacts.
    #[must_use]
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Number of materialized artifacts.
    #[must_use]
    pub fn n_artifacts(&self) -> usize {
        self.artifacts.len()
    }

    /// Number of unique columns held.
    #[must_use]
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Ids of all materialized artifacts.
    #[must_use]
    pub fn materialized_ids(&self) -> Vec<ArtifactId> {
        self.artifacts.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::ops;

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Int(vec![1, 2, 3, 4])),
            Column::source("t", "b", ColumnData::Float(vec![0.1, 0.2, 0.3, 0.4])),
        ])
        .unwrap()
    }

    fn aid(n: u64) -> ArtifactId {
        ArtifactId(n)
    }

    #[test]
    fn dedup_shares_columns_between_artifacts() {
        let mut sm = StorageManager::new(true);
        let df = frame();
        let added1 = sm.store(aid(1), &Value::dataset(df.clone()));
        assert_eq!(added1, df.nbytes() as u64);

        // A projection shares both column ids with the original.
        let proj = df.select(&["b", "a"]).unwrap();
        assert_eq!(sm.marginal_bytes(&Value::dataset(proj.clone())), 0);
        let added2 = sm.store(aid(2), &Value::dataset(proj.clone()));
        assert_eq!(added2, 0);

        assert_eq!(sm.unique_bytes(), df.nbytes() as u64);
        assert_eq!(sm.logical_bytes(), (df.nbytes() + proj.nbytes()) as u64);
        assert_eq!(sm.n_columns(), 2);
    }

    #[test]
    fn reassembly_round_trips() {
        let mut sm = StorageManager::new(true);
        let df = frame();
        sm.store(aid(1), &Value::dataset(df.clone()));
        let back = sm.get(aid(1)).unwrap();
        let bdf = back.as_dataset().unwrap();
        assert_eq!(bdf.column_names(), df.column_names());
        assert_eq!(bdf.column_ids(), df.column_ids());
        assert_eq!(bdf.column("a").unwrap().ints().unwrap(), &[1, 2, 3, 4]);
        assert!(sm.get(aid(9)).is_none());
    }

    #[test]
    fn eviction_respects_shared_columns() {
        let mut sm = StorageManager::new(true);
        let df = frame();
        let proj = df.select(&["a"]).unwrap();
        sm.store(aid(1), &Value::dataset(df.clone()));
        sm.store(aid(2), &Value::dataset(proj));
        // Evicting the full frame frees only the column no longer shared.
        let freed = sm.evict(aid(1));
        assert_eq!(freed, df.column("b").unwrap().nbytes() as u64);
        assert!(sm.contains(aid(2)));
        let back = sm.get(aid(2)).unwrap();
        assert_eq!(back.as_dataset().unwrap().n_cols(), 1);
        // Evicting the projection frees the rest.
        let freed2 = sm.evict(aid(2));
        assert_eq!(freed2, df.column("a").unwrap().nbytes() as u64);
        assert_eq!(sm.unique_bytes(), 0);
        assert_eq!(sm.n_columns(), 0);
        assert_eq!(sm.evict(aid(2)), 0); // double evict is a no-op
    }

    #[test]
    fn derived_columns_add_only_their_bytes() {
        let mut sm = StorageManager::new(true);
        let df = frame();
        sm.store(aid(1), &Value::dataset(df.clone()));
        // A map adds one derived column; storing the result adds only it.
        let mapped = ops::map_column(&df, "b", &ops::MapFn::Abs, "b_abs").unwrap();
        let marginal = sm.marginal_bytes(&Value::dataset(mapped.clone()));
        assert_eq!(marginal, mapped.column("b_abs").unwrap().nbytes() as u64);
        let added = sm.store(aid(2), &Value::dataset(mapped));
        assert_eq!(added, marginal);
    }

    #[test]
    fn plain_store_does_not_deduplicate() {
        let mut sm = StorageManager::new(false);
        let df = frame();
        let proj = df.select(&["a"]).unwrap();
        sm.store(aid(1), &Value::dataset(df.clone()));
        let added = sm.store(aid(2), &Value::dataset(proj.clone()));
        assert_eq!(added, proj.nbytes() as u64);
        assert_eq!(sm.unique_bytes(), sm.logical_bytes());
    }

    #[test]
    fn audit_passes_on_healthy_stores() {
        for dedup in [true, false] {
            let mut sm = StorageManager::new(dedup);
            let df = frame();
            sm.store(aid(1), &Value::dataset(df.clone()));
            sm.store(aid(2), &Value::dataset(df.select(&["a"]).unwrap()));
            sm.store(aid(3), &Value::Aggregate(co_dataframe::Scalar::Float(2.0)));
            assert_eq!(sm.audit(), Vec::<String>::new());
            sm.evict(aid(1));
            assert_eq!(sm.audit(), Vec::<String>::new());
        }
    }

    #[test]
    fn audit_catches_counter_skew() {
        let mut sm = StorageManager::new(true);
        sm.store(aid(1), &Value::dataset(frame()));
        sm.unique_bytes += 7; // seeded corruption
        let violations = sm.audit();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("unique_bytes"), "{violations:?}");

        let mut sm = StorageManager::new(false);
        sm.store(aid(1), &Value::dataset(frame()));
        sm.logical_bytes -= 1; // seeded corruption
        let violations = sm.audit();
        assert!(
            violations.iter().any(|v| v.contains("logical_bytes")),
            "{violations:?}"
        );
    }

    #[test]
    fn audit_catches_refcount_and_dangling_corruption() {
        // Wrong refcount on a shared column.
        let mut sm = StorageManager::new(true);
        let df = frame();
        sm.store(aid(1), &Value::dataset(df.clone()));
        sm.store(aid(2), &Value::dataset(df.select(&["a"]).unwrap()));
        let shared = df.column("a").unwrap().id();
        sm.columns.get_mut(&shared).unwrap().refs = 1; // seeded corruption
        let violations = sm.audit();
        assert!(
            violations.iter().any(|v| v.contains("refcount")),
            "{violations:?}"
        );

        // Dangling column reference + the orphan it leaves behind.
        let mut sm = StorageManager::new(true);
        sm.store(aid(1), &Value::dataset(df.clone()));
        let dropped = df.column("b").unwrap().id();
        sm.columns.remove(&dropped); // seeded corruption
        let violations = sm.audit();
        assert!(
            violations.iter().any(|v| v.contains("absent")),
            "{violations:?}"
        );

        // Orphan column nothing references.
        let mut sm = StorageManager::new(true);
        sm.store(aid(1), &Value::dataset(df.clone()));
        sm.evict(aid(1));
        sm.columns.insert(
            df.column("a").unwrap().id(),
            StoredColumn {
                data: df.column("a").unwrap().data(),
                nbytes: df.column("a").unwrap().nbytes() as u64,
                refs: 1,
            },
        ); // seeded corruption
        sm.unique_bytes += df.column("a").unwrap().nbytes() as u64; // keep counters consistent
        let violations = sm.audit();
        assert!(
            violations.iter().any(|v| v.contains("no artifact")),
            "{violations:?}"
        );
    }

    #[test]
    fn vault_shares_columns_across_managers() {
        let vault = Arc::new(ColumnVault::new(4));
        let mut a = StorageManager::new_vaulted(Arc::clone(&vault));
        let mut b = StorageManager::new_vaulted(Arc::clone(&vault));
        let df = frame();
        let added1 = a.store(aid(1), &Value::dataset(df.clone()));
        assert_eq!(added1, df.nbytes() as u64);
        // The same columns stored through another shard's manager are
        // deduplicated vault-wide: nothing new is held.
        let proj = df.select(&["a"]).unwrap();
        assert_eq!(b.marginal_bytes(&Value::dataset(proj.clone())), 0);
        assert_eq!(b.store(aid(2), &Value::dataset(proj)), 0);
        assert_eq!(vault.unique_bytes(), df.nbytes() as u64);
        assert_eq!(vault.n_columns(), 2);
        assert_eq!(vault.audit(&[&a, &b]), Vec::<String>::new());
        assert_eq!(a.audit(), Vec::<String>::new());
        // Evicting from one manager keeps columns the other references.
        let freed = a.evict(aid(1));
        assert_eq!(freed, df.column("b").unwrap().nbytes() as u64);
        let back = b.get(aid(2)).unwrap();
        assert_eq!(back.as_dataset().unwrap().n_cols(), 1);
        assert_eq!(b.evict(aid(2)), df.column("a").unwrap().nbytes() as u64);
        assert_eq!(vault.unique_bytes(), 0);
        assert_eq!(vault.n_columns(), 0);
    }

    #[test]
    fn vault_audit_catches_cross_manager_refcount_skew() {
        let vault = Arc::new(ColumnVault::new(2));
        let mut a = StorageManager::new_vaulted(Arc::clone(&vault));
        let mut b = StorageManager::new_vaulted(Arc::clone(&vault));
        let df = frame();
        a.store(aid(1), &Value::dataset(df.clone()));
        b.store(aid(2), &Value::dataset(df.clone()));
        let cid = df.column("a").unwrap().id();
        vault.shards[vault.shard_of(cid)]
            .lock()
            .get_mut(&cid)
            .unwrap()
            .refs = 1; // seeded corruption
        let violations = vault.audit(&[&a, &b]);
        assert!(
            violations.iter().any(|v| v.contains("refcount")),
            "{violations:?}"
        );
    }

    #[test]
    fn aggregates_and_double_store() {
        let mut sm = StorageManager::new(true);
        let v = Value::Aggregate(co_dataframe::Scalar::Float(1.0));
        assert_eq!(sm.store(aid(1), &v), 8);
        assert_eq!(sm.store(aid(1), &v), 0); // idempotent
        assert_eq!(sm.n_artifacts(), 1);
    }
}
