//! Cold column files: on-disk copies of materialized dataset artifacts.
//!
//! The paper's storage manager keeps materialized content in memory
//! (§3.2); the cold store is the opt-in disk tier behind it — one
//! `cold-<artifact id>.col` file per materialized dataset, written
//! through [`crate::vfs`] with per-column CRC-32 framing so bit rot is
//! *detected* rather than silently served. Nothing here is required
//! for correctness of recovery (the journal/snapshot layer never
//! references cold files); the store exists so a background scrubber
//! can verify artifact bytes and — because every artifact's lineage is
//! in the Experiment Graph — self-heal a corrupt column by recomputing
//! it from its parents and rewriting a byte-identical file.
//!
//! ## File format (`EGCOL 1`)
//!
//! ```text
//! [8B magic "EGCOL 1\n"]
//! [n_cols: u32 LE]
//! per column:
//!   [name_len: u32 LE] [name: UTF-8]
//!   [column id: u64 LE]
//!   [dtype: u8]               0=Int 1=Float 2=Str 3=Bool
//!   [payload_len: u64 LE] [payload] [crc32(payload): u32 LE]
//! [crc32 of every byte above: u32 LE]
//! ```
//!
//! The per-column CRCs localise damage for diagnostics; the file
//! footer covers headers, names and ids too, so *any* single-byte flip
//! anywhere in the file is detected.
//!
//! Payloads are little-endian fixed-width for Int/Float (f64 bit
//! patterns, so `NaN` round-trips exactly), one byte per Bool, and
//! `[len: u32 LE][bytes]` per Str. The encoding is deterministic: the
//! same logical dataframe always produces the same bytes, which is
//! what lets the scrubber assert a healed file is byte-identical.

use crate::artifact::ArtifactId;
use crate::error::{GraphError, Result};
use crate::faults::FaultInjector;
use crate::journal::crc32;
use crate::value::Value;
use crate::vfs::{self, VfsFile};
use co_dataframe::{Column, ColumnData, ColumnId, DataFrame};
use std::path::{Path, PathBuf};

/// Magic bytes opening every cold column file.
pub const COLD_MAGIC: &[u8; 8] = b"EGCOL 1\n";

/// Suffix given to quarantined (unrecoverable) cold files.
pub const QUARANTINE_SUFFIX: &str = ".quarantined";

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> GraphError {
    GraphError::Io(format!("cannot {what} cold file {}: {e}", path.display()))
}

/// Counters from one scrub pass over the cold store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Cold files whose CRCs were verified.
    pub checked: usize,
    /// Corrupt files rewritten from lineage-based recomputation.
    pub healed: usize,
    /// Corrupt files with no recoverable lineage, set aside.
    pub quarantined: usize,
}

impl ScrubOutcome {
    /// Fold another pass's counters into this one.
    pub fn add(&mut self, other: &ScrubOutcome) {
        self.checked += other.checked;
        self.healed += other.healed;
        self.quarantined += other.quarantined;
    }
}

/// Serialise a dataset value to its cold-file bytes. Returns `None`
/// for non-dataset values (aggregates and models stay memory-only —
/// they are cheap to recompute and have no column structure).
#[must_use]
pub fn encode(value: &Value) -> Option<Vec<u8>> {
    let df = value.as_dataset()?;
    let mut out = Vec::with_capacity(64 + value.nbytes());
    out.extend_from_slice(COLD_MAGIC);
    out.extend_from_slice(&u32::try_from(df.columns().len()).ok()?.to_le_bytes());
    for col in df.columns() {
        let name = col.name().as_bytes();
        out.extend_from_slice(&u32::try_from(name.len()).ok()?.to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&col.id().0.to_le_bytes());
        let data = col.to_data();
        let (dtype, payload) = encode_data(&data);
        out.push(dtype);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let crc = crc32(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc.to_le_bytes());
    }
    let footer = crc32(&out);
    out.extend_from_slice(&footer.to_le_bytes());
    Some(out)
}

fn encode_data(data: &ColumnData) -> (u8, Vec<u8>) {
    match data {
        ColumnData::Int(v) => {
            let mut p = Vec::with_capacity(v.len() * 8);
            for x in v {
                p.extend_from_slice(&x.to_le_bytes());
            }
            (0, p)
        }
        ColumnData::Float(v) => {
            let mut p = Vec::with_capacity(v.len() * 8);
            for x in v {
                p.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            (1, p)
        }
        ColumnData::Str(v) => {
            let mut p = Vec::new();
            for s in v {
                // co-lint:allow(lossy-cast) the cold format stores cell byte lengths as u32; cells are far below 4 GiB
                p.extend_from_slice(&(s.len() as u32).to_le_bytes());
                p.extend_from_slice(s.as_bytes());
            }
            (2, p)
        }
        ColumnData::Bool(v) => (3, v.iter().map(|&b| u8::from(b)).collect()),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
    origin: &'a str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.bytes.len() - self.off < n {
            return Err(GraphError::corrupt(
                self.origin,
                0,
                format!("truncated cold file: {what} needs {n} bytes"),
            ));
        }
        let s = &self.bytes[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }
}

/// Decode cold-file bytes back into a dataset [`Value`], verifying the
/// magic and every column CRC. Any mismatch is [`GraphError::Corrupt`].
pub fn decode(bytes: &[u8], origin: &str) -> Result<Value> {
    if bytes.len() < COLD_MAGIC.len() + 4 || &bytes[..COLD_MAGIC.len()] != COLD_MAGIC {
        return Err(GraphError::corrupt(origin, 0, "bad cold-file magic"));
    }
    let body_end = bytes.len() - 4;
    let footer = u32::from_le_bytes(bytes[body_end..].try_into().unwrap_or([0; 4]));
    if crc32(&bytes[..body_end]) != footer {
        return Err(GraphError::corrupt(
            origin,
            0,
            "cold file fails its whole-file CRC",
        ));
    }
    let bytes = &bytes[..body_end];
    let mut cur = Cursor {
        bytes,
        off: COLD_MAGIC.len(),
        origin,
    };
    let n_cols = cur.u32("column count")? as usize;
    let mut columns = Vec::with_capacity(n_cols);
    for record in 1..=n_cols {
        let name_len = cur.u32("name length")? as usize;
        let name = std::str::from_utf8(cur.take(name_len, "column name")?)
            .map_err(|_| GraphError::corrupt(origin, record, "column name is not UTF-8"))?
            .to_owned();
        let id = ColumnId(cur.u64("column id")?);
        let dtype = cur.take(1, "dtype")?[0];
        let payload_len = usize::try_from(cur.u64("payload length")?)
            .map_err(|_| GraphError::corrupt(origin, record, "payload length overflows"))?;
        let payload = cur.take(payload_len, "payload")?;
        let crc = cur.u32("payload crc")?;
        if crc32(payload) != crc {
            return Err(GraphError::corrupt(
                origin,
                record,
                format!("column {name:?} fails its CRC"),
            ));
        }
        let data = decode_data(dtype, payload, origin, record)?;
        columns.push(Column::derived(&name, id, data));
    }
    if cur.off != bytes.len() {
        return Err(GraphError::corrupt(
            origin,
            0,
            "trailing bytes after last column",
        ));
    }
    let df = DataFrame::new(columns)
        .map_err(|e| GraphError::corrupt(origin, 0, format!("columns do not form a frame: {e}")))?;
    Ok(Value::dataset(df))
}

fn decode_data(dtype: u8, payload: &[u8], origin: &str, record: usize) -> Result<ColumnData> {
    match dtype {
        0 => {
            if !payload.len().is_multiple_of(8) {
                return Err(GraphError::corrupt(
                    origin,
                    record,
                    "int payload not 8-aligned",
                ));
            }
            Ok(ColumnData::Int(
                payload
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap_or([0; 8])))
                    .collect(),
            ))
        }
        1 => {
            if !payload.len().is_multiple_of(8) {
                return Err(GraphError::corrupt(
                    origin,
                    record,
                    "float payload not 8-aligned",
                ));
            }
            Ok(ColumnData::Float(
                payload
                    .chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap_or([0; 8]))))
                    .collect(),
            ))
        }
        2 => {
            let mut v = Vec::new();
            let mut cur = Cursor {
                bytes: payload,
                off: 0,
                origin,
            };
            while cur.off < payload.len() {
                let len = cur.u32("string length")? as usize;
                let s = std::str::from_utf8(cur.take(len, "string bytes")?)
                    .map_err(|_| GraphError::corrupt(origin, record, "string is not UTF-8"))?;
                v.push(s.to_owned());
            }
            Ok(ColumnData::Str(v))
        }
        3 => Ok(ColumnData::Bool(payload.iter().map(|&b| b != 0).collect())),
        other => Err(GraphError::corrupt(
            origin,
            record,
            format!("unknown dtype tag {other}"),
        )),
    }
}

/// The cold store: a directory of `cold-*.col` files, one per
/// materialized dataset artifact.
#[derive(Debug)]
pub struct ColdStore {
    dir: PathBuf,
}

impl ColdStore {
    /// Open (creating the directory if needed) a cold store rooted at
    /// `dir`.
    pub fn open(dir: &Path) -> Result<ColdStore> {
        vfs::create_dir_all(dir, None).map_err(|e| io_err("create directory for", dir, &e))?;
        Ok(ColdStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cold file path for an artifact.
    #[must_use]
    pub fn path_for(&self, id: ArtifactId) -> PathBuf {
        self.dir.join(format!("cold-{:016x}.col", id.0))
    }

    /// Write an artifact's dataset content atomically (tmp + fsync +
    /// rename through the vfs). Returns `false` — without touching the
    /// disk — for non-dataset values.
    pub fn write(
        &self,
        id: ArtifactId,
        value: &Value,
        faults: Option<&FaultInjector>,
    ) -> Result<bool> {
        let Some(bytes) = encode(value) else {
            return Ok(false);
        };
        let path = self.path_for(id);
        let tmp = crate::snapshot::tmp_path(&path);
        {
            let mut file = VfsFile::create(&tmp, faults).map_err(|e| io_err("create", &tmp, &e))?;
            file.write_all(&bytes, faults)
                .map_err(|e| io_err("write", &tmp, &e))?;
            file.sync(faults).map_err(|e| io_err("sync", &tmp, &e))?;
        }
        vfs::rename(&tmp, &path, faults).map_err(|e| io_err("rename", &path, &e))?;
        vfs::sync_dir(&self.dir);
        Ok(true)
    }

    /// Read and fully verify an artifact's cold content. `Ok(None)`
    /// when no cold file exists; [`GraphError::Corrupt`] when one
    /// exists but fails verification.
    pub fn read(&self, id: ArtifactId, faults: Option<&FaultInjector>) -> Result<Option<Value>> {
        let path = self.path_for(id);
        let bytes = match vfs::read(&path, faults) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", &path, &e)),
        };
        decode(&bytes, &path.display().to_string()).map(Some)
    }

    /// Remove an artifact's cold file (eviction). Missing files are
    /// not an error — eviction must be idempotent.
    pub fn remove(&self, id: ArtifactId, faults: Option<&FaultInjector>) -> Result<()> {
        let path = self.path_for(id);
        match vfs::remove_file(&path, faults) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", &path, &e)),
        }
    }

    /// Every artifact with a (non-quarantined) cold file, ascending.
    pub fn list(&self) -> Result<Vec<ArtifactId>> {
        let mut ids = Vec::new();
        let entries = vfs::read_dir_sorted(&self.dir, None)
            .map_err(|e| io_err("list directory of", &self.dir, &e))?;
        for entry in entries {
            let Some(name) = entry.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(hex) = name
                .strip_prefix("cold-")
                .and_then(|rest| rest.strip_suffix(".col"))
            {
                if let Ok(raw) = u64::from_str_radix(hex, 16) {
                    ids.push(ArtifactId(raw));
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Set a genuinely unrecoverable cold file aside by renaming it to
    /// `<file>.quarantined` — it stops being served and scrubbed, but
    /// stays on disk for post-mortems.
    pub fn quarantine_file(&self, id: ArtifactId, faults: Option<&FaultInjector>) -> Result<()> {
        let path = self.path_for(id);
        let mut os = path.as_os_str().to_owned();
        os.push(QUARANTINE_SUFFIX);
        vfs::rename(&path, &PathBuf::from(os), faults).map_err(|e| io_err("quarantine", &path, &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::IoFault;
    use std::fs;

    fn sample_value() -> Value {
        let df = DataFrame::new(vec![
            Column::source("t", "ints", ColumnData::Int(vec![-1, 0, i64::MAX])),
            Column::source(
                "t",
                "floats",
                ColumnData::Float(vec![0.5, f64::NAN, f64::INFINITY]),
            ),
            Column::source(
                "t",
                "strs",
                ColumnData::Str(vec![
                    String::new(),
                    "héllo\tworld".to_owned(),
                    "z".to_owned(),
                ]),
            ),
            Column::source("t", "bools", ColumnData::Bool(vec![true, false, true])),
        ])
        .unwrap();
        Value::dataset(df)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("co_graph_cold_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let value = sample_value();
        let bytes = encode(&value).unwrap();
        let back = decode(&bytes, "<memory>").unwrap();
        // NaN != NaN under PartialEq, so compare re-encoded bytes: the
        // encoding is deterministic and preserves f64 bit patterns.
        assert_eq!(encode(&back).unwrap(), bytes);
        assert_eq!(
            back.as_dataset().unwrap().columns().len(),
            value.as_dataset().unwrap().columns().len()
        );
    }

    #[test]
    fn non_datasets_are_not_stored() {
        assert!(encode(&Value::Aggregate(co_dataframe::Scalar::Int(7))).is_none());
        let dir = tmp_dir("nondata");
        let store = ColdStore::open(&dir).unwrap();
        let wrote = store
            .write(
                ArtifactId(1),
                &Value::Aggregate(co_dataframe::Scalar::Int(7)),
                None,
            )
            .unwrap();
        assert!(!wrote);
        assert!(store.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_round_trips_and_lists() {
        let dir = tmp_dir("round");
        let store = ColdStore::open(&dir).unwrap();
        let value = sample_value();
        assert!(store.write(ArtifactId(0xabc), &value, None).unwrap());
        assert_eq!(store.list().unwrap(), vec![ArtifactId(0xabc)]);
        let back = store.read(ArtifactId(0xabc), None).unwrap().unwrap();
        assert_eq!(encode(&back).unwrap(), encode(&value).unwrap());
        assert!(store.read(ArtifactId(0xdef), None).unwrap().is_none());
        store.remove(ArtifactId(0xabc), None).unwrap();
        store.remove(ArtifactId(0xabc), None).unwrap(); // idempotent
        assert!(store.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode(&sample_value()).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode(&bad, "<memory>").is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn quarantine_renames_the_file_aside() {
        let dir = tmp_dir("quarantine");
        let store = ColdStore::open(&dir).unwrap();
        store.write(ArtifactId(5), &sample_value(), None).unwrap();
        store.quarantine_file(ArtifactId(5), None).unwrap();
        assert!(store.list().unwrap().is_empty());
        assert!(store.read(ArtifactId(5), None).unwrap().is_none());
        let quarantined: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(QUARANTINE_SUFFIX))
            .collect();
        assert_eq!(quarantined.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_enospc_fails_the_write_cleanly() {
        let dir = tmp_dir("enospc");
        let store = ColdStore::open(&dir).unwrap();
        let faults = FaultInjector::new();
        faults.arm_io_fault(IoFault::Enospc, 1);
        assert!(store
            .write(ArtifactId(9), &sample_value(), Some(&faults))
            .is_err());
        assert!(store.list().unwrap().is_empty(), "no half-written file");
        store
            .write(ArtifactId(9), &sample_value(), Some(&faults))
            .unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
