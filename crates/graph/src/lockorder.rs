//! Runtime lock-order witness for [`ShardedEg`](crate::shard::ShardedEg).
//!
//! The static analyzer (`co-lint`, rule `shard-lock-order`) proves
//! what it can from source: multi-shard write acquisitions it can see
//! must be provably ascending. This module checks the rest — the
//! *actual* acquisition order of every shard lock — at runtime, under
//! the stress and chaos suites where interleavings are real.
//!
//! Every read/write acquisition on a sharded graph is reported here
//! before the thread blocks on the lock. The witness keeps:
//!
//! * a thread-local list of locks the current thread holds, and
//! * a global happens-before edge map: `(graph, j, k)` records that
//!   some thread once acquired shard `k` while holding shard `j` of
//!   the same sharded graph, together with the two source locations.
//!
//! Three hazards fail **loudly and immediately** (a panic naming both
//! offending acquisition sites) instead of deadlocking silently:
//!
//! 1. **Descending write** — write-locking shard `k` while holding
//!    any lock on shard `j > k` of the same graph. The engine's
//!    protocol (see `ShardedEg::write_set`) is ascending-only, so
//!    this is a violation even if no cycle has materialised yet.
//! 2. **Re-entrant acquisition** — locking a shard this thread
//!    already holds, where either side is a write: guaranteed
//!    self-deadlock on a non-reentrant lock.
//! 3. **Order cycle** — acquiring shard `k` while holding `j` when
//!    some earlier acquisition (any thread, any time) took `j` while
//!    holding `k`. This catches read-side inversions the ascending
//!    write rule alone cannot, without ever needing the deadlock to
//!    actually fire in the observed run.
//!
//! The witness is compiled in always but **active** only in debug
//! builds or under the `lock-witness` feature (CI runs shard_stress,
//! chaos and the crash matrix with `--features lock-witness` in
//! release). When inactive, [`acquire`] is a branch on a `const
//! false` and returns a no-op token.
//!
//! Acquisition sites are captured with `#[track_caller]` — a
//! [`Location`] is a `&'static` copy, far cheaper and more
//! deterministic than a backtrace, and it names exactly the line that
//! took the lock.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Whether the witness is active in this build.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "lock-witness"));

/// How a shard lock is being taken.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    Read,
    Write,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Read => "read",
            Mode::Write => "write",
        }
    }
}

/// One lock this thread currently holds.
#[derive(Clone, Copy)]
struct HeldEntry {
    graph: u64,
    shard: usize,
    mode: Mode,
    site: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
}

/// The first observation of "`to` acquired while `from` held".
struct Edge {
    from_site: String,
    to_site: String,
}

/// Global order graph, keyed `(graph id, from shard, to shard)`.
type EdgeMap = HashMap<(u64, usize, usize), Edge>;

static EDGES: std::sync::OnceLock<Mutex<EdgeMap>> = std::sync::OnceLock::new();

fn edges() -> &'static Mutex<EdgeMap> {
    EDGES.get_or_init(|| Mutex::new(HashMap::new()))
}

static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh witness identity for one sharded graph. Orders are only
/// compared within a graph: holding locks of two *different*
/// `ShardedEg`s never constitutes an ordering edge.
#[must_use]
pub fn next_graph_id() -> u64 {
    NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed)
}

/// Token proving an acquisition was reported; dropping it reports the
/// release. Held inside the shard guard wrappers.
pub struct Held {
    /// `None` when the witness is disabled (nothing to undo on drop).
    key: Option<(u64, usize, Mode)>,
}

impl Drop for Held {
    fn drop(&mut self) {
        let Some((graph, shard, mode)) = self.key else {
            return;
        };
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held
                .iter()
                .rposition(|e| e.graph == graph && e.shard == shard && e.mode == mode)
            {
                held.remove(pos);
            }
        });
    }
}

/// Report an acquisition *about to happen*. Panics (before the thread
/// can block) on a descending write, a write-involved re-entrant
/// acquisition, or an order cycle against the global edge map.
#[track_caller]
#[must_use]
pub fn acquire(graph: u64, shard: usize, mode: Mode) -> Held {
    if !ENABLED {
        return Held { key: None };
    }
    let site = Location::caller();
    // Phase 1: check against this thread's held set, collecting any
    // violation message so the panic happens outside the borrows.
    let violation = HELD.with(|h| {
        let held = h.borrow();
        for e in held.iter() {
            if e.graph != graph {
                continue;
            }
            if e.shard == shard {
                if mode == Mode::Write || e.mode == Mode::Write {
                    return Some(format!(
                        "lock-order witness: re-entrant acquisition: shard {shard} \
                         {}-locked at {site} while this thread already holds its \
                         {} lock taken at {} — guaranteed self-deadlock",
                        mode.name(),
                        e.mode.name(),
                        e.site,
                    ));
                }
                continue;
            }
            if mode == Mode::Write && e.shard > shard {
                return Some(format!(
                    "lock-order witness: descending write acquisition: shard {shard} \
                     write-locked at {site} while shard {} ({}) is held, taken at {} \
                     — cross-shard acquisitions must ascend (see ShardedEg::write_set)",
                    e.shard,
                    e.mode.name(),
                    e.site,
                ));
            }
        }
        // Phase 2: consult/extend the global order graph.
        let mut map = edges().lock();
        for e in held.iter() {
            if e.graph != graph || e.shard == shard {
                continue;
            }
            if let Some(rev) = map.get(&(graph, shard, e.shard)) {
                return Some(format!(
                    "lock-order witness: lock-order cycle: acquiring shard {shard} \
                     ({}) at {site} while shard {} is held (taken at {}), but shard {} \
                     was previously acquired at {} while shard {shard} was held \
                     (taken at {}) — these two orders can deadlock",
                    mode.name(),
                    e.shard,
                    e.site,
                    e.shard,
                    rev.to_site,
                    rev.from_site,
                ));
            }
            map.entry((graph, e.shard, shard)).or_insert_with(|| Edge {
                from_site: e.site.to_string(),
                to_site: site.to_string(),
            });
        }
        None
    });
    if let Some(msg) = violation {
        // co-lint:allow(no-panic) the witness's whole purpose is to fail loudly before a silent deadlock
        panic!("{msg}");
    }
    HELD.with(|h| {
        h.borrow_mut().push(HeldEntry {
            graph,
            shard,
            mode,
            site,
        });
    });
    Held {
        key: Some((graph, shard, mode)),
    }
}

/// Number of distinct ordering edges recorded for `graph` so far
/// (test/diagnostic hook).
#[must_use]
pub fn edge_count(graph: u64) -> usize {
    edges()
        .lock()
        .keys()
        .filter(|(g, _, _)| *g == graph)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Witness-off builds (release without `lock-witness`) make every
    /// acquisition a no-op; the hazard tests have nothing to observe.
    fn witness_off() -> bool {
        !ENABLED
    }

    fn expect_panic(f: impl FnOnce(), needle: &str) {
        let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a witness panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(
            msg.contains(needle),
            "panic message {msg:?} missing {needle:?}"
        );
        assert!(
            msg.contains("lockorder.rs") || msg.contains(':'),
            "panic message should carry acquisition sites: {msg:?}"
        );
    }

    #[test]
    fn ascending_writes_pass_and_release() {
        if witness_off() {
            return;
        }
        let g = next_graph_id();
        {
            let _a = acquire(g, 0, Mode::Write);
            let _b = acquire(g, 1, Mode::Write);
            let _c = acquire(g, 3, Mode::Write);
        }
        // Everything released: re-acquiring from scratch is fine.
        let _a = acquire(g, 0, Mode::Write);
        assert!(edge_count(g) >= 2);
    }

    #[test]
    fn descending_write_is_caught() {
        if witness_off() {
            return;
        }
        let g = next_graph_id();
        expect_panic(
            || {
                let _hi = acquire(g, 2, Mode::Write);
                let _lo = acquire(g, 0, Mode::Write);
            },
            "descending write",
        );
    }

    #[test]
    fn descending_write_under_read_is_caught() {
        if witness_off() {
            return;
        }
        let g = next_graph_id();
        expect_panic(
            || {
                let _r = acquire(g, 5, Mode::Read);
                let _w = acquire(g, 1, Mode::Write);
            },
            "descending write",
        );
    }

    #[test]
    fn reentrant_write_is_caught() {
        if witness_off() {
            return;
        }
        let g = next_graph_id();
        expect_panic(
            || {
                let _a = acquire(g, 1, Mode::Write);
                let _b = acquire(g, 1, Mode::Read);
            },
            "re-entrant",
        );
    }

    #[test]
    fn read_order_cycle_is_caught_without_deadlocking() {
        if witness_off() {
            return;
        }
        let g = next_graph_id();
        // Episode 1 records the edge 0 -> 1.
        {
            let _a = acquire(g, 0, Mode::Read);
            let _b = acquire(g, 1, Mode::Read);
        }
        // Episode 2 inverts it: 1 -> 0 closes a cycle.
        expect_panic(
            || {
                let _b = acquire(g, 1, Mode::Read);
                let _a = acquire(g, 0, Mode::Read);
            },
            "cycle",
        );
    }

    #[test]
    fn graphs_are_independent() {
        let g1 = next_graph_id();
        let g2 = next_graph_id();
        let _hi = acquire(g1, 7, Mode::Write);
        // A "descending" acquisition relative to g1's held lock is
        // fine — it belongs to a different graph.
        let _lo = acquire(g2, 0, Mode::Write);
    }

    #[test]
    fn reentrant_reads_are_tolerated() {
        let g = next_graph_id();
        let _a = acquire(g, 2, Mode::Read);
        let _b = acquire(g, 2, Mode::Read);
    }
}
