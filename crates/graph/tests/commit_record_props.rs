//! Property tests for the cross-shard commit log (`EGCMT 1`): the
//! commit-record codec must round-trip exactly, and any single-byte
//! corruption of the on-disk log must be *detected* — as a hard error,
//! or by confining the damage to a truncated tail so the surviving
//! prefix is exactly the records that were committed (the commit log's
//! tail, like the journal's, may legitimately be torn by a crash
//! mid-append). These mirror `durability_props.rs` for the new file
//! format the sharded layout introduces.

use co_graph::journal::{self, CommitRecord};
use co_graph::CommitLog;
use proptest::prelude::*;
use std::path::PathBuf;

/// A strictly ascending, non-empty shard list — the only shape the
/// commit point ever writes (locks are acquired in ascending order).
fn arb_shards() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..8, 1..6).prop_map(|gaps| {
        let mut shards = Vec::with_capacity(gaps.len());
        let mut at = 0u32;
        for g in gaps {
            at += g;
            shards.push(at);
        }
        shards
    })
}

fn arb_record() -> impl Strategy<Value = CommitRecord> {
    (0u64..u64::MAX, arb_shards()).prop_map(|(seq, shards)| CommitRecord { seq, shards })
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("commit_record_props");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Payload codec: encode → decode is the identity.
    fn commit_record_round_trips(record in arb_record()) {
        let payload = record.encode();
        let back = CommitRecord::decode(&payload, "prop", 1).unwrap();
        prop_assert_eq!(back, record);
    }

    /// Whole-file round trip: append N records, replay the log, get the
    /// same N records with no torn tail.
    fn commit_log_round_trips(records in proptest::collection::vec(arb_record(), 1..5)) {
        let path = scratch("round_trip.commit");
        let _ = std::fs::remove_file(&path);
        let mut log = CommitLog::open(&path).unwrap();
        for r in &records {
            log.append(r, None).unwrap();
        }
        drop(log);
        let out = journal::replay_commits(&path).unwrap();
        prop_assert!(out.torn_at.is_none());
        prop_assert_eq!(out.records, records);
    }

    /// Flip any single byte of a commit log: replay must either error
    /// out (bad magic, unparseable record) or stop at a torn tail whose
    /// surviving prefix equals the original records exactly. A flip must
    /// never fabricate a commit — that would resurrect a publish that
    /// was rolled back.
    fn commit_log_corruption_is_detected_or_torn(
        records in proptest::collection::vec(arb_record(), 1..5),
        idx in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let path = scratch("corrupt.commit");
        let _ = std::fs::remove_file(&path);
        let mut log = CommitLog::open(&path).unwrap();
        for r in &records {
            log.append(r, None).unwrap();
        }
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = idx % bytes.len();
        bytes[at] ^= mask;
        std::fs::write(&path, &bytes).unwrap();

        match journal::replay_commits(&path) {
            Err(_) => {} // detected outright
            Ok(out) => {
                prop_assert!(
                    out.torn_at.is_some(),
                    "flip of byte {} (mask {:#04x}) went unnoticed",
                    at,
                    mask
                );
                prop_assert!(out.records.len() <= records.len());
                for (got, want) in out.records.iter().zip(records.iter()) {
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// Truncate the log at any byte boundary: replay keeps a prefix of
    /// the original records and flags the torn tail (unless the cut
    /// lands exactly on a record boundary).
    fn commit_log_truncation_keeps_a_prefix(
        records in proptest::collection::vec(arb_record(), 1..5),
        cut in 0usize..1_000_000,
    ) {
        let path = scratch("truncate.commit");
        let _ = std::fs::remove_file(&path);
        let mut log = CommitLog::open(&path).unwrap();
        for r in &records {
            log.append(r, None).unwrap();
        }
        drop(log);
        let bytes = std::fs::read(&path).unwrap();
        let keep = cut % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..keep]).unwrap();

        // A cut exactly on a record boundary leaves a shorter but clean
        // log (no torn tail); anywhere else the tail is flagged. Either
        // way the surviving records are a prefix of the originals.
        let out = journal::replay_commits(&path).unwrap();
        prop_assert!(out.records.len() <= records.len());
        for (got, want) in out.records.iter().zip(records.iter()) {
            prop_assert_eq!(got, want);
        }
    }
}
