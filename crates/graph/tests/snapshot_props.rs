//! Property tests for the snapshot codec: round-trips must survive
//! hostile free-text fields — tabs (the field separator), newlines (the
//! record separator), and backslashes (the escape character) — in
//! vertex descriptions and source names.

use co_dataframe::Scalar;
use co_graph::{snapshot, ExperimentGraph, GraphError, NodeKind, Operation, Value, WorkloadDag};
use proptest::prelude::*;
use std::sync::Arc;

struct Tag(String);
impl Operation for Tag {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        Ok(Value::Aggregate(Scalar::Float(0.0)))
    }
}

/// Strings over an alphabet rich in exactly the characters the snapshot
/// format must escape, plus the `-` used as the None sentinel.
fn hostile(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec!['\t', '\n', '\\', '-', 'a', 'B', ' ', '0']),
        len,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn snapshot_round_trips_hostile_text(
        names in proptest::collection::vec(hostile(0..8), 1..4),
        descs in proptest::collection::vec(hostile(0..16), 1..5),
    ) {
        // A fan-in workload whose source names carry the hostile text.
        // The numeric prefix keeps artifact ids distinct and avoids a
        // name that is literally `-` (reserved as the None sentinel).
        let mut dag = WorkloadDag::new();
        let sources: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                dag.add_source(&format!("s{i}_{n}"), Value::Aggregate(Scalar::Float(0.0)))
            })
            .collect();
        let merged = dag.add_op(Arc::new(Tag("merge".into())), &sources).unwrap();
        let tail = dag.add_op(Arc::new(Tag("tail".into())), &[merged]).unwrap();
        dag.mark_terminal(tail).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();

        // Plant hostile descriptions directly (in production these are
        // schema / hyperparameter digests, but the format must not care).
        let ids = eg.topo_order().to_vec();
        for (id, d) in ids.iter().zip(descs.iter().cycle()) {
            eg.vertex_mut(*id).unwrap().description = d.clone();
        }

        let text = snapshot::to_snapshot(&eg).unwrap();
        let restored = snapshot::from_snapshot(&text, true).unwrap();
        prop_assert_eq!(restored.n_vertices(), eg.n_vertices());
        prop_assert_eq!(restored.topo_order(), eg.topo_order());
        for id in &ids {
            let a = eg.vertex(*id).unwrap();
            let b = restored.vertex(*id).unwrap();
            prop_assert_eq!(&a.description, &b.description);
            prop_assert_eq!(&a.source_name, &b.source_name);
            prop_assert_eq!(&a.parents, &b.parents);
        }
        // Fixed point: re-serializing the restored graph is bytewise
        // identical, so escaping is stable over repeated save/load.
        prop_assert_eq!(snapshot::to_snapshot(&restored).unwrap(), text);
    }
}

#[test]
fn missing_snapshot_file_is_a_graph_io_error() {
    let Err(err) = snapshot::load(std::path::Path::new("/nonexistent/dir/x.egsnap"), true) else {
        panic!("loading a missing snapshot succeeded");
    };
    assert!(matches!(err, GraphError::Io(_)), "{err}");
    assert!(err.to_string().contains("x.egsnap"));
}
