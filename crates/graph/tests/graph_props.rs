//! Property-based tests for the graph layer: Experiment Graph update
//! invariants, snapshot round-trips, and dedup-store accounting over
//! randomly generated workloads.

use co_dataframe::{Column, ColumnData, DataFrame, Scalar};
use co_graph::{
    snapshot, ArtifactId, ExperimentGraph, NodeKind, Operation, StorageManager, Value, WorkloadDag,
};
use proptest::prelude::*;
use std::sync::Arc;

struct Tag(String, NodeKind);
impl Operation for Tag {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        self.1
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        Ok(Value::Aggregate(Scalar::Float(0.0)))
    }
}

/// Spec: per node (parent seed, two-input?, model?, compute 1/16 s, size).
type Spec = (usize, bool, bool, u8, u16);

fn build_dag(specs: &[Spec]) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let src = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let mut nodes = vec![src];
    for (i, (pseed, two, model, t, s)) in specs.iter().enumerate() {
        let kind = if *model {
            NodeKind::Model
        } else {
            NodeKind::Dataset
        };
        let op = Arc::new(Tag(format!("op{i}"), kind));
        let p1 = nodes[pseed % nodes.len()];
        let node = if *two && nodes.len() > 1 {
            let p2 = nodes[(pseed / 3) % nodes.len()];
            if p1 == p2 {
                dag.add_op(op, &[p1]).unwrap()
            } else {
                dag.add_op(op, &[p1, p2]).unwrap()
            }
        } else {
            dag.add_op(op, &[p1]).unwrap()
        };
        dag.annotate(node, f64::from(*t) / 16.0, u64::from(*s))
            .unwrap();
        if *model {
            dag.node_mut(node).unwrap().quality = f64::from(*t) / 255.0;
        }
        nodes.push(node);
    }
    dag.mark_terminal(*nodes.last().unwrap()).unwrap();
    dag
}

fn arb_specs() -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::vec(
        (
            0usize..100,
            proptest::bool::ANY,
            proptest::bool::ANY,
            0u8..255,
            0u16..1000,
        ),
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn repeated_updates_only_bump_frequencies(specs in arb_specs()) {
        let dag = build_dag(&specs);
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        let n = eg.n_vertices();
        let costs = eg.recreation_costs();
        for round in 2..4u64 {
            eg.update_with_workload(&dag).unwrap();
            prop_assert_eq!(eg.n_vertices(), n);
            prop_assert_eq!(eg.recreation_costs(), costs.clone());
            for node in dag.nodes() {
                prop_assert_eq!(eg.vertex(node.artifact).unwrap().frequency, round);
            }
        }
    }

    #[test]
    fn topo_order_respects_parents(specs in arb_specs()) {
        let dag = build_dag(&specs);
        let mut eg = ExperimentGraph::new(false);
        eg.update_with_workload(&dag).unwrap();
        let position: std::collections::HashMap<ArtifactId, usize> =
            eg.topo_order().iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for v in eg.vertices() {
            for p in &v.parents {
                prop_assert!(position[p] < position[&v.id]);
            }
        }
    }

    #[test]
    fn exact_cost_never_exceeds_linear_approximation(specs in arb_specs()) {
        let dag = build_dag(&specs);
        let mut eg = ExperimentGraph::new(false);
        eg.update_with_workload(&dag).unwrap();
        let approx = eg.recreation_costs();
        for id in eg.topo_order() {
            let exact = eg.exact_recreation_cost(*id).unwrap();
            prop_assert!(exact <= approx[id] + 1e-9,
                "exact {exact} > approx {} for {id}", approx[id]);
        }
    }

    #[test]
    fn potentials_are_monotone_towards_models(specs in arb_specs()) {
        let dag = build_dag(&specs);
        let mut eg = ExperimentGraph::new(false);
        eg.update_with_workload(&dag).unwrap();
        let potentials = eg.potentials();
        for v in eg.vertices() {
            // A vertex's potential is at least every child's.
            for c in &v.children {
                prop_assert!(potentials[&v.id] >= potentials[c] - 1e-12);
            }
            // And at least its own quality.
            prop_assert!(potentials[&v.id] >= v.quality - 1e-12);
            prop_assert!((0.0..=1.0).contains(&potentials[&v.id]));
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_everything(specs in arb_specs()) {
        let dag = build_dag(&specs);
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        let text = snapshot::to_snapshot(&eg).unwrap();
        let restored = snapshot::from_snapshot(&text, true).unwrap();
        prop_assert_eq!(restored.n_vertices(), eg.n_vertices());
        prop_assert_eq!(restored.topo_order(), eg.topo_order());
        prop_assert_eq!(restored.recreation_costs(), eg.recreation_costs());
        prop_assert_eq!(restored.potentials(), eg.potentials());
        // Fixpoint.
        prop_assert_eq!(snapshot::to_snapshot(&restored).unwrap(), text);
    }

    #[test]
    fn dedup_store_accounting_is_exact(
        rows in 1usize..200,
        n_frames in 1usize..8,
    ) {
        // Chain of frames each adding one derived column to a shared base.
        let base = DataFrame::new(vec![Column::source(
            "p",
            "c0",
            ColumnData::Float((0..rows).map(|i| i as f64).collect()),
        )])
        .unwrap();
        let mut frames = vec![base];
        for d in 1..n_frames {
            let prev = frames.last().unwrap();
            let next = co_dataframe::ops::map_column(
                prev,
                "c0",
                &co_dataframe::ops::MapFn::AddConst(d as f64),
                &format!("c{d}"),
            )
            .unwrap();
            frames.push(next);
        }
        let mut sm = StorageManager::new(true);
        let mut expected_unique = 0u64;
        let mut expected_logical = 0u64;
        for (i, f) in frames.iter().enumerate() {
            let marginal = sm.marginal_bytes(&Value::dataset(f.clone()));
            let added = sm.store(ArtifactId(i as u64), &Value::dataset(f.clone()));
            prop_assert_eq!(marginal, added);
            expected_unique += added;
            expected_logical += f.nbytes() as u64;
            prop_assert_eq!(sm.unique_bytes(), expected_unique);
            prop_assert_eq!(sm.logical_bytes(), expected_logical);
        }
        // Unique = one column per frame (all share the base).
        prop_assert_eq!(sm.n_columns(), n_frames);
        // Evicting everything returns to zero.
        for i in 0..frames.len() {
            sm.evict(ArtifactId(i as u64));
        }
        prop_assert_eq!(sm.unique_bytes(), 0);
        prop_assert_eq!(sm.logical_bytes(), 0);
        prop_assert_eq!(sm.n_columns(), 0);
    }

    #[test]
    fn store_get_round_trips_random_frames(
        ints in proptest::collection::vec(-100i64..100, 1..50),
    ) {
        let df = DataFrame::new(vec![
            Column::source("p", "a", ColumnData::Int(ints.clone())),
            Column::source("p", "b", ColumnData::Float(ints.iter().map(|&v| v as f64 / 3.0).collect())),
        ])
        .unwrap();
        for dedup in [true, false] {
            let mut sm = StorageManager::new(dedup);
            sm.store(ArtifactId(1), &Value::dataset(df.clone()));
            let back = sm.get(ArtifactId(1)).unwrap();
            let bdf = back.as_dataset().unwrap();
            prop_assert_eq!(bdf.column("a").unwrap().ints().unwrap(), ints.as_slice());
            prop_assert_eq!(bdf.column_ids(), df.column_ids());
        }
    }
}
