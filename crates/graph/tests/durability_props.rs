//! Property tests for the durability codecs: journal records and
//! `EGSNAP 2` snapshots must round-trip hostile text exactly, and any
//! single-byte corruption of the on-disk bytes must be *detected* — as
//! a hard error, or (for the journal, whose tail may legitimately be
//! torn by a crash) by confining the damage to a truncated tail so the
//! surviving prefix is exactly what was committed.

use co_dataframe::Scalar;
use co_graph::journal::{self, EgDelta, FsyncPolicy, Journal, VertexTouch};
use co_graph::{
    snapshot, ArtifactId, EgVertex, ExperimentGraph, NodeKind, Operation, QuarantineEntry, Value,
    WorkloadDag,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

struct Tag(String);
impl Operation for Tag {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        Ok(Value::Aggregate(Scalar::Float(0.0)))
    }
}

/// Strings over an alphabet rich in exactly the characters the codecs
/// must escape — tabs (field separator), newlines (record separator),
/// backslashes (escape char) — plus the `-` None sentinel.
fn hostile(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec!['\t', '\n', '\\', '-', 'a', 'B', ' ', '0']),
        len,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// `Option<String>` built from a coin flip (the vendored proptest has
/// no `option::of`).
fn maybe_name() -> impl Strategy<Value = Option<String>> {
    (prop_bool::ANY, hostile(0..6)).prop_map(|(some, s)| some.then(|| format!("s{s}")))
}

fn arb_vertex() -> impl Strategy<Value = EgVertex> {
    (
        (
            0u64..u64::MAX,
            proptest::sample::select(vec![
                NodeKind::Dataset,
                NodeKind::Aggregate,
                NodeKind::Model,
            ]),
            0u64..1_000_000,
            0.0f64..1e6,
            0u64..u64::MAX,
        ),
        (
            0.0f64..1.0,
            hostile(0..10),
            maybe_name(),
            (prop_bool::ANY, 0u64..u64::MAX).prop_map(|(some, h)| some.then_some(h)),
            proptest::collection::vec(0u64..u64::MAX, 0..3),
        ),
    )
        .prop_map(
            |(
                (id, kind, frequency, compute_time, size),
                (quality, description, source_name, op_hash, parents),
            )| EgVertex {
                id: ArtifactId(id),
                kind,
                frequency,
                compute_time,
                size,
                quality,
                description,
                source_name,
                op_hash,
                parents: parents.into_iter().map(ArtifactId).collect(),
                // The codec serialises parents only; children are
                // rebuilt from them when a delta is applied.
                children: Vec::new(),
            },
        )
}

fn arb_quarantine_entry() -> impl Strategy<Value = QuarantineEntry> {
    (0u64..u64::MAX, hostile(0..8), 1usize..9).prop_map(|(op_hash, name, failures)| {
        QuarantineEntry {
            op_hash,
            name,
            failures,
        }
    })
}

fn arb_delta() -> impl Strategy<Value = EgDelta> {
    (
        (
            (prop_bool::ANY, 0u64..u64::MAX),
            proptest::collection::vec(arb_vertex(), 0..3),
        ),
        proptest::collection::vec(
            (
                0u64..u64::MAX,
                0u64..1_000_000,
                0.0f64..1e6,
                0u64..u64::MAX,
                0.0f64..1.0,
            ),
            0..3,
        ),
        proptest::collection::vec(0u64..u64::MAX, 0..3),
        proptest::collection::vec(0u64..u64::MAX, 0..3),
        proptest::collection::vec(arb_quarantine_entry(), 0..2),
        proptest::collection::vec(0u64..u64::MAX, 0..2),
    )
        .prop_map(
            |(((has_seq, seq), new_vertices), touched, added, removed, qset, qcleared)| EgDelta {
                // The sharded layout's S line rides along in every codec
                // property (None exercises the legacy encoding).
                seq: has_seq.then_some(seq),
                new_vertices,
                touched: touched
                    .into_iter()
                    .map(|(id, frequency, compute_time, size, quality)| VertexTouch {
                        id: ArtifactId(id),
                        frequency,
                        compute_time,
                        size,
                        quality,
                    })
                    .collect(),
                mat_added: added.into_iter().map(ArtifactId).collect(),
                mat_removed: removed.into_iter().map(ArtifactId).collect(),
                quarantine_set: qset,
                quarantine_cleared: qcleared,
            },
        )
}

/// A per-test scratch file under `target/tmp`. Proptest cases run
/// sequentially, so one path per test is race-free.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("durability_props");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A small graph whose source names carry hostile text, with a chosen
/// subset of vertices flagged materialized.
fn hostile_graph(names: &[String], mat_mask: &[bool]) -> ExperimentGraph {
    let mut dag = WorkloadDag::new();
    let sources: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, n)| dag.add_source(&format!("s{i}_{n}"), Value::Aggregate(Scalar::Float(0.0))))
        .collect();
    let merged = dag.add_op(Arc::new(Tag("merge".into())), &sources).unwrap();
    let tail = dag.add_op(Arc::new(Tag("tail".into())), &[merged]).unwrap();
    dag.mark_terminal(tail).unwrap();
    let mut eg = ExperimentGraph::new(true);
    eg.update_with_workload(&dag).unwrap();
    let ids = eg.topo_order().to_vec();
    for (id, mat) in ids.iter().zip(mat_mask.iter().cycle()) {
        if *mat {
            eg.mark_restored_materialized(*id);
        }
    }
    eg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Journal payload codec: encode → decode is the identity, even for
    /// deltas full of separator characters.
    fn journal_record_round_trips(delta in arb_delta()) {
        let payload = delta.encode();
        let back = EgDelta::decode(&payload, "prop", 1).unwrap();
        prop_assert_eq!(back, delta);
    }

    /// Whole-file round trip: append N deltas, replay the file, get the
    /// same N deltas with no torn tail.
    fn journal_file_round_trips(deltas in proptest::collection::vec(arb_delta(), 1..4)) {
        let path = scratch("round_trip.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, FsyncPolicy::Never).unwrap();
        for d in &deltas {
            j.append(d, None).unwrap();
        }
        drop(j);
        let out = journal::replay(&path).unwrap();
        prop_assert!(out.torn_at.is_none());
        prop_assert_eq!(out.deltas, deltas);
    }

    /// Flip any single byte of a journal file: replay must either error
    /// out (bad magic, unparseable record) or stop at a torn tail whose
    /// surviving prefix equals the original records exactly. A flip must
    /// never fabricate or alter a replayed record.
    fn journal_corruption_is_detected_or_torn(
        deltas in proptest::collection::vec(arb_delta(), 1..4),
        idx in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let path = scratch("corrupt.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, FsyncPolicy::Never).unwrap();
        for d in &deltas {
            j.append(d, None).unwrap();
        }
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = idx % bytes.len();
        bytes[at] ^= mask;
        std::fs::write(&path, &bytes).unwrap();

        match journal::replay(&path) {
            Err(_) => {} // detected outright
            Ok(out) => {
                prop_assert!(
                    out.torn_at.is_some(),
                    "flip of byte {} (mask {:#04x}) went unnoticed",
                    at,
                    mask
                );
                prop_assert!(out.deltas.len() <= deltas.len());
                for (got, want) in out.deltas.iter().zip(deltas.iter()) {
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// `EGSNAP 2` round trip: vertices, materialization flags, and the
    /// quarantine set all survive, and re-serialising the restored state
    /// is bytewise identical (stable fixed point).
    fn snapshot_v2_round_trips(
        names in proptest::collection::vec(hostile(0..8), 1..4),
        mat_mask in proptest::collection::vec(prop_bool::ANY, 1..4),
        quarantine in proptest::collection::vec(arb_quarantine_entry(), 0..3),
    ) {
        let eg = hostile_graph(&names, &mat_mask);
        let text = snapshot::to_snapshot_with(&eg, &quarantine).unwrap();
        let restored = snapshot::from_snapshot_full(&text, true, "prop").unwrap();
        prop_assert_eq!(restored.graph.n_vertices(), eg.n_vertices());
        prop_assert_eq!(restored.graph.topo_order(), eg.topo_order());
        for id in eg.topo_order() {
            prop_assert_eq!(
                restored.graph.was_materialized(*id),
                eg.was_materialized(*id),
                "mat flag of {:x}",
                id.0
            );
        }
        prop_assert_eq!(&restored.quarantine, &quarantine);
        prop_assert_eq!(
            snapshot::to_snapshot_with(&restored.graph, &restored.quarantine).unwrap(),
            text
        );
    }

    /// Flip any single byte of an `EGSNAP 2` snapshot: loading must
    /// fail. Unlike the journal there is no legitimate torn state — the
    /// file is renamed into place atomically — so every corruption is a
    /// hard error (invalid UTF-8 counts: the file no longer reads as a
    /// snapshot at all).
    fn snapshot_corruption_is_always_detected(
        names in proptest::collection::vec(hostile(0..8), 1..4),
        mat_mask in proptest::collection::vec(prop_bool::ANY, 1..4),
        quarantine in proptest::collection::vec(arb_quarantine_entry(), 0..2),
        idx in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let eg = hostile_graph(&names, &mat_mask);
        let good = snapshot::to_snapshot_with(&eg, &quarantine).unwrap();
        let mut bytes = good.clone().into_bytes();
        let at = idx % bytes.len();
        bytes[at] ^= mask;
        match String::from_utf8(bytes) {
            Err(_) => {} // detected: not even UTF-8 any more
            Ok(bad) => prop_assert!(
                snapshot::from_snapshot_full(&bad, true, "prop").is_err(),
                "flip of byte {} (mask {:#04x}) loaded successfully",
                at,
                mask
            ),
        }
    }
}
