//! Reuse planning: given a pruned workload DAG and the Experiment Graph,
//! decide which materialized artifacts to load and which to recompute
//! (paper §6).
//!
//! Planners:
//! * [`LinearReuse`] — the paper's linear-time forward/backward algorithm
//!   (Algorithm 2).
//! * [`HelixReuse`] — the Helix baseline: reduce to project selection and
//!   solve exactly with Edmonds–Karp max-flow (polynomial time).
//! * [`AllMaterializedReuse`] — load every materialized artifact (ALL_M).
//! * [`NoReuse`] — recompute everything (ALL_C).

mod baselines;
mod helix;
mod linear;
pub mod maxflow;

pub use baselines::{AllMaterializedReuse, NoReuse};
pub use helix::HelixReuse;
pub use linear::LinearReuse;

use crate::cost::CostModel;
use co_graph::{GraphQuery, NodeId, WorkloadDag};

/// The optimizer's output: which workload nodes to load from the
/// Experiment Graph. Everything else needed for the terminals is
/// computed; nodes hidden behind loads are skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct ReusePlan {
    /// `load[i]` — load node `i`'s artifact instead of computing it.
    pub load: Vec<bool>,
    /// The planner's estimate of the total execution cost (seconds).
    pub estimated_cost: f64,
}

impl ReusePlan {
    /// A plan that loads nothing.
    #[must_use]
    pub fn compute_everything(dag: &WorkloadDag) -> Self {
        ReusePlan {
            load: vec![false; dag.n_nodes()],
            estimated_cost: f64::INFINITY,
        }
    }

    /// Number of artifacts the plan loads.
    #[must_use]
    pub fn n_loads(&self) -> usize {
        self.load.iter().filter(|&&l| l).count()
    }
}

/// A reuse-planning strategy.
pub trait ReusePlanner: Send + Sync {
    /// Short name used in reports ("LN", "HL", ...).
    fn name(&self) -> &'static str;

    /// Produce a plan for the (already locally pruned) workload DAG.
    /// Planners read the graph through [`GraphQuery`], so a plan can be
    /// drawn against a plain `ExperimentGraph` or a sharded view
    /// (`co_graph::EgView`) alike.
    fn plan(&self, dag: &WorkloadDag, eg: &dyn GraphQuery, cost: &CostModel) -> ReusePlan;
}

/// Per-node planning inputs shared by all planners: `Ci` (compute cost
/// given parents), `Cl` (load cost), and whether the client already holds
/// the value (paper §6.1 preliminaries).
pub(crate) struct NodeCosts {
    pub ci: Vec<f64>,
    pub cl: Vec<f64>,
    pub computed: Vec<bool>,
}

pub(crate) fn node_costs(dag: &WorkloadDag, eg: &dyn GraphQuery, cost: &CostModel) -> NodeCosts {
    let n = dag.n_nodes();
    let mut ci = vec![f64::INFINITY; n];
    let mut cl = vec![f64::INFINITY; n];
    let mut computed = vec![false; n];
    for (i, node) in dag.nodes().iter().enumerate() {
        computed[i] = node.computed.is_some();
        if let Some(v) = eg.lookup(node.artifact) {
            // Known artifact: the graph has measured its compute time.
            ci[i] = v.compute_time;
            if eg.has_content(node.artifact) {
                cl[i] = cost.load_cost(v.size);
            }
        }
        // Artifacts unknown to EG keep Ci = Cl = infinity (paper: "EG has
        // no prior information about them"); the executor still computes
        // them — infinity only means the planner cannot trade them off.
    }
    NodeCosts { ci, cl, computed }
}

/// Render a plan as a human-readable decision table (an `EXPLAIN` for
/// workload DAGs): one row per node on the execution path, with the
/// operation, its decision, and the costs the planner weighed.
#[must_use]
pub fn explain_plan(
    dag: &WorkloadDag,
    eg: &dyn GraphQuery,
    cost: &CostModel,
    plan: &ReusePlan,
) -> String {
    use std::fmt::Write as _;
    let costs = node_costs(dag, eg, cost);
    let mut needed = vec![false; dag.n_nodes()];
    let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
    while let Some(i) = stack.pop() {
        if needed[i] {
            continue;
        }
        needed[i] = true;
        if costs.computed[i] || plan.load[i] {
            continue;
        }
        stack.extend(dag.parents(NodeId(i)).iter().map(|n| n.0));
    }
    let fmt_cost = |c: f64| {
        if c.is_finite() {
            format!("{:>9.4}s", c)
        } else {
            "  unknown".to_owned()
        }
    };
    let mut out = String::from(
        "node  decision  operation                 Ci         Cl\n\
         ----  --------  ------------------  ---------  ---------\n",
    );
    for (i, node) in dag.nodes().iter().enumerate() {
        if !needed[i] {
            continue;
        }
        let op_name = dag
            .producer(NodeId(i))
            .map(|e| e.op.name().to_owned())
            .or_else(|| node.name.clone())
            .unwrap_or_default();
        let decision = if costs.computed[i] {
            "have"
        } else if plan.load[i] {
            "LOAD"
        } else {
            "compute"
        };
        let _ = writeln!(
            out,
            "{i:>4}  {decision:<8}  {op_name:<18}  {}  {}",
            fmt_cost(costs.ci[i]),
            fmt_cost(costs.cl[i]),
        );
    }
    let _ = writeln!(
        out,
        "loads: {}   estimated plan cost: {}",
        plan.n_loads(),
        if plan.estimated_cost.is_finite() {
            format!("{:.4}s", plan.estimated_cost)
        } else {
            "unknown (new operations present)".to_owned()
        }
    );
    out
}

/// The true cost of executing `plan` on `dag`: measured compute times of
/// every node that must be computed (each counted once, resolving shared
/// ancestors exactly) plus load costs of the loaded set. Nodes absent from
/// the Experiment Graph contribute their annotated compute time if the
/// client measured one, else 0 (unknown).
///
/// Used to compare planners (the linear algorithm against the exact
/// max-flow solution) on equal footing.
#[must_use]
pub fn plan_execution_cost(
    dag: &WorkloadDag,
    eg: &dyn GraphQuery,
    cost: &CostModel,
    plan: &ReusePlan,
) -> f64 {
    let costs = node_costs(dag, eg, cost);
    let mut needed_compute = vec![false; dag.n_nodes()];
    let mut total = 0.0;
    let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
    let mut visited = vec![false; dag.n_nodes()];
    while let Some(i) = stack.pop() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        if costs.computed[i] {
            continue;
        }
        if plan.load[i] {
            total += costs.cl[i];
            continue;
        }
        needed_compute[i] = true;
        let node_ci = if costs.ci[i].is_finite() {
            costs.ci[i]
        } else {
            dag.nodes()[i].compute_time.unwrap_or(0.0)
        };
        total += node_ci;
        stack.extend(dag.parents(NodeId(i)).iter().map(|n| n.0));
    }
    total
}
