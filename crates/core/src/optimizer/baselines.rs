//! Trivial reuse baselines from the paper's §7.4: `ALL_M` reuses every
//! materialized artifact; `ALL_C` recomputes everything.

use super::{node_costs, ReusePlan, ReusePlanner};
use crate::cost::CostModel;
use co_graph::{GraphQuery, NodeId, WorkloadDag};

/// Load every materialized artifact on the execution path (`ALL_M`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllMaterializedReuse;

impl ReusePlanner for AllMaterializedReuse {
    fn name(&self) -> &'static str {
        "ALL_M"
    }

    fn plan(&self, dag: &WorkloadDag, eg: &dyn GraphQuery, cost: &CostModel) -> ReusePlan {
        let costs = node_costs(dag, eg, cost);
        let n = dag.n_nodes();
        // Greedy: walking back from the terminals, the first materialized
        // vertex on every path is loaded unconditionally.
        let mut load = vec![false; n];
        let mut visited = vec![false; n];
        let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
        let mut estimated = 0.0;
        while let Some(i) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            if costs.computed[i] {
                continue;
            }
            if costs.cl[i].is_finite() {
                load[i] = true;
                estimated += costs.cl[i];
                continue;
            }
            if costs.ci[i].is_finite() {
                estimated += costs.ci[i];
            }
            stack.extend(dag.parents(NodeId(i)).iter().map(|p| p.0));
        }
        ReusePlan {
            load,
            estimated_cost: estimated,
        }
    }
}

/// Recompute everything (`ALL_C` — also the plain client baseline `KG`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReuse;

impl ReusePlanner for NoReuse {
    fn name(&self) -> &'static str {
        "ALL_C"
    }

    fn plan(&self, dag: &WorkloadDag, _eg: &dyn GraphQuery, _cost: &CostModel) -> ReusePlan {
        ReusePlan::compute_everything(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::Scalar;
    use co_graph::{ExperimentGraph, NodeKind, Operation, Value};
    use std::sync::Arc;

    struct Tag(&'static str);
    impl Operation for Tag {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Dataset
        }
        fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(0.0)))
        }
    }

    fn agg() -> Value {
        Value::Aggregate(Scalar::Float(0.0))
    }

    #[test]
    fn all_m_loads_first_materialized_and_all_c_loads_nothing() {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let a = dag.add_op(Arc::new(Tag("a")), &[s]).unwrap();
        let b = dag.add_op(Arc::new(Tag("b")), &[a]).unwrap();
        dag.mark_terminal(b).unwrap();
        let mut prior = dag.clone();
        prior.annotate(a, 1.0, 1_000_000).unwrap();
        prior.annotate(b, 1.0, 1_000_000).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&prior).unwrap();
        for n in [a, b] {
            eg.storage_mut().store(dag.nodes()[n.0].artifact, &agg());
        }
        let cost = CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1.0,
        };
        // ALL_M loads b (hides a) even though loading costs 1e6 seconds.
        let plan = AllMaterializedReuse.plan(&dag, &eg, &cost);
        assert_eq!(plan.load, vec![false, false, true]);
        assert_eq!(plan.estimated_cost, 1e6);
        let plan = NoReuse.plan(&dag, &eg, &cost);
        assert_eq!(plan.n_loads(), 0);
    }
}
