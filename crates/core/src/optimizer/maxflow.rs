//! Edmonds–Karp max-flow / min-cut, used by the Helix reuse baseline
//! (the paper cites Edmonds & Karp \[7\] and notes the `O(|V|·|E|²)` bound).

/// Capacity standing in for an *unknown cost* (an unmaterialized
/// artifact's load cost, an unseen operation's compute cost). Large
/// enough to dominate any real plan cost.
pub const INF: f64 = 1e15;

/// Capacity for *structural* edges that must never be cut (terminal
/// demands, compute→parent requirements). Strictly larger than any sum of
/// [`INF`] costs a workload can accumulate: with a single tier, pushing
/// one `INF` unit of flow through a structural edge would saturate it and
/// falsely disconnect the rest of the network. (f64 precision at 1e24 is
/// ~1e8, far below `INF`, so subtracting cost-tier flow stays exact
/// enough.)
pub const STRUCTURAL_INF: f64 = 1e24;

/// A directed flow network with `f64` capacities.
pub struct FlowNetwork {
    /// Per-node adjacency: indices into `edges`.
    adj: Vec<Vec<usize>>,
    /// Edge list; `edges[i ^ 1]` is the reverse edge of `edges[i]`.
    edges: Vec<Edge>,
}

struct Edge {
    to: usize,
    cap: f64,
}

impl FlowNetwork {
    /// A network with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge with the given capacity (plus its implicit
    /// zero-capacity reverse edge).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) {
        debug_assert!(cap >= 0.0);
        let id = self.edges.len();
        self.edges.push(Edge { to, cap });
        self.edges.push(Edge { to: from, cap: 0.0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
    }

    /// Run Edmonds–Karp from `s` to `t`; returns the max-flow value and
    /// mutates residual capacities in place.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut total = 0.0;
        loop {
            // BFS for the shortest augmenting path.
            let mut parent_edge: Vec<Option<usize>> = vec![None; self.adj.len()];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            let mut reached = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if e.cap > 1e-12 && parent_edge[e.to].is_none() && e.to != s {
                        parent_edge[e.to] = Some(eid);
                        if e.to == t {
                            reached = true;
                            break 'bfs;
                        }
                        queue.push_back(e.to);
                    }
                }
            }
            if !reached {
                return total;
            }
            // Bottleneck along the path.
            let mut bottleneck = f64::INFINITY;
            let mut v = t;
            while v != s {
                let eid = parent_edge[v].expect("path exists"); // co-lint:allow(no-panic) the BFS that just terminated found an augmenting path through v
                bottleneck = bottleneck.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            // Augment.
            let mut v = t;
            while v != s {
                let eid = parent_edge[v].expect("path exists"); // co-lint:allow(no-panic) the BFS that just terminated found an augmenting path through v
                self.edges[eid].cap -= bottleneck;
                self.edges[eid ^ 1].cap += bottleneck;
                v = self.edges[eid ^ 1].to;
            }
            total += bottleneck;
        }
    }

    /// After [`FlowNetwork::max_flow`], the set of nodes reachable from
    /// `s` in the residual graph — the source side of a minimum cut.
    #[must_use]
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.adj.len()];
        let mut stack = vec![s];
        side[s] = true;
        while let Some(u) = stack.pop() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid];
                if e.cap > 1e-12 && !side[e.to] {
                    side[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_small_network() {
        // s=0, t=3: s->1 (3), s->2 (2), 1->2 (5), 1->3 (2), 2->3 (3).
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 2, 5.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(2, 3, 3.0);
        assert_eq!(net.max_flow(0, 3), 5.0);
    }

    #[test]
    fn min_cut_separates_s_from_t() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 3, 10.0);
        let flow = net.max_flow(0, 3);
        assert_eq!(flow, 1.0);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[1] && !side[2] && !side[3]); // cut on the 1.0 edge
    }

    #[test]
    fn disconnected_network_has_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4.0);
        assert_eq!(net.max_flow(0, 2), 0.0);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && side[1] && !side[2]);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.5);
        net.add_edge(0, 1, 2.5);
        assert_eq!(net.max_flow(0, 1), 4.0);
    }

    #[test]
    fn inf_edges_never_cut() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, INF);
        net.add_edge(1, 2, 7.0);
        assert_eq!(net.max_flow(0, 2), 7.0);
        let side = net.min_cut_source_side(0);
        assert!(side[1]); // the INF edge survives in the residual
    }
}
