//! The paper's linear-time reuse algorithm (§6.1, Algorithm 2 +
//! backward pass).
//!
//! **Forward pass** — visit nodes in topological order maintaining the
//! *recreation cost* of each node: 0 for client-computed nodes, otherwise
//! `min(Cl(v), Ci(v) + Σ recreation_cost(parents))`; nodes where the load
//! side wins join the candidate reuse set `R`.
//!
//! **Backward pass** — walk up from the terminals; the first `R`-vertex on
//! each path joins the final solution `Rp` and its ancestors are pruned
//! (paper Figure 3: `v1` is dropped because `v3` hides it).
//!
//! Complexity: both passes visit each node/edge once — `O(|V| + |E|)`.
//!
//! Note on optimality: summing parents' recreation costs double-counts
//! shared ancestors on diamond-shaped DAGs, so the linear algorithm can
//! overestimate the execution side and load more than the exact (max-flow)
//! optimum — on tree-shaped workloads the two agree, which is what the
//! paper reports for its workloads ("the polynomial-time reuse algorithm
//! of Helix generates the same plan as our linear-time reuse").

use super::{node_costs, ReusePlan, ReusePlanner};
use crate::cost::CostModel;
use co_graph::{GraphQuery, NodeId, WorkloadDag};

/// The linear-time planner (the paper's `LN`).
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearReuse;

impl ReusePlanner for LinearReuse {
    fn name(&self) -> &'static str {
        "LN"
    }

    fn plan(&self, dag: &WorkloadDag, eg: &dyn GraphQuery, cost: &CostModel) -> ReusePlan {
        let costs = node_costs(dag, eg, cost);
        let n = dag.n_nodes();

        // Forward pass (Algorithm 2).
        let mut recreation = vec![0.0f64; n];
        let mut candidate = vec![false; n]; // R
        for i in 0..n {
            if costs.computed[i] {
                recreation[i] = 0.0;
                continue;
            }
            let p_costs: f64 = dag.parents(NodeId(i)).iter().map(|p| recreation[p.0]).sum();
            let execution_cost = costs.ci[i] + p_costs;
            if costs.cl[i] < execution_cost {
                recreation[i] = costs.cl[i];
                candidate[i] = true;
            } else {
                recreation[i] = execution_cost;
            }
        }

        // Backward pass: keep only candidates actually on the execution
        // path; stop ascending at the first reuse vertex.
        let mut load = vec![false; n];
        let mut visited = vec![false; n];
        let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
        while let Some(i) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            if costs.computed[i] {
                continue;
            }
            if candidate[i] {
                load[i] = true;
                continue;
            }
            stack.extend(dag.parents(NodeId(i)).iter().map(|p| p.0));
        }

        let estimated_cost = dag.terminals().iter().map(|t| recreation[t.0]).sum();
        ReusePlan {
            load,
            estimated_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::plan_execution_cost;
    use co_dataframe::Scalar;
    use co_graph::{ExperimentGraph, NodeKind, Operation, Value};
    use std::sync::Arc;

    /// A no-op operation with a distinguishing label; costs are injected
    /// through the Experiment Graph annotations, not by running anything.
    struct Tag(&'static str);
    impl Operation for Tag {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Dataset
        }
        fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(0.0)))
        }
    }

    fn op(label: &'static str) -> Arc<Tag> {
        Arc::new(Tag(label))
    }

    /// Identity cost model: `Cl(v) = size(v)` bytes read at 1 B/s.
    fn unit_cost() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1.0,
        }
    }

    fn agg() -> Value {
        Value::Aggregate(Scalar::Float(0.0))
    }

    /// Reproduce the paper's Figure 3 workload exactly.
    ///
    /// Sources 1–3 are computed. `A ⟨10,∞⟩` (unmaterialized, from s1),
    /// `v1 ⟨10,5⟩` (materialized, from s1), `B ⟨10,∞⟩` (unmaterialized,
    /// from s3), `v2 ⟨1,17⟩` (materialized, parents A and v1),
    /// `C ⟨0,∞⟩` (computed, from s2), `v3 ⟨5,20⟩` (materialized, parents
    /// v2 and C), and a terminal not in EG with parents v3 and B.
    #[test]
    fn paper_figure3() {
        let mut dag = WorkloadDag::new();
        let s1 = dag.add_source("s1", agg());
        let s2 = dag.add_source("s2", agg());
        let s3 = dag.add_source("s3", agg());
        let a = dag.add_op(op("A"), &[s1]).unwrap();
        let v1 = dag.add_op(op("v1"), &[s1]).unwrap();
        let b = dag.add_op(op("B"), &[s3]).unwrap();
        let v2 = dag.add_op(op("v2"), &[a, v1]).unwrap();
        let c = dag.add_op(op("C"), &[s2]).unwrap();
        let v3 = dag.add_op(op("v3"), &[v2, c]).unwrap();
        let term = dag.add_op(op("terminal"), &[v3, b]).unwrap();
        dag.mark_terminal(term).unwrap();

        // Annotate ⟨Ci, size=Cl⟩ and build the EG from a prior execution.
        // C is computed in the current workload; terminal is not in EG.
        let mut prior = dag.clone();
        for (node, ci, size) in [
            (a, 10.0, 0),
            (v1, 10.0, 5),
            (b, 10.0, 0),
            (v2, 1.0, 17),
            (c, 0.0, 0),
            (v3, 5.0, 20),
        ] {
            prior.annotate(node, ci, size).unwrap();
        }
        let mut eg = ExperimentGraph::new(true);
        // Drop the terminal from the prior workload: EG must not know it.
        let mut prior_no_term = WorkloadDag::new();
        let ps1 = prior_no_term.add_source("s1", agg());
        let ps2 = prior_no_term.add_source("s2", agg());
        let ps3 = prior_no_term.add_source("s3", agg());
        let pa = prior_no_term.add_op(op("A"), &[ps1]).unwrap();
        let pv1 = prior_no_term.add_op(op("v1"), &[ps1]).unwrap();
        let pb = prior_no_term.add_op(op("B"), &[ps3]).unwrap();
        let pv2 = prior_no_term.add_op(op("v2"), &[pa, pv1]).unwrap();
        let pc = prior_no_term.add_op(op("C"), &[ps2]).unwrap();
        let pv3 = prior_no_term.add_op(op("v3"), &[pv2, pc]).unwrap();
        for (node, ci, size) in [
            (pa, 10.0, 0),
            (pv1, 10.0, 5),
            (pb, 10.0, 0),
            (pv2, 1.0, 17),
            (pc, 0.0, 0),
            (pv3, 5.0, 20),
        ] {
            prior_no_term.annotate(node, ci, size).unwrap();
        }
        eg.update_with_workload(&prior_no_term).unwrap();
        // Materialize v1, v2, v3 (the figure's materialized vertices).
        // Stored content is a minimal aggregate: the EG vertex *size*
        // attribute (annotated above) is what drives Cl, not the content.
        for node in [pv1, pv2, pv3] {
            let id = prior_no_term.nodes()[node.0].artifact;
            eg.storage_mut().store(id, &agg());
        }

        // C is already computed in the incoming workload.
        dag.set_computed(c, agg()).unwrap();
        // Undo the size annotation side effect of set_computed on C.
        dag.node_mut(c).unwrap().size = Some(0);

        let plan = LinearReuse.plan(&dag, &eg, &unit_cost());
        // Forward pass selects v1 and v3; backward pass keeps only v3.
        assert!(plan.load[v3.0], "v3 must be loaded");
        assert!(!plan.load[v1.0], "v1 is hidden behind v3");
        assert!(!plan.load[v2.0], "v2 execution (16) beats load (17)");
        assert_eq!(plan.n_loads(), 1);
        // Terminal recreation cost: v3 loaded (20) + B (10 + 0) + Ci(term).
        // Ci(term) is unknown (infinity), so the estimate is infinite;
        // the true executable cost is finite:
        let true_cost = plan_execution_cost(&dag, &eg, &unit_cost(), &plan);
        assert_eq!(true_cost, 20.0 + 10.0);
    }

    #[test]
    fn empty_eg_computes_everything() {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let x = dag.add_op(op("x"), &[s]).unwrap();
        dag.mark_terminal(x).unwrap();
        let eg = ExperimentGraph::new(true);
        let plan = LinearReuse.plan(&dag, &eg, &unit_cost());
        assert_eq!(plan.n_loads(), 0);
    }

    #[test]
    fn unmaterialized_vertices_are_never_loaded() {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let x = dag.add_op(op("x"), &[s]).unwrap();
        dag.mark_terminal(x).unwrap();
        let mut prior = dag.clone();
        prior.annotate(x, 100.0, 1).unwrap(); // expensive but unmaterialized
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&prior).unwrap();
        let plan = LinearReuse.plan(&dag, &eg, &unit_cost());
        assert_eq!(plan.n_loads(), 0);
    }

    #[test]
    fn cheap_loads_win_expensive_chains() {
        // s -> a (10s) -> b (10s, materialized, tiny): load b, skip a.
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let a = dag.add_op(op("a"), &[s]).unwrap();
        let b = dag.add_op(op("b"), &[a]).unwrap();
        dag.mark_terminal(b).unwrap();
        let mut prior = dag.clone();
        prior.annotate(a, 10.0, 1000).unwrap();
        prior.annotate(b, 10.0, 2).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&prior).unwrap();
        let b_id = dag.nodes()[b.0].artifact;
        eg.storage_mut().store(b_id, &agg());
        let plan = LinearReuse.plan(&dag, &eg, &unit_cost());
        assert!(plan.load[b.0]);
        assert!(!plan.load[a.0]);
        assert_eq!(plan.estimated_cost, 2.0);
    }

    #[test]
    fn computed_terminal_needs_nothing() {
        // An interactive session already holds the terminal: the plan is
        // empty and costs zero.
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let a = dag.add_op(op("a"), &[s]).unwrap();
        dag.mark_terminal(a).unwrap();
        dag.set_computed(a, agg()).unwrap();
        let mut prior = dag.clone();
        prior.annotate(a, 100.0, 5).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&prior).unwrap();
        eg.storage_mut().store(dag.nodes()[a.0].artifact, &agg());
        let plan = LinearReuse.plan(&dag, &eg, &unit_cost());
        assert_eq!(plan.n_loads(), 0);
        assert_eq!(plan.estimated_cost, 0.0);
    }

    #[test]
    fn computed_nodes_cost_nothing() {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let a = dag.add_op(op("a"), &[s]).unwrap();
        let b = dag.add_op(op("b"), &[a]).unwrap();
        dag.mark_terminal(b).unwrap();
        dag.set_computed(a, agg()).unwrap();
        let mut prior = dag.clone();
        prior.annotate(a, 50.0, 10).unwrap();
        prior.annotate(b, 1.0, 10).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&prior).unwrap();
        // Even though a is materialized, loading it (cost 10) loses to its
        // zero recreation cost as an already-computed node.
        let a_id = dag.nodes()[a.0].artifact;
        eg.storage_mut().store(a_id, &agg());
        let plan = LinearReuse.plan(&dag, &eg, &unit_cost());
        assert_eq!(plan.n_loads(), 0);
        assert_eq!(plan.estimated_cost, 1.0);
    }
}
