//! The Helix reuse baseline: reduce the pruned workload DAG to a
//! project-selection instance and solve it exactly with min-cut
//! (paper §7.1: "Helix reduces the workload DAG into an instance of the
//! project selection problem (PSP) and solves it via the Max-Flow
//! algorithm ... Edmonds-Karp ... O(|V|·|E|²)").
//!
//! ## Reduction (documented in `DESIGN.md` §2)
//!
//! Choose a computed set `C` and a loaded set `L ⊆ materialized`
//! minimizing `Σ_{v∈C} Ci(v) + Σ_{v∈L} Cl(v)` subject to: terminals are
//! available (`∈ C ∪ L`) and every computed vertex's parents are
//! available.
//!
//! Network: per workload vertex `v`, two flow nodes `x_v` and `m_v`.
//! * `x_v → T` with capacity `Ci(v)` (0 if already computed) — cutting it
//!   puts `v` on the source side: *computed*.
//! * `m_v → x_v` with capacity `Cl(v)` (infinite if unmaterialized) —
//!   cutting it *loads* `v`.
//! * `x_child → m_parent` with capacity ∞ for every DAG edge of a
//!   non-computed child — computing a vertex demands its parents.
//! * `S → m_t` with capacity ∞ for every terminal.
//!
//! The min cut value equals the optimal plan cost; the loaded set is the
//! set of `m_v → x_v` edges crossing the cut.

use super::maxflow::{FlowNetwork, INF, STRUCTURAL_INF};
use super::{node_costs, ReusePlan, ReusePlanner};
use crate::cost::CostModel;
use co_graph::{GraphQuery, NodeId, WorkloadDag};

/// The Helix max-flow planner (the paper's `HL`).
#[derive(Debug, Clone, Copy, Default)]
pub struct HelixReuse;

impl ReusePlanner for HelixReuse {
    fn name(&self) -> &'static str {
        "HL"
    }

    fn plan(&self, dag: &WorkloadDag, eg: &dyn GraphQuery, cost: &CostModel) -> ReusePlan {
        let costs = node_costs(dag, eg, cost);
        let n = dag.n_nodes();
        // Node layout: x_v = 2v, m_v = 2v + 1, S = 2n, T = 2n + 1.
        let (s, t) = (2 * n, 2 * n + 1);
        let mut net = FlowNetwork::new(2 * n + 2);

        for i in 0..n {
            // Unknown compute cost: a real cost that will be paid if the
            // vertex must be computed — the *cost* infinity tier.
            let ci = if costs.computed[i] { 0.0 } else { costs.ci[i] };
            net.add_edge(2 * i, t, if ci.is_finite() { ci } else { INF });
            // Unmaterialized artifacts can never be loaded: cutting the
            // load edge must be strictly worse than any pile of unknown
            // compute costs — the *structural* infinity tier.
            let cl = costs.cl[i];
            net.add_edge(
                2 * i + 1,
                2 * i,
                if cl.is_finite() { cl } else { STRUCTURAL_INF },
            );
            if !costs.computed[i] {
                for p in dag.parents(NodeId(i)) {
                    net.add_edge(2 * i, 2 * p.0 + 1, STRUCTURAL_INF);
                }
            }
        }
        for term in dag.terminals() {
            net.add_edge(s, 2 * term.0 + 1, STRUCTURAL_INF);
        }

        let cut_value = net.max_flow(s, t);
        let side = net.min_cut_source_side(s);

        // Loaded vertices: m_v on the source side, x_v on the sink side,
        // and actually loadable.
        let mut load = vec![false; n];
        for i in 0..n {
            if side[2 * i + 1] && !side[2 * i] && costs.cl[i].is_finite() && !costs.computed[i] {
                load[i] = true;
            }
        }
        ReusePlan {
            load,
            estimated_cost: cut_value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{plan_execution_cost, LinearReuse};
    use co_dataframe::Scalar;
    use co_graph::{ExperimentGraph, NodeKind, Operation, Value};
    use std::sync::Arc;

    struct Tag(&'static str);
    impl Operation for Tag {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Dataset
        }
        fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(0.0)))
        }
    }

    fn op(label: &'static str) -> Arc<Tag> {
        Arc::new(Tag(label))
    }

    fn agg() -> Value {
        Value::Aggregate(Scalar::Float(0.0))
    }

    fn unit_cost() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1.0,
        }
    }

    /// Build a chain s -> a -> b with given ⟨Ci, Cl-as-size⟩ and
    /// materialization flags, returning (dag, eg).
    fn chain(a_cost: (f64, u64, bool), b_cost: (f64, u64, bool)) -> (WorkloadDag, ExperimentGraph) {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let a = dag.add_op(op("a"), &[s]).unwrap();
        let b = dag.add_op(op("b"), &[a]).unwrap();
        dag.mark_terminal(b).unwrap();
        let mut prior = dag.clone();
        prior.annotate(a, a_cost.0, a_cost.1).unwrap();
        prior.annotate(b, b_cost.0, b_cost.1).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&prior).unwrap();
        if a_cost.2 {
            eg.storage_mut().store(dag.nodes()[a.0].artifact, &agg());
        }
        if b_cost.2 {
            eg.storage_mut().store(dag.nodes()[b.0].artifact, &agg());
        }
        (dag, eg)
    }

    #[test]
    fn loads_the_cheap_terminal() {
        // a: Ci=10 unmaterialized; b: Ci=10, Cl=3, materialized.
        let (dag, eg) = chain((10.0, 0, false), (10.0, 3, true));
        let plan = HelixReuse.plan(&dag, &eg, &unit_cost());
        assert_eq!(plan.load, vec![false, false, true]);
        assert_eq!(plan.estimated_cost, 3.0);
    }

    #[test]
    fn recomputes_when_loads_are_expensive() {
        let (dag, eg) = chain((1.0, 100, true), (1.0, 100, true));
        let plan = HelixReuse.plan(&dag, &eg, &unit_cost());
        assert_eq!(plan.n_loads(), 0);
        assert_eq!(plan.estimated_cost, 2.0);
    }

    #[test]
    fn load_hides_upstream_load() {
        // Both a and b are cheap to load; loading b alone suffices.
        let (dag, eg) = chain((10.0, 2, true), (10.0, 3, true));
        let plan = HelixReuse.plan(&dag, &eg, &unit_cost());
        assert_eq!(plan.load, vec![false, false, true]);
        assert_eq!(plan.estimated_cost, 3.0);
    }

    #[test]
    fn mixed_load_and_compute() {
        // a cheap to load (2), b expensive to load (100) but cheap to
        // compute (1): load a, compute b.
        let (dag, eg) = chain((10.0, 2, true), (1.0, 100, true));
        let plan = HelixReuse.plan(&dag, &eg, &unit_cost());
        assert_eq!(plan.load, vec![false, true, false]);
        assert_eq!(plan.estimated_cost, 3.0);
    }

    #[test]
    fn agrees_with_linear_on_figure3_style_chains() {
        for a in [(10.0, 2, true), (5.0, 100, true), (3.0, 0, false)] {
            for b in [(10.0, 3, true), (1.0, 50, true), (7.0, 0, false)] {
                let (dag, eg) = chain(a, b);
                let hl = HelixReuse.plan(&dag, &eg, &unit_cost());
                let ln = LinearReuse.plan(&dag, &eg, &unit_cost());
                let cost = unit_cost();
                assert_eq!(
                    plan_execution_cost(&dag, &eg, &cost, &hl),
                    plan_execution_cost(&dag, &eg, &cost, &ln),
                    "a={a:?} b={b:?}"
                );
            }
        }
    }

    #[test]
    fn unknown_terminal_still_loads_upstream() {
        // s -> a (materialized, Ci=10, Cl=2) -> t (NOT in EG: a brand-new
        // training op). The planner must still load `a` under `t`.
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let a = dag.add_op(op("a"), &[s]).unwrap();
        let t = dag.add_op(op("t_new"), &[a]).unwrap();
        dag.mark_terminal(t).unwrap();
        // The prior workload that EG knows stops at `a`.
        let mut prior = WorkloadDag::new();
        let ps = prior.add_source("s", agg());
        let pa = prior.add_op(op("a"), &[ps]).unwrap();
        prior.mark_terminal(pa).unwrap();
        prior.annotate(pa, 10.0, 2).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&prior).unwrap();
        eg.storage_mut().store(prior.nodes()[pa.0].artifact, &agg());

        let hl = HelixReuse.plan(&dag, &eg, &unit_cost());
        let ln = LinearReuse.plan(&dag, &eg, &unit_cost());
        assert!(ln.load[a.0], "LN loads a");
        assert!(hl.load[a.0], "HL must load a despite the unknown terminal");
    }

    #[test]
    fn diamond_exactness() {
        // Diamond: s -> p (expensive, 10s) -> {a, b} (1s each) -> join m
        // (1s, materialized at Cl = 20). True recompute cost of m is
        // 10 + 1 + 1 + 1 = 13 because p is shared; the linear pass prices
        // it at 10+1 + 10+1 + 1 = 23 (double-counting p) and loads m at
        // 20. The exact max-flow planner computes everything.
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg());
        let p = dag.add_op(op("p"), &[s]).unwrap();
        let a = dag.add_op(op("a"), &[p]).unwrap();
        let b = dag.add_op(op("b"), &[p]).unwrap();
        let m = dag.add_op(op("m"), &[a, b]).unwrap();
        dag.mark_terminal(m).unwrap();
        let mut prior = dag.clone();
        prior.annotate(p, 10.0, 1000).unwrap();
        prior.annotate(a, 1.0, 1000).unwrap();
        prior.annotate(b, 1.0, 1000).unwrap();
        prior.annotate(m, 1.0, 20).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&prior).unwrap();
        eg.storage_mut().store(dag.nodes()[m.0].artifact, &agg());
        let cost = unit_cost();
        let hl = HelixReuse.plan(&dag, &eg, &cost);
        let ln = LinearReuse.plan(&dag, &eg, &cost);
        let hl_cost = plan_execution_cost(&dag, &eg, &cost, &hl);
        let ln_cost = plan_execution_cost(&dag, &eg, &cost, &ln);
        assert_eq!(hl_cost, 13.0, "exact planner computes through the diamond");
        assert!(!hl.load[m.0]);
        // Documents the linear algorithm's known diamond approximation.
        assert_eq!(ln_cost, 20.0, "linear planner loads m at 20");
        assert!(ln.load[m.0]);
        assert!(hl_cost <= ln_cost);
    }
}
