//! Static workload validation: a linear-time pre-execution pass.
//!
//! Before a workload is planned or executed, [`validate`] propagates
//! inferred schemas ([`ValueMeta`]) from the already-computed vertices
//! through every operation edge via [`co_graph::Operation::infer`] — without
//! running
//! anything. A malformed DAG (missing column, join-key mismatch,
//! fit/predict divergence, wrong input arity, op-hash collision, …) is
//! rejected in milliseconds with node-path-addressed diagnostics instead
//! of failing forty minutes into execution.
//!
//! The pass is a single sweep over nodes in topological (= index) order
//! plus one ancestor walk for the required set, so it is `O(|V| + |E|)`.
//! Unknown metadata (custom operations, unanalyzable inputs) propagates
//! silently: downstream checks are *suppressed*, never spuriously failed,
//! so validation can only reject workloads that are provably broken.
//!
//! [`PrunedWorkload::new`](crate::pipeline::PrunedWorkload::new) runs the
//! validator right after the local pruner, so every workload entering the
//! server pipeline has already passed it.

use co_graph::meta::{MetaCode, MetaError, ValueMeta};
use co_graph::{GraphError, NodeId, WorkloadDag};
use std::collections::HashMap;

/// One validation finding, addressed to a workload node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Index of the node the finding is anchored to.
    pub node: usize,
    /// Diagnostic class.
    pub code: MetaCode,
    /// Human-readable producer path of the node (`source "x" -> select ->
    /// join`), so the user can locate the operation in their script.
    pub path: String,
    /// The underlying failure message.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] node {} ({}): {}",
            self.code.name(),
            self.node,
            self.path,
            self.message
        )
    }
}

/// Result of statically validating one workload DAG.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Rejections: findings on nodes the requested terminals depend on.
    pub errors: Vec<Diagnostic>,
    /// Non-fatal findings: dead subgraphs, and inference failures confined
    /// to them (the pruner already deactivated those edges).
    pub warnings: Vec<Diagnostic>,
    /// Inferred metadata per node, for callers that want the schemas.
    pub metas: Vec<ValueMeta>,
}

impl ValidationReport {
    /// Whether the workload passed (no errors; warnings are allowed).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }

    /// Convert to a pipeline result: errors become
    /// [`GraphError::InvalidWorkload`] with one rendered line each.
    pub fn into_result(self) -> Result<Vec<ValueMeta>, GraphError> {
        if self.errors.is_empty() {
            Ok(self.metas)
        } else {
            Err(GraphError::InvalidWorkload {
                diagnostics: self.errors.iter().map(ToString::to_string).collect(),
            })
        }
    }
}

/// Render the producer chain of `node` (following first inputs) as a
/// short `a -> b -> c` path. Bounded depth: diagnostics stay one line.
fn node_path(dag: &WorkloadDag, node: NodeId) -> String {
    const MAX_DEPTH: usize = 8;
    let mut segments: Vec<String> = Vec::new();
    let mut current = node;
    for depth in 0..MAX_DEPTH {
        let n = &dag.nodes()[current.0];
        match dag.producer(current) {
            Some(edge) => {
                segments.push(edge.op.name().to_owned());
                match edge.inputs.first() {
                    Some(&input) => current = input,
                    None => break,
                }
            }
            None => {
                match &n.name {
                    Some(name) => segments.push(format!("source {name:?}")),
                    None => segments.push("input".to_owned()),
                }
                break;
            }
        }
        if depth == MAX_DEPTH - 1 {
            segments.push("...".to_owned());
        }
    }
    segments.reverse();
    segments.join(" -> ")
}

/// Statically validate a workload DAG: propagate inferred schemas through
/// every operation, check artifact-identity (op-hash) consistency, and
/// flag dead subgraphs. Never executes an operation.
#[must_use]
pub fn validate(dag: &WorkloadDag) -> ValidationReport {
    let mut report = ValidationReport::default();
    // Errors are fatal only on nodes a terminal depends on; elsewhere the
    // pruner has already cut the edge, so the finding is a warning. A DAG
    // with no terminals has nothing required (NoTerminals is the
    // pipeline's own rejection) — treat everything as required so the
    // findings still surface.
    let required = dag
        .required_nodes()
        .unwrap_or_else(|_| vec![true; dag.n_nodes()]);

    // Op-hash collision scan: two structurally different operations whose
    // hashes agree would alias each other's artifacts in the Experiment
    // Graph. One pass over edges.
    let mut by_hash: HashMap<u64, (String, String)> = HashMap::new();
    for edge in dag.edges() {
        let identity = (edge.op.name().to_owned(), edge.op.params_digest());
        match by_hash.get(&edge.op.op_hash()) {
            None => {
                by_hash.insert(edge.op.op_hash(), identity);
            }
            Some(seen) if *seen != identity => {
                report.errors.push(Diagnostic {
                    node: edge.output.0,
                    code: MetaCode::HashCollision,
                    path: node_path(dag, edge.output),
                    message: format!(
                        "operations {} [{}] and {} [{}] share op-hash {:016x}",
                        seen.0,
                        seen.1,
                        edge.op.name(),
                        edge.op.params_digest(),
                        edge.op.op_hash()
                    ),
                });
            }
            Some(_) => {}
        }
    }

    // Schema propagation in topological (= index) order. A node that
    // failed inference gets Unknown, which suppresses — rather than
    // cascades — downstream findings.
    report.metas = Vec::with_capacity(dag.n_nodes());
    for (i, node) in dag.nodes().iter().enumerate() {
        let meta = if let Some(value) = &node.computed {
            ValueMeta::of_value(value)
        } else if let Some(edge) = dag.producer(NodeId(i)) {
            let inputs: Vec<&ValueMeta> = edge.inputs.iter().map(|n| &report.metas[n.0]).collect();
            match edge.op.infer(&inputs) {
                Ok(meta) => meta,
                Err(MetaError { code, message }) => {
                    let diagnostic = Diagnostic {
                        node: i,
                        code,
                        path: node_path(dag, NodeId(i)),
                        message,
                    };
                    if required[i] {
                        report.errors.push(diagnostic);
                    } else {
                        report.warnings.push(diagnostic);
                    }
                    ValueMeta::Unknown
                }
            }
        } else {
            // A source with no content: nothing statically known.
            ValueMeta::Unknown
        };
        report.metas.push(meta);
    }

    // Dead-subgraph warnings: nodes no terminal can reach are inert
    // weight the pruner deactivated — worth telling the user about.
    for (i, is_required) in required.iter().enumerate() {
        if !is_required {
            report.warnings.push(Diagnostic {
                node: i,
                code: MetaCode::DeadSubgraph,
                path: node_path(dag, NodeId(i)),
                message: "no requested terminal depends on this vertex".to_owned(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Script;
    use co_dataframe::ops::{AggFn, Predicate};
    use co_dataframe::{Column, ColumnData, DataFrame};

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "id", ColumnData::Int(vec![1, 2, 3])),
            Column::source("t", "x", ColumnData::Float(vec![0.1, 0.2, 0.3])),
            Column::source(
                "t",
                "c",
                ColumnData::Str(vec!["a".into(), "b".into(), "c".into()]),
            ),
            Column::source("t", "y", ColumnData::Int(vec![0, 1, 0])),
        ])
        .unwrap()
    }

    #[test]
    fn valid_pipeline_passes_with_schemas() {
        let mut s = Script::new();
        let d = s.load("train", frame());
        let sel = s.select(d, &["id", "x", "y"]).unwrap();
        let f = s
            .filter(
                sel,
                Predicate::GtF {
                    col: "x".into(),
                    value: 0.0,
                },
            )
            .unwrap();
        let t = s.agg(f, "x", AggFn::Mean).unwrap();
        s.output(t).unwrap();
        let report = validate(s.dag());
        assert!(report.is_valid(), "errors: {:?}", report.errors);
        assert!(matches!(report.metas[t.0], ValueMeta::Aggregate));
    }

    #[test]
    fn missing_column_is_rejected_with_path() {
        let mut s = Script::new();
        let d = s.load("train", frame());
        let sel = s.select(d, &["id", "zzz"]).unwrap();
        s.output(sel).unwrap();
        let report = validate(s.dag());
        assert_eq!(report.errors.len(), 1);
        let e = &report.errors[0];
        assert_eq!(e.code, MetaCode::MissingColumn);
        assert!(e.path.contains("source \"train\""), "path: {}", e.path);
        assert!(e.path.contains("select"), "path: {}", e.path);
        assert!(e.message.contains("zzz"));
        assert!(report.clone().into_result().is_err());
    }

    #[test]
    fn join_key_mismatch_is_rejected() {
        let mut s = Script::new();
        let a = s.load("a", frame());
        let b = s.load("b", frame());
        // "x" exists on both sides but is Float, not Int.
        let j = s.join(a, b, "x").unwrap();
        s.output(j).unwrap();
        let report = validate(s.dag());
        assert!(report
            .errors
            .iter()
            .any(|e| e.code == MetaCode::JoinKeyMismatch));
    }

    #[test]
    fn errors_in_dead_subgraphs_are_warnings() {
        let mut s = Script::new();
        let d = s.load("train", frame());
        // Broken, but nothing the terminal needs.
        let _dead = s.select(d, &["zzz"]).unwrap();
        let live = s.agg(d, "x", AggFn::Mean).unwrap();
        s.output(live).unwrap();
        let report = validate(s.dag());
        assert!(report.is_valid());
        assert!(report
            .warnings
            .iter()
            .any(|w| w.code == MetaCode::MissingColumn));
        assert!(report
            .warnings
            .iter()
            .any(|w| w.code == MetaCode::DeadSubgraph));
    }

    #[test]
    fn unknown_inputs_suppress_downstream_checks() {
        use crate::ops::SelectOp;
        use co_graph::{NodeKind, Operation, Value, WorkloadDag};
        use std::sync::Arc;
        struct Opaque;
        impl Operation for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn params_digest(&self) -> String {
                String::new()
            }
            fn output_kind(&self) -> NodeKind {
                NodeKind::Dataset
            }
            fn run(&self, inputs: &[&Value]) -> co_graph::Result<Value> {
                Ok(inputs[0].clone())
            }
        }
        let mut dag = WorkloadDag::new();
        let d = dag.add_source("train", Value::dataset(frame()));
        let u = dag.add_op(Arc::new(Opaque), &[d]).unwrap();
        // Whatever `opaque` emits is unknown — selecting from it is not
        // statically refutable, so it must pass.
        let sel = dag
            .add_op(
                Arc::new(SelectOp {
                    columns: vec!["anything".into()],
                }),
                &[u],
            )
            .unwrap();
        dag.mark_terminal(sel).unwrap();
        assert!(validate(&dag).is_valid());
    }
}
