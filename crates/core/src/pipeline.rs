//! Typed stage hand-offs for the server's workload pipeline.
//!
//! [`OptimizerServer::run_workload`](crate::server::OptimizerServer::run_workload)
//! is a staged pipeline (paper Figure 2) with one type per completed
//! stage, so the lock discipline is visible in the signatures:
//!
//! 1. **Prune** (no lock) — [`PrunedWorkload::new`] runs the client's
//!    local pruner.
//! 2. **Plan** (EG *read* lock) — the server's optimizer plans reuse and
//!    captures an execution snapshot: planned loads are fetched up front
//!    (Arc clones, so the fetch is a pointer bump per artifact) together
//!    with warmstart candidates and the store's fault injector. The lock
//!    is released before execution; the hand-off is a [`PlannedWorkload`].
//! 3. **Execute** (no lock) — [`PlannedWorkload::execute`] runs every
//!    `Operation::run` against the snapshot only. Concurrent evictions
//!    cannot fail it (contents are held via `Arc`), concurrent
//!    publications are simply not seen. The result, success or salvaged
//!    failure, is an [`ExecutedWorkload`].
//! 4. **Publish** (EG *write* lock, one short critical section) — the
//!    updater merges the executed DAG (Arc clones again: the store shares
//!    the workload's allocations), runs the materializer, and takes the
//!    baseline-cost estimate while the graph still cannot change.
//!
//! Stages 1–3 never touch the shared graph, so lock hold times are
//! proportional to graph *metadata*, never to compute time.

use crate::executor::{self, ExecutionSnapshot, ExecutorConfig};
use crate::failure::WorkloadError;
use crate::report::ExecutionReport;
use co_graph::{GraphError, NodeId, WorkloadDag};

/// A workload after client-side pruning (stage 1) — ready to be planned.
pub struct PrunedWorkload {
    pub(crate) dag: WorkloadDag,
}

impl PrunedWorkload {
    /// Run the client's local pruner (paper step 2, no lock required),
    /// then the static validator — a malformed DAG is rejected here with
    /// [`GraphError::InvalidWorkload`] before any lock is taken or any
    /// operation runs.
    pub fn new(mut dag: WorkloadDag) -> Result<Self, WorkloadError> {
        dag.prune().map_err(WorkloadError::from)?;
        crate::validate::validate(&dag)
            .into_result()
            .map_err(WorkloadError::from)?;
        Ok(PrunedWorkload { dag })
    }

    /// The pruned DAG.
    #[must_use]
    pub fn dag(&self) -> &WorkloadDag {
        &self.dag
    }
}

/// A workload after reuse planning (stage 2): carries everything
/// execution needs from the Experiment Graph, so the read lock the
/// planning stage held is already released.
pub struct PlannedWorkload {
    pub(crate) dag: WorkloadDag,
    pub(crate) snapshot: ExecutionSnapshot,
    pub(crate) optimizer_seconds: f64,
}

impl PlannedWorkload {
    /// Time the reuse planner spent, charged to the report as optimizer
    /// overhead.
    #[must_use]
    pub fn optimizer_seconds(&self) -> f64 {
        self.optimizer_seconds
    }

    /// Stage 3: execute against the captured snapshot — entirely
    /// lock-free. Failures are folded into the hand-off so the publish
    /// stage can salvage the untainted prefix.
    #[must_use]
    pub fn execute(self, config: &ExecutorConfig) -> ExecutedWorkload {
        let PlannedWorkload {
            mut dag,
            snapshot,
            optimizer_seconds,
        } = self;
        let result = executor::execute_snapshot(&mut dag, snapshot, config);
        let (mut report, failure) = match result {
            Ok(report) => (report, None),
            Err(WorkloadError {
                error,
                report,
                completed,
                tainted,
            }) => (
                *report,
                Some(FailedExecution {
                    error,
                    completed,
                    tainted,
                }),
            ),
        };
        report.optimizer_seconds = optimizer_seconds;
        ExecutedWorkload {
            dag,
            report,
            failure,
        }
    }
}

/// Salvage state of a failed execution: the terminal error, the vertices
/// that did complete, and the taint mask over the DAG.
pub(crate) struct FailedExecution {
    pub(crate) error: GraphError,
    pub(crate) completed: Vec<NodeId>,
    pub(crate) tainted: Vec<bool>,
}

/// A workload after execution (stage 3), successful or salvaged — ready
/// for the publish stage's single write-lock critical section.
pub struct ExecutedWorkload {
    pub(crate) dag: WorkloadDag,
    pub(crate) report: ExecutionReport,
    pub(crate) failure: Option<FailedExecution>,
}

impl ExecutedWorkload {
    /// The executed DAG (terminal values populated on success).
    #[must_use]
    pub fn dag(&self) -> &WorkloadDag {
        &self.dag
    }

    /// The execution report accumulated so far.
    #[must_use]
    pub fn report(&self) -> &ExecutionReport {
        &self.report
    }

    /// Whether execution terminated with an error (the publish stage
    /// still merges the untainted prefix).
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.failure.is_some()
    }
}
