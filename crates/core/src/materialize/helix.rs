//! The Helix materializer baseline (paper §7.1): "Helix materializes an
//! artifact when its recreation cost is greater than twice its load cost
//! ... starts materializing the artifacts from the root node until the
//! budget is exhausted." No utility ranking, no deduplication, no
//! eviction — which is why it wastes its budget on early artifacts and
//! misses the high-utility ones at the end of large workloads
//! (Figure 6/7 of the paper).

use super::{content_of, Materializer};
use crate::cost::CostModel;
use co_graph::{ArtifactId, ExperimentGraph, Value};
use std::collections::{HashMap, HashSet};

/// Root-first threshold materializer.
#[derive(Debug, Clone, Copy)]
pub struct HelixMaterializer {
    /// Storage budget in bytes (nominal accounting).
    pub budget: u64,
}

impl Materializer for HelixMaterializer {
    fn name(&self) -> &'static str {
        "HL"
    }

    fn run(
        &self,
        eg: &mut ExperimentGraph,
        available: &HashMap<ArtifactId, Value>,
        cost: &CostModel,
    ) {
        let recreation = eg.recreation_costs();
        let sources: HashSet<ArtifactId> = eg.sources().iter().copied().collect();
        // Bytes already committed (including the always-stored sources).
        let mut used: u64 = eg
            .storage()
            .materialized_ids()
            .into_iter()
            .filter_map(|id| eg.vertex(id).ok().map(|v| v.size))
            .sum();

        let order: Vec<ArtifactId> = eg.topo_order().to_vec();
        for id in order {
            if sources.contains(&id) || eg.is_materialized(id) {
                continue;
            }
            let Some(size) = eg.vertex(id).ok().map(|v| v.size) else {
                continue;
            };
            if size == 0 {
                continue;
            }
            let cl = cost.load_cost(size);
            if recreation[&id] > 2.0 * cl && used + size <= self.budget {
                // Root-first, first-fit: the high-utility artifacts at the
                // end of large workloads find the budget already spent on
                // early artifacts (paper §7.2/§7.3).
                if let Some(value) = content_of(eg, available, id) {
                    eg.storage_mut().store(id, &value);
                    used += size;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::testutil::chain_eg;

    fn unit() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1.0,
        }
    }

    #[test]
    fn materializes_root_first_until_budget() {
        // All vertices qualify (Cr > 2 Cl); budget fits only two.
        let (mut eg, ids, available) = chain_eg(
            &[
                ("a", 100.0, 4, 0.0),
                ("b", 100.0, 4, 0.0),
                ("c", 100.0, 4, 0.0),
            ],
            false,
        );
        // Source (8 bytes) + two 4-byte artifacts fill the budget.
        let m = HelixMaterializer { budget: 16 };
        m.run(&mut eg, &available, &unit());
        assert!(eg.is_materialized(ids[0]));
        assert!(eg.is_materialized(ids[1]));
        assert!(!eg.is_materialized(ids[2])); // ran out of budget
    }

    #[test]
    fn threshold_rule_skips_cheap_artifacts() {
        // a: Cr = 1 vs 2*Cl = 8 -> skip; b: Cr = 101 vs 8 -> store.
        let (mut eg, ids, available) = chain_eg(&[("a", 1.0, 4, 0.0), ("b", 100.0, 4, 0.0)], false);
        let m = HelixMaterializer { budget: 100 };
        m.run(&mut eg, &available, &unit());
        assert!(!eg.is_materialized(ids[0]));
        assert!(eg.is_materialized(ids[1]));
    }

    #[test]
    fn never_evicts() {
        let (mut eg, ids, available) =
            chain_eg(&[("a", 100.0, 4, 0.0), ("b", 1000.0, 4, 0.0)], false);
        let m = HelixMaterializer { budget: 12 };
        m.run(&mut eg, &available, &unit());
        assert!(eg.is_materialized(ids[0])); // root-first wins the slot
        m.run(&mut eg, &available, &unit());
        assert!(eg.is_materialized(ids[0])); // still there
        assert!(!eg.is_materialized(ids[1]));
    }
}
