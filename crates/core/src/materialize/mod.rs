//! Artifact materialization under a storage budget (paper §5).
//!
//! Materializers run inside the server's updater after each workload: they
//! look at the whole Experiment Graph, decide which artifact contents to
//! keep, evict what no longer earns its bytes, and store what does (when
//! the content is at hand — either in the just-executed workload or
//! already in the store).

mod greedy;
mod helix;
mod simple;
mod storage_aware;

pub use greedy::GreedyMaterializer;
pub use helix::HelixMaterializer;
pub use simple::{AllMaterializer, NoneMaterializer};
pub use storage_aware::StorageAwareMaterializer;

use crate::cost::CostModel;
use co_graph::{ArtifactId, ExperimentGraph, Value};
use std::collections::{HashMap, HashSet};

/// A materialization strategy.
pub trait Materializer: Send + Sync {
    /// Short name used in reports ("HM", "SA", "HL", "ALL", "NONE").
    fn name(&self) -> &'static str;

    /// Decide and apply materialization. `available` maps artifact ids to
    /// contents produced by the workload that just executed.
    fn run(
        &self,
        eg: &mut ExperimentGraph,
        available: &HashMap<ArtifactId, Value>,
        cost: &CostModel,
    );
}

/// A scored materialization candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub id: ArtifactId,
    /// Nominal (un-deduplicated) content size.
    pub size: u64,
    /// Utility `U(v)` from Equation 2.
    pub utility: f64,
    /// Normalized cost-size ratio (tie-breaker for equal utilities:
    /// among the ancestors of the best model — which all share its
    /// potential — the cheapest-to-store, costliest-to-recreate vertex,
    /// i.e. the model itself, wins).
    pub rcs_norm: f64,
}

/// Compute the utility of every non-source vertex (paper §5.2,
/// Equation 2):
///
/// `U(v) = 0` when `Cl(v) >= Cr(v)` (recomputing beats loading — never
/// materialize), otherwise `α·p'(v) + (1-α)·r'cs(v)` with `p` the model
/// potential, `rcs = f·Cr/s` the weighted cost-size ratio, both normalized
/// by their totals. Zero-utility vertices are omitted. The result is
/// sorted by descending utility (ties broken by id for determinism).
pub(crate) fn utilities(eg: &ExperimentGraph, cost: &CostModel, alpha: f64) -> Vec<Candidate> {
    let recreation = eg.recreation_costs();
    let potential = eg.potentials();
    let sources: HashSet<ArtifactId> = eg.sources().iter().copied().collect();

    struct Raw {
        id: ArtifactId,
        size: u64,
        p: f64,
        rcs: f64,
    }
    let mut raw: Vec<Raw> = Vec::new();
    let mut p_sum = 0.0;
    let mut rcs_sum = 0.0;
    for v in eg.vertices() {
        if sources.contains(&v.id) || v.size == 0 {
            continue;
        }
        // Scalar aggregates are excluded: an 8-byte score whose
        // recreation cost is the whole pipeline has an unbounded
        // cost-size ratio and would degenerate the utility ranking; the
        // paper's materialization targets are datasets and models
        // (§5.1's metrics are column overlap and model quality).
        if v.kind == co_graph::NodeKind::Aggregate {
            continue;
        }
        let cr = recreation[&v.id];
        let cl = cost.load_cost(v.size);
        if cl >= cr {
            continue; // Equation 2: utility 0, never materialize
        }
        let p = potential[&v.id];
        let rcs = v.frequency as f64 * cr / v.size as f64;
        p_sum += p;
        rcs_sum += rcs;
        raw.push(Raw {
            id: v.id,
            size: v.size,
            p,
            rcs,
        });
    }
    let mut out: Vec<Candidate> = raw
        .into_iter()
        .map(|r| {
            let p_norm = if p_sum > 0.0 { r.p / p_sum } else { 0.0 };
            let rcs_norm = if rcs_sum > 0.0 { r.rcs / rcs_sum } else { 0.0 };
            Candidate {
                id: r.id,
                size: r.size,
                utility: alpha * p_norm + (1.0 - alpha) * rcs_norm,
                rcs_norm,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.utility
            .partial_cmp(&a.utility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                b.rcs_norm
                    .partial_cmp(&a.rcs_norm)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.id.cmp(&b.id))
    });
    out
}

/// Retrieve content for an artifact: from the just-executed workload, or
/// from the store itself (for re-evaluation of already-stored artifacts).
pub(crate) fn content_of(
    eg: &ExperimentGraph,
    available: &HashMap<ArtifactId, Value>,
    id: ArtifactId,
) -> Option<Value> {
    available.get(&id).cloned().or_else(|| eg.storage().get(id))
}

/// Bytes the always-stored source artifacts occupy, by vertex size.
/// Sources are stored unconditionally by the updater (paper §3.2) and are
/// never evicted; they count against the budget like every other
/// materialized vertex (`Σ mat·s <= B`).
pub(crate) fn source_store_bytes(eg: &ExperimentGraph) -> u64 {
    eg.sources()
        .iter()
        .filter(|id| eg.is_materialized(**id))
        .filter_map(|id| eg.vertex(*id).ok().map(|v| v.size))
        .sum()
}

/// Evict every stored non-source artifact outside `desired`.
pub(crate) fn evict_except(eg: &mut ExperimentGraph, desired: &HashSet<ArtifactId>) {
    let sources: HashSet<ArtifactId> = eg.sources().iter().copied().collect();
    let stored = eg.storage().materialized_ids();
    for id in stored {
        if !desired.contains(&id) && !sources.contains(&id) {
            eg.storage_mut().evict(id);
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for materializer tests: a small Experiment Graph
    //! with controllable sizes, costs, frequencies, and model qualities.

    use co_dataframe::Scalar;
    use co_graph::{ArtifactId, ExperimentGraph, NodeKind, Operation, Value, WorkloadDag};
    use std::collections::HashMap;
    use std::sync::Arc;

    pub struct Tag(pub &'static str, pub NodeKind);
    impl Operation for Tag {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            self.1
        }
        fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(0.0)))
        }
    }

    /// Specification of one derived vertex: (label, compute seconds,
    /// size bytes, model quality or 0).
    pub type Spec = (&'static str, f64, u64, f64);

    /// Build an EG with one source feeding a chain of vertices per spec,
    /// returning the EG (dedup per flag), the artifact ids in spec order,
    /// and an `available` map holding content for every artifact.
    pub fn chain_eg(
        specs: &[Spec],
        dedup: bool,
    ) -> (ExperimentGraph, Vec<ArtifactId>, HashMap<ArtifactId, Value>) {
        let mut dag = WorkloadDag::new();
        let mut prev = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
        let mut nodes = Vec::new();
        for (label, _, _, q) in specs {
            let kind = if *q > 0.0 {
                NodeKind::Model
            } else {
                NodeKind::Dataset
            };
            let n = dag.add_op(Arc::new(Tag(label, kind)), &[prev]).unwrap();
            nodes.push(n);
            prev = n;
        }
        dag.mark_terminal(prev).unwrap();
        for (n, (_, t, s, q)) in nodes.iter().zip(specs) {
            dag.annotate(*n, *t, *s).unwrap();
            dag.node_mut(*n).unwrap().quality = *q;
            // Give every node a content value (size is tracked by the
            // vertex attribute, not the content, in these tests).
            dag.set_computed(*n, Value::Aggregate(Scalar::Float(0.0)))
                .unwrap();
            // set_computed overwrote the size annotation; restore it.
            dag.node_mut(*n).unwrap().size = Some(*s);
        }
        let mut eg = ExperimentGraph::new(dedup);
        eg.update_with_workload(&dag).unwrap();
        let ids: Vec<ArtifactId> = nodes.iter().map(|n| dag.nodes()[n.0].artifact).collect();
        let available: HashMap<ArtifactId, Value> = ids
            .iter()
            .map(|id| (*id, Value::Aggregate(Scalar::Float(0.0))))
            .collect();
        (eg, ids, available)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::chain_eg;

    /// Unit cost model where Cl(v) = size in seconds-per-byte 1.
    fn unit() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1.0,
        }
    }

    #[test]
    fn utility_zero_when_load_beats_recompute() {
        // b is huge relative to its recreation cost -> excluded.
        let (eg, ids, _) = chain_eg(&[("a", 10.0, 2, 0.0), ("b", 0.5, 1000, 0.0)], false);
        let cands = utilities(&eg, &unit(), 0.5);
        assert!(cands.iter().any(|c| c.id == ids[0]));
        assert!(!cands.iter().any(|c| c.id == ids[1]));
    }

    #[test]
    fn quality_raises_utility_with_alpha() {
        // Same cost/size, but m is a model with quality 0.9.
        let (eg, ids, _) = chain_eg(&[("a", 10.0, 2, 0.0), ("m", 10.0, 2, 0.9)], false);
        // alpha = 1: only potential matters. The ancestor `a` also carries
        // the model's potential, so both are tied; `m` itself must be
        // strictly ahead of nothing. With alpha = 0 they tie on rcs by
        // construction? a has Cr = 10, m has Cr = 20 -> different.
        let by_quality = utilities(&eg, &unit(), 1.0);
        assert_eq!(
            by_quality.first().map(|c| c.utility),
            Some(by_quality[1].utility)
        );
        let by_cost = utilities(&eg, &unit(), 0.0);
        // With alpha = 0 the deeper vertex (larger Cr) wins.
        assert_eq!(by_cost[0].id, ids[1]);
        assert!(by_cost[0].utility > by_cost[1].utility);
    }

    #[test]
    fn frequencies_weight_the_cost_ratio() {
        let (mut eg, ids, _) = chain_eg(&[("a", 10.0, 2, 0.0), ("b", 10.0, 2, 0.0)], false);
        // Artificially bump a's frequency.
        eg.vertex_mut(ids[0]).unwrap().frequency = 10;
        let cands = utilities(&eg, &unit(), 0.0);
        assert_eq!(cands[0].id, ids[0]);
    }

    #[test]
    fn eviction_spares_sources_and_desired() {
        let (mut eg, ids, available) = chain_eg(&[("a", 10.0, 2, 0.0), ("b", 10.0, 2, 0.0)], false);
        for id in &ids {
            let v = content_of(&eg, &available, *id).unwrap();
            eg.storage_mut().store(*id, &v);
        }
        let keep: HashSet<ArtifactId> = [ids[1]].into_iter().collect();
        evict_except(&mut eg, &keep);
        assert!(!eg.is_materialized(ids[0]));
        assert!(eg.is_materialized(ids[1]));
        // The source stays.
        let src = eg.sources()[0];
        assert!(eg.is_materialized(src));
    }
}
