//! Trivial materializers: `ALL` stores every artifact it can (the
//! paper's unbounded upper bound in Figures 6/7), `NONE` stores nothing
//! beyond the sources (the `KG` baseline).

use super::Materializer;
use crate::cost::CostModel;
use co_graph::{ArtifactId, ExperimentGraph, Value};
use std::collections::HashMap;

/// Materialize everything whose content is available.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllMaterializer;

impl Materializer for AllMaterializer {
    fn name(&self) -> &'static str {
        "ALL"
    }

    fn run(
        &self,
        eg: &mut ExperimentGraph,
        available: &HashMap<ArtifactId, Value>,
        _cost: &CostModel,
    ) {
        for (id, value) in available {
            if !eg.is_materialized(*id) {
                eg.storage_mut().store(*id, value);
            }
        }
    }
}

/// Materialize nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoneMaterializer;

impl Materializer for NoneMaterializer {
    fn name(&self) -> &'static str {
        "NONE"
    }

    fn run(
        &self,
        _eg: &mut ExperimentGraph,
        _available: &HashMap<ArtifactId, Value>,
        _cost: &CostModel,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::testutil::chain_eg;

    #[test]
    fn all_stores_everything_none_stores_nothing() {
        let (mut eg, ids, available) = chain_eg(&[("a", 1.0, 4, 0.0), ("b", 1.0, 4, 0.0)], false);
        NoneMaterializer.run(&mut eg, &available, &CostModel::default());
        assert!(ids.iter().all(|id| !eg.is_materialized(*id)));
        AllMaterializer.run(&mut eg, &available, &CostModel::default());
        assert!(ids.iter().all(|id| eg.is_materialized(*id)));
    }
}
