//! The storage-aware materializer (paper §5.3): Algorithm 1 plus
//! column-level deduplication, applied as the paper's greedy
//! meta-algorithm — "while the budget is not exhausted ... apply Algorithm
//! 1 ... compress the materialized artifacts ... update the remaining
//! budget ... repeat until no new vertices are materialized or the updated
//! budget is zero."
//!
//! The budget constrains the *unique* (deduplicated) bytes physically
//! held; the nominal size of the materialized artifacts can exceed it by
//! a large factor (Figure 6 of the paper reports up to 8x).

use super::{content_of, evict_except, utilities, Materializer};
use crate::cost::CostModel;
use co_graph::{ArtifactId, ExperimentGraph, Value};
use std::collections::{HashMap, HashSet};

/// The paper's `SA` materializer. Requires an Experiment Graph whose
/// store was created with deduplication enabled.
#[derive(Debug, Clone, Copy)]
pub struct StorageAwareMaterializer {
    /// Budget on unique bytes held.
    pub budget: u64,
    /// Quality-vs-cost trade-off `α`.
    pub alpha: f64,
}

impl StorageAwareMaterializer {
    /// Constructor with the paper's default `α = 0.5`.
    #[must_use]
    pub fn new(budget: u64) -> Self {
        StorageAwareMaterializer { budget, alpha: 0.5 }
    }
}

impl Materializer for StorageAwareMaterializer {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn run(
        &self,
        eg: &mut ExperimentGraph,
        available: &HashMap<ArtifactId, Value>,
        cost: &CostModel,
    ) {
        let ranked = utilities(eg, cost, self.alpha);

        // Determine the desired materialized set by *simulating* the
        // deduplicated store: walk the utility ranking and admit every
        // artifact whose marginal (deduplicated) bytes still fit.
        //
        // This computes the fixpoint of the paper's greedy meta-algorithm
        // ("apply Algorithm 1, compress, update the remaining budget,
        // repeat") in one pass: an artifact admitted by a later
        // meta-round — because earlier artifacts' columns already pay for
        // most of its bytes — is exactly an artifact whose marginal size
        // fits here. Crucially, the set is decided *before* any eviction,
        // while the content of currently-stored artifacts can still be
        // read back.
        // The simulation mirrors the real store's dedup mode: on a plain
        // store marginal bytes equal nominal bytes, and SA degrades to
        // exactly the greedy (HM) selection — the ablation in DESIGN.md.
        let mut sim = co_graph::StorageManager::new(eg.storage().dedup_enabled());
        // Sources are stored unconditionally and count against the budget.
        for src in eg.sources().to_vec() {
            if let Some(value) = eg.storage().get(src) {
                sim.store(src, &value);
            }
        }
        let mut desired: Vec<(ArtifactId, Value)> = Vec::new();
        for c in &ranked {
            let Some(value) = content_of(eg, available, c.id) else {
                continue;
            };
            let marginal = sim.marginal_bytes(&value);
            if sim.unique_bytes() + marginal <= self.budget {
                sim.store(c.id, &value);
                desired.push((c.id, value));
            }
        }

        // Displacement: artifacts outside the desired set lose their
        // slot (this is what makes the paper's Figure 6(a) dip after
        // Workload 3 possible).
        let keep: HashSet<ArtifactId> = desired.iter().map(|(id, _)| *id).collect();
        evict_except(eg, &keep);
        for (id, value) in desired {
            if !eg.is_materialized(id) {
                eg.storage_mut().store(id, &value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::ops::MapFn;
    use co_dataframe::{ops as df_ops, Column, ColumnData, DataFrame};
    use co_graph::{NodeKind, Operation, Value, WorkloadDag};
    use std::sync::Arc;

    fn unit() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1e12,
        }
    }

    /// A real dataframe pipeline where derived artifacts share most
    /// columns with their inputs, so dedup packs far more than the
    /// budget's worth of nominal bytes.
    struct MapTag(&'static str);
    impl Operation for MapTag {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Dataset
        }
        fn run(&self, inputs: &[&Value]) -> co_graph::Result<Value> {
            let df = inputs[0].as_dataset().unwrap();
            Ok(Value::dataset(
                df_ops::map_column(df, "base", &MapFn::AddConst(1.0), self.0).unwrap(),
            ))
        }
    }

    fn overlapping_pipeline() -> (ExperimentGraph, Vec<ArtifactId>, HashMap<ArtifactId, Value>) {
        let base = DataFrame::new(vec![Column::source(
            "src",
            "base",
            ColumnData::Float((0..1000).map(f64::from).collect()),
        )])
        .unwrap();
        let mut dag = WorkloadDag::new();
        let mut prev = dag.add_source("src", Value::dataset(base));
        let mut nodes = Vec::new();
        for label in ["d1", "d2", "d3", "d4"] {
            let n = dag.add_op(Arc::new(MapTag(label)), &[prev]).unwrap();
            nodes.push(n);
            prev = n;
        }
        dag.mark_terminal(prev).unwrap();
        // Execute by hand to fill values and annotations.
        for n in &nodes {
            let edge_inputs = dag.parents(*n);
            let input = dag.nodes()[edge_inputs[0].0].computed.clone().unwrap();
            let op = Arc::clone(&dag.producer(*n).unwrap().op);
            let out = op.run(&[&input]).unwrap();
            let size = out.nbytes() as u64;
            dag.set_computed(*n, out).unwrap();
            dag.annotate(*n, 10.0, size).unwrap();
            // annotate cleared nothing; keep both annotations.
            let node = dag.node_mut(*n).unwrap();
            node.compute_time = Some(10.0);
        }
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        let ids: Vec<ArtifactId> = nodes.iter().map(|n| dag.nodes()[n.0].artifact).collect();
        let available: HashMap<ArtifactId, Value> = nodes
            .iter()
            .map(|n| {
                (
                    dag.nodes()[n.0].artifact,
                    dag.nodes()[n.0].computed.clone().unwrap(),
                )
            })
            .collect();
        (eg, ids, available)
    }

    #[test]
    fn dedup_packs_more_than_the_nominal_budget() {
        let (mut eg, ids, available) = overlapping_pipeline();
        // Each artifact nominally holds the 8 KB base column plus i
        // derived 8 KB columns; the nominal total is 120 KB while the
        // unique bytes of everything are only 40 KB.
        let source = eg.storage().unique_bytes(); // base frame, 8 KB
        let one = eg.vertex(ids[0]).unwrap().size; // 16 KB
        let budget = source + 2 * one; // nominal room for ~2 artifacts
        let sa = StorageAwareMaterializer::new(budget);
        sa.run(&mut eg, &available, &unit());
        let stored = ids.iter().filter(|id| eg.is_materialized(**id)).count();
        assert_eq!(stored, 4, "dedup should fit all overlapping artifacts");
        assert!(eg.storage().unique_bytes() <= budget);
        assert!(eg.storage().logical_bytes() > budget);
    }

    #[test]
    fn budget_is_a_hard_cap_on_unique_bytes() {
        let (mut eg, _, available) = overlapping_pipeline();
        // Sources are stored unconditionally; they are the floor.
        let floor = eg.storage().unique_bytes();
        for budget in [1_000u64, 10_000, 100_000] {
            let sa = StorageAwareMaterializer::new(budget);
            sa.run(&mut eg, &available, &unit());
            assert!(
                eg.storage().unique_bytes() <= budget.max(floor),
                "budget {budget}: held {}",
                eg.storage().unique_bytes()
            );
        }
    }

    #[test]
    fn displacement_can_shrink_the_logical_footprint() {
        let (mut eg, ids, mut available) = overlapping_pipeline();
        let source = eg.storage().unique_bytes();
        let one = eg.vertex(ids[0]).unwrap().size;
        let sa = StorageAwareMaterializer::new(source + 2 * one);
        sa.run(&mut eg, &available, &unit());
        let logical_before = eg.storage().logical_bytes();
        assert!(logical_before > 0);

        // A new, huge, high-utility artifact with no overlap arrives.
        let big = DataFrame::new(vec![Column::source(
            "other",
            "wide",
            ColumnData::Float((0..1500).map(f64::from).collect()),
        )])
        .unwrap();
        let mut dag2 = WorkloadDag::new();
        let src2 = dag2.add_source("other", Value::dataset(big));
        let n = dag2.add_op(Arc::new(MapTagBig), &[src2]).unwrap();
        dag2.mark_terminal(n).unwrap();
        let input = dag2.nodes()[src2.0].computed.clone().unwrap();
        let out = MapTagBig.run(&[&input]).unwrap();
        let size = out.nbytes() as u64;
        dag2.set_computed(n, out.clone()).unwrap();
        dag2.annotate(n, 1_000.0, size).unwrap();
        eg.update_with_workload(&dag2).unwrap();
        available.insert(dag2.nodes()[n.0].artifact, out);

        sa.run(&mut eg, &available, &unit());
        assert!(eg.is_materialized(dag2.nodes()[n.0].artifact));
        // The big artifact displaced overlapping ones; since it shares no
        // columns, fewer artifacts fit and the logical footprint drops.
        assert!(eg.storage().logical_bytes() < logical_before + size);
    }

    struct MapTagBig;
    impl Operation for MapTagBig {
        fn name(&self) -> &str {
            "big_transform"
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Dataset
        }
        fn run(&self, inputs: &[&Value]) -> co_graph::Result<Value> {
            let df = inputs[0].as_dataset().unwrap();
            Ok(Value::dataset(
                df_ops::map_column(df, "wide", &MapFn::MulConst(2.0), "wide").unwrap(),
            ))
        }
    }
}
