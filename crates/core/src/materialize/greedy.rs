//! The ML-based greedy materializer (paper §5.2, Algorithm 1): rank all
//! vertices by utility and keep the prefix that fits the budget, counting
//! *nominal* artifact sizes (no deduplication) — the paper's `HM`.

use super::{content_of, evict_except, source_store_bytes, utilities, Materializer};
use crate::cost::CostModel;
use co_graph::{ArtifactId, ExperimentGraph, Value};
use std::collections::{HashMap, HashSet};

/// Algorithm 1 with plain size accounting.
#[derive(Debug, Clone, Copy)]
pub struct GreedyMaterializer {
    /// Storage budget in bytes. The always-stored sources count against
    /// it (but are never evicted, even when they alone exceed it).
    pub budget: u64,
    /// Importance of model quality vs cost-size ratio (`α` in
    /// Equation 2).
    pub alpha: f64,
    /// Optional cap on the *number* of materialized artifacts — the
    /// paper's Figure 8(b) study sets "the budget to one artifact".
    pub max_artifacts: Option<usize>,
}

impl GreedyMaterializer {
    /// Budget-only constructor with the paper's default `α = 0.5`.
    #[must_use]
    pub fn new(budget: u64) -> Self {
        GreedyMaterializer {
            budget,
            alpha: 0.5,
            max_artifacts: None,
        }
    }

    /// The desired materialized set under current utilities. Candidates
    /// whose content is not at hand (neither in the just-executed
    /// workload nor already stored) cannot be materialized and must not
    /// reserve budget.
    fn desired(
        &self,
        eg: &ExperimentGraph,
        available: &HashMap<ArtifactId, Value>,
        cost: &CostModel,
    ) -> Vec<ArtifactId> {
        let mut picked = Vec::new();
        let mut used = source_store_bytes(eg);
        for c in utilities(eg, cost, self.alpha) {
            if self.max_artifacts.is_some_and(|m| picked.len() >= m) {
                break;
            }
            if !available.contains_key(&c.id) && !eg.is_materialized(c.id) {
                continue;
            }
            if used + c.size <= self.budget {
                used += c.size;
                picked.push(c.id);
            }
        }
        picked
    }
}

impl Materializer for GreedyMaterializer {
    fn name(&self) -> &'static str {
        "HM"
    }

    fn run(
        &self,
        eg: &mut ExperimentGraph,
        available: &HashMap<ArtifactId, Value>,
        cost: &CostModel,
    ) {
        let desired = self.desired(eg, available, cost);
        let desired_set: HashSet<ArtifactId> = desired.iter().copied().collect();
        // Collect contents before evicting (eviction drops them).
        let contents: Vec<(ArtifactId, Value)> = desired
            .iter()
            .filter_map(|id| content_of(eg, available, *id).map(|v| (*id, v)))
            .collect();
        evict_except(eg, &desired_set);
        for (id, value) in contents {
            if !eg.is_materialized(id) {
                eg.storage_mut().store(id, &value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::testutil::chain_eg;

    fn unit() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1.0,
        }
    }

    #[test]
    fn respects_the_budget() {
        let (mut eg, ids, available) = chain_eg(
            &[
                ("a", 10.0, 4, 0.0),
                ("b", 10.0, 4, 0.0),
                ("c", 10.0, 4, 0.0),
            ],
            false,
        );
        // The 8-byte source is stored unconditionally and counts against
        // the budget, leaving room for two 4-byte artifacts.
        let m = GreedyMaterializer::new(16);
        m.run(&mut eg, &available, &unit());
        let stored: Vec<bool> = ids.iter().map(|id| eg.is_materialized(*id)).collect();
        assert_eq!(stored.iter().filter(|&&s| s).count(), 2);
    }

    #[test]
    fn prefers_high_utility_artifacts() {
        // c is deepest (largest Cr) -> highest rcs at alpha 0.
        let (mut eg, ids, available) = chain_eg(
            &[
                ("a", 10.0, 4, 0.0),
                ("b", 10.0, 4, 0.0),
                ("c", 10.0, 4, 0.0),
            ],
            false,
        );
        let m = GreedyMaterializer {
            budget: 12,
            alpha: 0.0,
            max_artifacts: None,
        };
        m.run(&mut eg, &available, &unit());
        assert!(eg.is_materialized(ids[2]));
        assert!(!eg.is_materialized(ids[0]));
    }

    #[test]
    fn max_artifacts_caps_selection() {
        let (mut eg, ids, available) =
            chain_eg(&[("a", 10.0, 4, 0.0), ("m", 10.0, 4, 0.95)], false);
        let m = GreedyMaterializer {
            budget: u64::MAX,
            alpha: 1.0,
            max_artifacts: Some(1),
        };
        m.run(&mut eg, &available, &unit());
        let stored: Vec<_> = ids.iter().filter(|id| eg.is_materialized(**id)).collect();
        assert_eq!(stored.len(), 1);
    }

    #[test]
    fn re_running_evicts_displaced_artifacts() {
        let (mut eg, ids, available) = chain_eg(&[("a", 10.0, 4, 0.0), ("b", 10.0, 4, 0.0)], false);
        let m = GreedyMaterializer {
            budget: 12,
            alpha: 0.0,
            max_artifacts: None,
        };
        m.run(&mut eg, &available, &unit());
        assert!(eg.is_materialized(ids[1])); // deeper vertex wins
                                             // Bump a's frequency massively; the next run displaces b.
        eg.vertex_mut(ids[0]).unwrap().frequency = 100;
        m.run(&mut eg, &available, &unit());
        assert!(eg.is_materialized(ids[0]));
        assert!(!eg.is_materialized(ids[1]));
    }

    #[test]
    fn unavailable_content_is_skipped_gracefully() {
        let (mut eg, ids, _) = chain_eg(&[("a", 10.0, 4, 0.0)], false);
        let m = GreedyMaterializer::new(100);
        m.run(&mut eg, &HashMap::new(), &unit());
        assert!(!eg.is_materialized(ids[0])); // nothing to store from
    }
}
