//! # co-core
//!
//! The collaborative ML workload optimizer of Derakhshan et al.
//! (SIGMOD 2020): the client/server system that stores ML artifacts in an
//! Experiment Graph, decides which to **materialize** under a storage
//! budget, **reuses** them to optimize incoming workload DAGs in linear
//! time, and **warmstarts** model training.
//!
//! ## Pipeline (paper Figure 2)
//!
//! 1. The client builds a workload DAG with the [`dsl::Script`] builder
//!    (the paper's parser producing the wrapper-pandas/sklearn DAG).
//! 2. The client's *local pruner* deactivates edges that are off the
//!    terminal path or already computed.
//! 3. The server's *optimizer* runs a [`optimizer::ReusePlanner`]
//!    (linear-time by default, Helix max-flow / ALL / NONE as baselines)
//!    against the Experiment Graph and returns an optimized plan.
//! 4. The client's [`executor`] runs the plan, measuring compute times and
//!    charging modelled load costs from the [`cost::CostModel`].
//! 5. The server's *updater* merges the executed DAG into the Experiment
//!    Graph and runs a [`materialize::Materializer`] (ML-based greedy,
//!    storage-aware, Helix, ALL, NONE) to decide which artifact contents
//!    to keep within the budget.
//!
//! [`server::OptimizerServer`] wires the five steps together as a staged
//! [`pipeline`] over one `parking_lot::RwLock`-guarded Experiment Graph:
//! planning captures an execution snapshot under the read lock, execution
//! runs lock-free against the snapshot, and update + materialize share a
//! single short write-lock critical section — so concurrent client
//! sessions share one Experiment Graph with lock hold times proportional
//! to graph metadata, not compute time (see DESIGN.md §9).

#![forbid(unsafe_code)]

pub mod advisor;
pub mod cost;
pub mod dsl;
pub mod executor;
pub mod failure;
pub mod materialize;
pub mod ops;
pub mod optimizer;
pub mod pipeline;
pub mod report;
pub mod server;
pub mod validate;
pub mod warmstart;

pub use cost::CostModel;
pub use dsl::Script;
pub use failure::{Quarantine, RetryPolicy, WorkloadError};
pub use pipeline::{ExecutedWorkload, PlannedWorkload, PrunedWorkload};
pub use report::{ExecutionReport, RecoveryReport};
pub use server::{
    DurabilityConfig, DurabilityHealth, OptimizerServer, ServerConfig, ServerStats,
    READ_ONLY_RETRY_HINT_MS,
};
pub use validate::{validate, Diagnostic, ValidationReport};
