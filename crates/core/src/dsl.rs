//! The client-side script builder — the Rust analogue of the paper's
//! wrapper-pandas / wrapper-sklearn DSL (Listing 1). A [`Script`] builds a
//! [`co_graph::WorkloadDag`] by chaining operations on node handles; the
//! paper's example translates almost line by line:
//!
//! ```
//! use co_core::dsl::Script;
//! use co_dataframe::{Column, ColumnData, DataFrame};
//! use co_ml::feature::VectorizerParams;
//! use co_ml::linear::SvmParams;
//!
//! let train = DataFrame::new(vec![
//!     Column::source("train", "ad_desc", ColumnData::Str(vec![
//!         "red shoes".into(), "blue hat".into(), "red hat sale".into(), "old shoes".into(),
//!     ])),
//!     Column::source("train", "ts", ColumnData::Float(vec![1.0, 2.0, 3.0, 4.0])),
//!     Column::source("train", "u_id", ColumnData::Float(vec![1.0, 2.0, 1.0, 3.0])),
//!     Column::source("train", "price", ColumnData::Float(vec![9.0, 5.0, 7.0, 3.0])),
//!     Column::source("train", "y", ColumnData::Int(vec![1, 0, 1, 0])),
//! ]).unwrap();
//!
//! let mut s = Script::new();
//! let train = s.load("train.csv", train);
//! let ad_desc = s.select(train, &["ad_desc"]).unwrap();
//! let count_vectorized = s
//!     .count_vectorize(ad_desc, "ad_desc", VectorizerParams { max_features: 10, min_token_len: 2 })
//!     .unwrap();
//! let t_subset = s.select(train, &["ts", "u_id", "price", "y"]).unwrap();
//! let top_features = s.select_k_best(t_subset, "y", 2).unwrap();
//! let y = s.select(train, &["y"]).unwrap();
//! let x = s.hconcat(&[count_vectorized, top_features, y]).unwrap();
//! let model = s.train_svm(x, "y", SvmParams::default()).unwrap();
//! s.output(model).unwrap();
//! let dag = s.into_dag();
//! assert!(dag.n_nodes() > 6);
//! ```

use crate::ops::*;
use co_dataframe::ops::{AggFn, BinFn, MapFn, Predicate, StrFn};
use co_dataframe::DataFrame;
use co_graph::{NodeId, Result, Value, WorkloadDag};
use co_ml::feature::{ImputeStrategy, PcaParams, ScaleKind, VectorizerParams};
use co_ml::linear::{LogisticParams, RidgeParams, SvmParams};
use co_ml::tree::{ForestParams, GbtParams, TreeParams};
use std::sync::Arc;

/// A workload script under construction.
#[derive(Default)]
pub struct Script {
    dag: WorkloadDag,
}

impl Script {
    /// An empty script.
    #[must_use]
    pub fn new() -> Self {
        Script::default()
    }

    /// Load a source dataset (`pd.read_csv`). The name identifies the
    /// dataset across workloads.
    pub fn load(&mut self, name: &str, df: DataFrame) -> NodeId {
        self.dag.add_source(name, Value::dataset(df))
    }

    /// Mark a node as a requested output (terminal vertex).
    pub fn output(&mut self, node: NodeId) -> Result<()> {
        self.dag.mark_terminal(node)
    }

    /// Finish building and take the DAG.
    #[must_use]
    pub fn into_dag(self) -> WorkloadDag {
        self.dag
    }

    /// Read access to the DAG under construction.
    #[must_use]
    pub fn dag(&self) -> &WorkloadDag {
        &self.dag
    }

    // --- data operations -------------------------------------------------

    /// Projection.
    pub fn select(&mut self, node: NodeId, columns: &[&str]) -> Result<NodeId> {
        let columns = columns.iter().map(|s| (*s).to_owned()).collect();
        self.dag.add_op(Arc::new(SelectOp { columns }), &[node])
    }

    /// Drop columns.
    pub fn drop_columns(&mut self, node: NodeId, columns: &[&str]) -> Result<NodeId> {
        let columns = columns.iter().map(|s| (*s).to_owned()).collect();
        self.dag
            .add_op(Arc::new(DropColumnsOp { columns }), &[node])
    }

    /// Rename a column.
    pub fn rename(&mut self, node: NodeId, from: &str, to: &str) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(RenameOp {
                from: from.into(),
                to: to.into(),
            }),
            &[node],
        )
    }

    /// Row filter.
    pub fn filter(&mut self, node: NodeId, predicate: Predicate) -> Result<NodeId> {
        self.dag.add_op(Arc::new(FilterOp { predicate }), &[node])
    }

    /// Drop rows with missing values.
    pub fn dropna(&mut self, node: NodeId, subset: &[&str]) -> Result<NodeId> {
        let subset = subset.iter().map(|s| (*s).to_owned()).collect();
        self.dag.add_op(Arc::new(DropNaOp { subset }), &[node])
    }

    /// Unary column transform.
    pub fn map(&mut self, node: NodeId, column: &str, f: MapFn, out: &str) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(MapOp {
                column: column.into(),
                f,
                out: out.into(),
            }),
            &[node],
        )
    }

    /// Binary column arithmetic.
    pub fn binary(
        &mut self,
        node: NodeId,
        left: &str,
        right: &str,
        f: BinFn,
        out: &str,
    ) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(BinaryOp {
                left: left.into(),
                right: right.into(),
                f,
                out: out.into(),
            }),
            &[node],
        )
    }

    /// String-derived numeric feature.
    pub fn str_feature(
        &mut self,
        node: NodeId,
        column: &str,
        f: StrFn,
        out: &str,
    ) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(StrFeatureOp {
                column: column.into(),
                f,
                out: out.into(),
            }),
            &[node],
        )
    }

    /// Inner join on an integer key.
    pub fn join(&mut self, left: NodeId, right: NodeId, on: &str) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(JoinOp {
                on: on.into(),
                how: JoinHow::Inner,
            }),
            &[left, right],
        )
    }

    /// Left outer join on an integer key.
    pub fn left_join(&mut self, left: NodeId, right: NodeId, on: &str) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(JoinOp {
                on: on.into(),
                how: JoinHow::Left,
            }),
            &[left, right],
        )
    }

    /// Horizontal concatenation (`pd.concat(axis=1)`).
    pub fn hconcat(&mut self, nodes: &[NodeId]) -> Result<NodeId> {
        self.dag.add_op(Arc::new(HConcatOp), nodes)
    }

    /// Vertical concatenation.
    pub fn vconcat(&mut self, nodes: &[NodeId]) -> Result<NodeId> {
        self.dag.add_op(Arc::new(VConcatOp), nodes)
    }

    /// Alignment (paper §7.2): both frames restricted to their common
    /// columns, as two single-output operations.
    pub fn align(&mut self, a: NodeId, b: NodeId) -> Result<(NodeId, NodeId)> {
        let left = self.dag.add_op(Arc::new(AlignOp { side: 0 }), &[a, b])?;
        let right = self.dag.add_op(Arc::new(AlignOp { side: 1 }), &[a, b])?;
        Ok((left, right))
    }

    /// Group-by aggregation.
    pub fn groupby(&mut self, node: NodeId, key: &str, aggs: &[(&str, AggFn)]) -> Result<NodeId> {
        let aggs = aggs.iter().map(|(c, f)| ((*c).to_owned(), *f)).collect();
        self.dag.add_op(
            Arc::new(GroupByOp {
                key: key.into(),
                aggs,
            }),
            &[node],
        )
    }

    /// One-hot encode a categorical column.
    pub fn one_hot(&mut self, node: NodeId, column: &str, max_categories: usize) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(OneHotOp {
                column: column.into(),
                max_categories,
            }),
            &[node],
        )
    }

    /// Label-encode a categorical column.
    pub fn label_encode(&mut self, node: NodeId, column: &str) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(LabelEncodeOp {
                column: column.into(),
            }),
            &[node],
        )
    }

    /// Seeded row sample.
    pub fn sample(&mut self, node: NodeId, n: usize, seed: u64) -> Result<NodeId> {
        self.dag.add_op(Arc::new(SampleOp { n, seed }), &[node])
    }

    /// Sort rows.
    pub fn sort(&mut self, node: NodeId, column: &str, ascending: bool) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(SortOp {
                column: column.into(),
                ascending,
            }),
            &[node],
        )
    }

    /// Scale numeric columns.
    pub fn scale(&mut self, node: NodeId, kind: ScaleKind, columns: &[&str]) -> Result<NodeId> {
        let columns = columns.iter().map(|s| (*s).to_owned()).collect();
        self.dag
            .add_op(Arc::new(ScaleOp { kind, columns }), &[node])
    }

    /// Impute missing values.
    pub fn impute(
        &mut self,
        node: NodeId,
        strategy: ImputeStrategy,
        columns: &[&str],
    ) -> Result<NodeId> {
        let columns = columns.iter().map(|s| (*s).to_owned()).collect();
        self.dag
            .add_op(Arc::new(ImputeOp { strategy, columns }), &[node])
    }

    /// Bag-of-words vectorisation (`CountVectorizer`).
    pub fn count_vectorize(
        &mut self,
        node: NodeId,
        column: &str,
        params: VectorizerParams,
    ) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(CountVectorizeOp {
                column: column.into(),
                params,
            }),
            &[node],
        )
    }

    /// TF-IDF vectorisation (`TfidfVectorizer`).
    pub fn tfidf_vectorize(
        &mut self,
        node: NodeId,
        column: &str,
        params: VectorizerParams,
    ) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(TfidfVectorizeOp {
                column: column.into(),
                params,
            }),
            &[node],
        )
    }

    /// Univariate feature selection (`SelectKBest`).
    pub fn select_k_best(&mut self, node: NodeId, label: &str, k: usize) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(SelectKBestOp {
                label: label.into(),
                k,
            }),
            &[node],
        )
    }

    /// PCA projection.
    pub fn pca(&mut self, node: NodeId, columns: &[&str], params: PcaParams) -> Result<NodeId> {
        let columns = columns.iter().map(|s| (*s).to_owned()).collect();
        self.dag
            .add_op(Arc::new(PcaOp { columns, params }), &[node])
    }

    /// K-means cluster-distance features over the named columns.
    pub fn cluster_features(
        &mut self,
        node: NodeId,
        columns: &[&str],
        params: co_ml::cluster::KMeansParams,
    ) -> Result<NodeId> {
        let columns = columns.iter().map(|s| (*s).to_owned()).collect();
        self.dag
            .add_op(Arc::new(ClusterFeaturesOp { columns, params }), &[node])
    }

    /// Degree-2 polynomial features.
    pub fn poly(&mut self, node: NodeId, columns: &[&str]) -> Result<NodeId> {
        let columns = columns.iter().map(|s| (*s).to_owned()).collect();
        self.dag.add_op(Arc::new(PolyOp { columns }), &[node])
    }

    /// Whole-column aggregate (an `Aggregate` terminal candidate).
    pub fn agg(&mut self, node: NodeId, column: &str, f: AggFn) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(AggOp {
                column: column.into(),
                f,
            }),
            &[node],
        )
    }

    /// Frequency table.
    pub fn value_counts(&mut self, node: NodeId, column: &str) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(ValueCountsOp {
                column: column.into(),
            }),
            &[node],
        )
    }

    /// Summary statistics (a visualization terminal).
    pub fn describe(&mut self, node: NodeId) -> Result<NodeId> {
        self.dag.add_op(Arc::new(DescribeOp), &[node])
    }

    /// Correlation matrix (a visualization terminal).
    pub fn corr(&mut self, node: NodeId) -> Result<NodeId> {
        self.dag.add_op(Arc::new(CorrOp), &[node])
    }

    // --- training and evaluation ----------------------------------------

    /// Train logistic regression on all numeric columns except `label`.
    pub fn train_logistic(
        &mut self,
        node: NodeId,
        label: &str,
        params: LogisticParams,
    ) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(TrainLogisticOp {
                label: label.into(),
                params,
            }),
            &[node],
        )
    }

    /// Train a linear SVM.
    pub fn train_svm(&mut self, node: NodeId, label: &str, params: SvmParams) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(TrainSvmOp {
                label: label.into(),
                params,
            }),
            &[node],
        )
    }

    /// Train ridge regression.
    pub fn train_ridge(
        &mut self,
        node: NodeId,
        label: &str,
        params: RidgeParams,
    ) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(TrainRidgeOp {
                label: label.into(),
                params,
            }),
            &[node],
        )
    }

    /// Train a decision tree.
    pub fn train_tree(&mut self, node: NodeId, label: &str, params: TreeParams) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(TrainTreeOp {
                label: label.into(),
                params,
            }),
            &[node],
        )
    }

    /// Train a random forest.
    pub fn train_forest(
        &mut self,
        node: NodeId,
        label: &str,
        params: ForestParams,
    ) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(TrainForestOp {
                label: label.into(),
                params,
            }),
            &[node],
        )
    }

    /// Train gradient-boosted trees.
    pub fn train_gbt(&mut self, node: NodeId, label: &str, params: GbtParams) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(TrainGbtOp {
                label: label.into(),
                params,
            }),
            &[node],
        )
    }

    /// Apply a model to a dataset, appending a probability column named
    /// `out` (columns in `exclude` — typically the label — are left out of
    /// the feature matrix).
    pub fn predict(
        &mut self,
        model: NodeId,
        data: NodeId,
        out: &str,
        exclude: &[&str],
    ) -> Result<NodeId> {
        let exclude = exclude.iter().map(|s| (*s).to_owned()).collect();
        self.dag.add_op(
            Arc::new(PredictOp {
                out: out.into(),
                exclude,
            }),
            &[model, data],
        )
    }

    /// Evaluate a model on a labelled dataset; the score becomes the
    /// model vertex's quality.
    pub fn evaluate(
        &mut self,
        model: NodeId,
        data: NodeId,
        label: &str,
        metric: EvalMetric,
    ) -> Result<NodeId> {
        self.dag.add_op(
            Arc::new(EvaluateOp {
                label: label.into(),
                metric,
            }),
            &[model, data],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::{Column, ColumnData};

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            Column::source(
                "t",
                "x",
                ColumnData::Float((0..50).map(f64::from).collect()),
            ),
            Column::source(
                "t",
                "y",
                ColumnData::Int((0..50).map(|i| i64::from(i >= 25)).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn chains_build_one_dag() {
        let mut s = Script::new();
        let data = s.load("t", frame());
        let filtered = s.filter(data, Predicate::gt_f("x", 5.0)).unwrap();
        let scaled = s.scale(filtered, ScaleKind::Standard, &["x"]).unwrap();
        let model = s
            .train_logistic(scaled, "y", LogisticParams::default())
            .unwrap();
        let score = s.evaluate(model, scaled, "y", EvalMetric::RocAuc).unwrap();
        s.output(score).unwrap();
        let dag = s.into_dag();
        assert_eq!(dag.n_nodes(), 5);
        assert_eq!(dag.terminals().len(), 1);
        assert_eq!(dag.sources().len(), 1);
    }

    #[test]
    fn identical_scripts_share_artifact_identities() {
        let build = || {
            let mut s = Script::new();
            let data = s.load("t", frame());
            let f = s.filter(data, Predicate::gt_f("x", 5.0)).unwrap();
            let m = s.train_logistic(f, "y", LogisticParams::default()).unwrap();
            s.output(m).unwrap();
            s.into_dag()
        };
        let a = build();
        let b = build();
        let ids_a: Vec<_> = a.nodes().iter().map(|n| n.artifact).collect();
        let ids_b: Vec<_> = b.nodes().iter().map(|n| n.artifact).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn modified_scripts_diverge_after_the_change() {
        let mut s1 = Script::new();
        let d1 = s1.load("t", frame());
        let f1 = s1.filter(d1, Predicate::gt_f("x", 5.0)).unwrap();
        let m1 = s1
            .train_logistic(f1, "y", LogisticParams::default())
            .unwrap();
        s1.output(m1).unwrap();

        let mut s2 = Script::new();
        let d2 = s2.load("t", frame());
        let f2 = s2.filter(d2, Predicate::gt_f("x", 5.0)).unwrap();
        let m2 = s2
            .train_logistic(
                f2,
                "y",
                LogisticParams {
                    lr: 0.01,
                    ..LogisticParams::default()
                },
            )
            .unwrap();
        s2.output(m2).unwrap();

        let a = s1.into_dag();
        let b = s2.into_dag();
        // Shared prefix: source and filter agree.
        assert_eq!(a.nodes()[f1.0].artifact, b.nodes()[f2.0].artifact);
        // Models differ (different hyperparameters).
        assert_ne!(a.nodes()[m1.0].artifact, b.nodes()[m2.0].artifact);
    }

    #[test]
    fn align_produces_two_nodes() {
        let mut s = Script::new();
        let a = s.load("a", frame());
        let b = s.load("b", frame());
        let (la, lb) = s.align(a, b).unwrap();
        assert_ne!(la, lb);
        s.output(la).unwrap();
        s.output(lb).unwrap();
        assert_eq!(s.dag().terminals().len(), 2);
    }
}
