//! Execution reports: what a workload run cost and where the time went.

/// The outcome of executing one (optimized) workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionReport {
    /// Wall-clock seconds spent actually running operations.
    pub compute_seconds: f64,
    /// Modelled seconds charged for loading reused artifacts from the
    /// Experiment Graph (see `CostModel` and DESIGN.md).
    pub load_seconds: f64,
    /// Seconds the server spent in the reuse planner (the paper's "reuse
    /// overhead", Figure 9(d)).
    pub optimizer_seconds: f64,
    /// Seconds the server spent in the materialization algorithm.
    pub materializer_seconds: f64,
    /// Operations executed.
    pub ops_executed: usize,
    /// Artifacts loaded from the Experiment Graph.
    pub artifacts_loaded: usize,
    /// Nodes skipped entirely (pruned, already computed, or hidden behind
    /// a load).
    pub nodes_skipped: usize,
    /// Training operations that were warmstarted.
    pub warmstarts: usize,
    /// Quality of the best model trained in this run (0 if none).
    pub best_model_quality: f64,
    /// Transient-failure retries performed by the executor.
    pub retries: usize,
    /// Planned loads that missed the store and were recovered by
    /// recomputing the subtree instead.
    pub load_misses_recovered: usize,
    /// Operation panics caught and isolated as structured errors.
    pub panics_caught: usize,
    /// Vertices from a *failed* run that were still merged into the
    /// Experiment Graph (0 for successful runs; set by the server).
    pub salvaged_artifacts: usize,
}

impl ExecutionReport {
    /// Total client-visible run time: compute + charged loads.
    #[must_use]
    pub fn run_seconds(&self) -> f64 {
        self.compute_seconds + self.load_seconds
    }

    /// Total including server-side overheads.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.run_seconds() + self.optimizer_seconds + self.materializer_seconds
    }

    /// Merge another report into this one (for cumulative scenario runs).
    pub fn accumulate(&mut self, other: &ExecutionReport) {
        self.compute_seconds += other.compute_seconds;
        self.load_seconds += other.load_seconds;
        self.optimizer_seconds += other.optimizer_seconds;
        self.materializer_seconds += other.materializer_seconds;
        self.ops_executed += other.ops_executed;
        self.artifacts_loaded += other.artifacts_loaded;
        self.nodes_skipped += other.nodes_skipped;
        self.warmstarts += other.warmstarts;
        self.best_model_quality = self.best_model_quality.max(other.best_model_quality);
        self.retries += other.retries;
        self.load_misses_recovered += other.load_misses_recovered;
        self.panics_caught += other.panics_caught;
        self.salvaged_artifacts += other.salvaged_artifacts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = ExecutionReport {
            compute_seconds: 1.0,
            load_seconds: 0.5,
            optimizer_seconds: 0.1,
            ops_executed: 3,
            best_model_quality: 0.7,
            ..ExecutionReport::default()
        };
        assert_eq!(a.run_seconds(), 1.5);
        assert!((a.total_seconds() - 1.6).abs() < 1e-12);
        let b = ExecutionReport {
            compute_seconds: 2.0,
            artifacts_loaded: 4,
            best_model_quality: 0.9,
            ..ExecutionReport::default()
        };
        a.accumulate(&b);
        assert_eq!(a.compute_seconds, 3.0);
        assert_eq!(a.artifacts_loaded, 4);
        assert_eq!(a.best_model_quality, 0.9);
    }
}
