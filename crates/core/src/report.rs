//! Execution reports: what a workload run cost and where the time went.

/// The outcome of executing one (optimized) workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionReport {
    /// Wall-clock seconds spent actually running operations.
    pub compute_seconds: f64,
    /// Modelled seconds charged for loading reused artifacts from the
    /// Experiment Graph (see `CostModel` and DESIGN.md).
    pub load_seconds: f64,
    /// Seconds the server spent in the reuse planner (the paper's "reuse
    /// overhead", Figure 9(d)).
    pub optimizer_seconds: f64,
    /// Seconds the server spent in the materialization algorithm.
    pub materializer_seconds: f64,
    /// Operations executed.
    pub ops_executed: usize,
    /// Artifacts loaded from the Experiment Graph.
    pub artifacts_loaded: usize,
    /// Nodes skipped entirely (pruned, already computed, or hidden behind
    /// a load).
    pub nodes_skipped: usize,
    /// Training operations that were warmstarted.
    pub warmstarts: usize,
    /// Quality of the best model trained in this run (0 if none).
    pub best_model_quality: f64,
    /// Transient-failure retries performed by the executor.
    pub retries: usize,
    /// Planned loads that missed the store and were recovered by
    /// recomputing the subtree instead.
    pub load_misses_recovered: usize,
    /// Operation panics caught and isolated as structured errors.
    pub panics_caught: usize,
    /// Vertices from a *failed* run that were still merged into the
    /// Experiment Graph (0 for successful runs; set by the server).
    pub salvaged_artifacts: usize,
}

impl ExecutionReport {
    /// Total client-visible run time: compute + charged loads.
    #[must_use]
    pub fn run_seconds(&self) -> f64 {
        self.compute_seconds + self.load_seconds
    }

    /// Total including server-side overheads.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.run_seconds() + self.optimizer_seconds + self.materializer_seconds
    }

    /// Merge another report into this one (for cumulative scenario runs).
    pub fn accumulate(&mut self, other: &ExecutionReport) {
        self.compute_seconds += other.compute_seconds;
        self.load_seconds += other.load_seconds;
        self.optimizer_seconds += other.optimizer_seconds;
        self.materializer_seconds += other.materializer_seconds;
        self.ops_executed += other.ops_executed;
        self.artifacts_loaded += other.artifacts_loaded;
        self.nodes_skipped += other.nodes_skipped;
        self.warmstarts += other.warmstarts;
        self.best_model_quality = self.best_model_quality.max(other.best_model_quality);
        self.retries += other.retries;
        self.load_misses_recovered += other.load_misses_recovered;
        self.panics_caught += other.panics_caught;
        self.salvaged_artifacts += other.salvaged_artifacts;
    }
}

/// What startup recovery found and repaired when a server was opened
/// from a data directory (see `OptimizerServer::open`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed and loaded (any shard's, on a
    /// sharded data directory).
    pub snapshot_loaded: bool,
    /// Journal records replayed on top of the snapshot.
    pub journal_records_replayed: usize,
    /// Sharded recovery only: journal records skipped because they were
    /// already inside a shard snapshot's watermark or belonged to a
    /// publish the commit log never committed (rolled back).
    pub journal_records_skipped: usize,
    /// Sharded recovery only: distinct committed publishes named by the
    /// cross-shard commit log.
    pub committed_publishes: usize,
    /// Whether a torn journal tail (crash mid-append) was detected and
    /// truncated.
    pub torn_tail_truncated: bool,
    /// Bytes discarded with the torn tail.
    pub torn_bytes_discarded: u64,
    /// Quarantine entries re-installed from persistence.
    pub quarantine_restored: usize,
    /// Orphaned `*.tmp` snapshot files (crash mid-save) removed.
    pub stray_tmp_removed: usize,
}

impl RecoveryReport {
    /// Human-readable one-paragraph summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.snapshot_loaded {
            "recovery: snapshot loaded"
        } else {
            "recovery: no snapshot (fresh graph)"
        });
        out.push_str(&format!(
            ", {} journal record(s) replayed",
            self.journal_records_replayed
        ));
        if self.journal_records_skipped > 0 {
            out.push_str(&format!(
                ", {} uncommitted/covered record(s) skipped",
                self.journal_records_skipped
            ));
        }
        if self.committed_publishes > 0 {
            out.push_str(&format!(
                ", {} committed publish(es)",
                self.committed_publishes
            ));
        }
        if self.torn_tail_truncated {
            out.push_str(&format!(
                ", torn tail truncated ({} byte(s) discarded)",
                self.torn_bytes_discarded
            ));
        }
        if self.quarantine_restored > 0 {
            out.push_str(&format!(
                ", {} quarantine entr(ies) restored",
                self.quarantine_restored
            ));
        }
        if self.stray_tmp_removed > 0 {
            out.push_str(&format!(
                ", {} stray temp file(s) removed",
                self.stray_tmp_removed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_report_renders_what_happened() {
        let fresh = RecoveryReport::default();
        assert!(fresh.render().contains("fresh graph"));
        let busy = RecoveryReport {
            snapshot_loaded: true,
            journal_records_replayed: 4,
            journal_records_skipped: 2,
            committed_publishes: 3,
            torn_tail_truncated: true,
            torn_bytes_discarded: 17,
            quarantine_restored: 1,
            stray_tmp_removed: 2,
        };
        let text = busy.render();
        assert!(text.contains("snapshot loaded"));
        assert!(text.contains("4 journal record"));
        assert!(text.contains("2 uncommitted"));
        assert!(text.contains("3 committed publish"));
        assert!(text.contains("torn tail"));
        assert!(text.contains("17 byte"));
        assert!(text.contains("quarantine"));
        assert!(text.contains("temp file"));
    }

    #[test]
    fn totals_and_accumulation() {
        let mut a = ExecutionReport {
            compute_seconds: 1.0,
            load_seconds: 0.5,
            optimizer_seconds: 0.1,
            ops_executed: 3,
            best_model_quality: 0.7,
            ..ExecutionReport::default()
        };
        assert_eq!(a.run_seconds(), 1.5);
        assert!((a.total_seconds() - 1.6).abs() < 1e-12);
        let b = ExecutionReport {
            compute_seconds: 2.0,
            artifacts_loaded: 4,
            best_model_quality: 0.9,
            ..ExecutionReport::default()
        };
        a.accumulate(&b);
        assert_eq!(a.compute_seconds, 3.0);
        assert_eq!(a.artifacts_loaded, 4);
        assert_eq!(a.best_model_quality, 0.9);
    }
}
