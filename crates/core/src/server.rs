//! The server: one shared Experiment Graph, an optimizer, and an updater
//! (paper Figure 2). [`OptimizerServer::run_workload`] drives a whole
//! client/server round trip as a staged pipeline with typed hand-offs
//! (`PrunedWorkload → PlannedWorkload → ExecutedWorkload`, see
//! [`crate::pipeline`]): prune (no lock) → plan + snapshot (read lock) →
//! execute (lock-free) → update + materialize + stats baseline (one
//! write-lock critical section). No Experiment Graph lock is ever held
//! while an `Operation::run` executes.
//!
//! With [`ServerConfig::shards`] > 1 the Experiment Graph is partitioned
//! into lock shards (`co_graph::shard`): planning takes every shard's
//! read lock and serves through an [`EgView`], while publishing locks
//! only the shards a workload touches — in ascending shard order, so two
//! publishers can never deadlock — and journals each shard's delta
//! separately, sealed by a cross-shard commit record (DESIGN.md §14).

use crate::cost::CostModel;
use crate::executor::{self, ExecutorConfig};
use crate::failure::{Quarantine, RetryPolicy, WorkloadError};
use crate::materialize::{
    AllMaterializer, GreedyMaterializer, HelixMaterializer, Materializer, NoneMaterializer,
    StorageAwareMaterializer,
};
use crate::optimizer::{AllMaterializedReuse, HelixReuse, LinearReuse, NoReuse, ReusePlanner};
use crate::pipeline::{ExecutedWorkload, FailedExecution, PlannedWorkload, PrunedWorkload};
use crate::report::{ExecutionReport, RecoveryReport};
use co_graph::journal::{self, EgDelta, FsyncPolicy, Journal, QuarantineEntry, VertexTouch};
use co_graph::shard::{self, ShardedEg};
use co_graph::{
    snapshot, ArtifactId, ColdStore, CommitLog, CommitRecord, CrashPoint, EgView, ExperimentGraph,
    FaultInjector, GraphError, OpHash, OpRef, Result, ScrubOutcome, Value, WorkloadDag,
};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which materialization algorithm the updater runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaterializerKind {
    /// Storage-aware with column dedup (`SA`, the paper's default).
    StorageAware,
    /// ML-based greedy with nominal sizes (`HM`).
    Greedy,
    /// Greedy with an artifact-count cap (Figure 8(b)'s one-artifact
    /// budget).
    GreedyCapped(usize),
    /// The Helix baseline (`HL`).
    Helix,
    /// Materialize everything (`ALL`).
    All,
    /// Materialize nothing (`KG` baseline).
    None,
}

/// Which reuse planner the optimizer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseKind {
    /// Linear-time forward/backward (`LN`, the paper's algorithm).
    Linear,
    /// Helix PSP + max-flow (`HL`).
    Helix,
    /// Load every materialized artifact (`ALL_M`).
    AllMaterialized,
    /// Recompute everything (`ALL_C` / `KG`).
    None,
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Storage budget in bytes.
    pub budget: u64,
    /// Quality-vs-cost weight `α` (paper default 0.5).
    pub alpha: f64,
    /// Materialization algorithm.
    pub materializer: MaterializerKind,
    /// Reuse planner.
    pub reuse: ReuseKind,
    /// Load-cost model.
    pub cost: CostModel,
    /// Warmstart training operations.
    pub warmstart: bool,
    /// Retry policy for transient operation failures.
    pub retry: RetryPolicy,
    /// Quarantine operations after this many consecutive permanent
    /// failures (`None` disables the quarantine).
    pub quarantine_after: Option<usize>,
    /// Worker threads for the dataframe kernels (join, group-by, map,
    /// filter, encode). `None` keeps the dataframe layer's own resolution:
    /// the `CO_DF_THREADS` environment variable if set, else the machine's
    /// available parallelism. The kernels are bit-identical for any thread
    /// count, so this is purely a throughput/footprint knob.
    pub df_threads: Option<usize>,
    /// Experiment Graph lock shards. `1` (the default) is the classic
    /// single-graph server with bit-identical behavior; larger values
    /// partition vertices by artifact hash so publishers touching
    /// disjoint shards commit concurrently. At shards > 1 the budgeted
    /// materializers degrade to a first-fit scope over the publishing
    /// workload (DESIGN.md §14).
    pub shards: usize,
}

impl ServerConfig {
    /// The paper's default configuration: storage-aware materialization,
    /// linear reuse, α = 0.5, in-memory EG, no warmstarting.
    #[must_use]
    pub fn collaborative(budget: u64) -> Self {
        ServerConfig {
            budget,
            alpha: 0.5,
            materializer: MaterializerKind::StorageAware,
            reuse: ReuseKind::Linear,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
            shards: 1,
        }
    }

    /// The `KG` baseline: no storage, no reuse — every workload runs from
    /// scratch.
    #[must_use]
    pub fn baseline() -> Self {
        ServerConfig {
            budget: 0,
            alpha: 0.5,
            materializer: MaterializerKind::None,
            reuse: ReuseKind::None,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
            shards: 1,
        }
    }

    /// The Helix comparison system: Helix materializer + Helix reuse.
    #[must_use]
    pub fn helix(budget: u64) -> Self {
        ServerConfig {
            budget,
            alpha: 0.5,
            materializer: MaterializerKind::Helix,
            reuse: ReuseKind::Helix,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
            shards: 1,
        }
    }
}

/// Where and how the Experiment Graph is made crash-safe (see
/// DESIGN.md §10 and §14). At `shards = 1` the data directory holds one
/// snapshot (`eg.egsnap`, written atomically) and one write-ahead
/// journal (`eg.wal`, appended inside the publish critical section). At
/// `shards = N` it holds one snapshot + journal pair per shard
/// (`eg-k.egsnap` / `eg-k.wal`) plus the cross-shard commit log
/// (`eg.commit`). The two layouts are mutually exclusive; opening a
/// directory with the wrong shard count is an error, not silent
/// misrouting.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Data directory; created on open if missing.
    pub dir: PathBuf,
    /// When journal appends reach the disk.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + truncate the journal) once the journal — any
    /// one shard's journal, when sharded — exceeds this many bytes.
    pub compact_journal_bytes: u64,
    /// Mirror materialized dataset artifacts into per-artifact cold
    /// column files (`cold/cold-<id>.col`, CRC-framed) so the
    /// background scrubber can verify them and self-heal bit rot from
    /// lineage. Off by default: the data directory stays bit-identical
    /// to the pre-cold layout.
    pub cold_columns: bool,
    /// How many *consecutive* failed repair attempts (explicit
    /// [`OptimizerServer::try_repair`] calls or the service front-end's
    /// background repair loop) wedge the durability layer permanently.
    /// Publish-entry opportunistic repairs never count toward this
    /// limit — a publish storm during a disk outage must not wedge a
    /// server that would have recovered.
    pub max_repair_attempts: usize,
}

impl DurabilityConfig {
    /// Durability in `dir` with the safe defaults: fsync every append,
    /// compact past 4 MiB of journal, no cold column files, wedge after
    /// 8 consecutive failed repairs.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            compact_journal_bytes: 4 * 1024 * 1024,
            cold_columns: false,
            max_repair_attempts: 8,
        }
    }

    /// Directory holding the cold column files.
    #[must_use]
    pub fn cold_dir(&self) -> PathBuf {
        self.dir.join("cold")
    }

    /// Path of the snapshot file (single-shard layout).
    #[must_use]
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("eg.egsnap")
    }

    /// Path of the write-ahead journal (single-shard layout).
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("eg.wal")
    }
}

const WEDGED_MSG: &str = "durability layer wedged after repeated failed repair attempts; \
     restart the server from its data directory";

/// Backoff hint handed to rejected publishers while the durability
/// layer is read-only (also the publish-entry repair throttle).
pub const READ_ONLY_RETRY_HINT_MS: u64 = 250;

/// Health of the durability layer — the graded replacement for the old
/// binary wedge (DESIGN.md §15).
///
/// `Healthy → ReadOnly` on any persistence failure that leaves memory
/// ahead of disk: the failed publish's delta moves to an in-memory
/// backlog, reads/reuse/warm-starts keep serving, and only publishes
/// are rejected — retriably, with [`GraphError::ReadOnly`]. Repair
/// (reopen the journals, truncate torn tails, drop stray temp files,
/// re-append the backlog) returns the layer to `Healthy`;
/// [`DurabilityConfig::max_repair_attempts`] consecutive failed repairs
/// degrade it to `Wedged`, the only permanent state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityHealth {
    /// Disk and memory agree; publishes persist normally.
    #[default]
    Healthy,
    /// A persistence failure left memory ahead of disk; publishes are
    /// rejected retriably until repair drains the backlog.
    ReadOnly,
    /// Repair failed repeatedly; only a restart from the data
    /// directory recovers.
    Wedged,
}

impl DurabilityHealth {
    /// Stable lowercase name (operator dashboards, stats wire codec).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DurabilityHealth::Healthy => "healthy",
            DurabilityHealth::ReadOnly => "read-only",
            DurabilityHealth::Wedged => "wedged",
        }
    }

    /// Numeric code for wire encodings: 0 healthy, 1 read-only, 2 wedged.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        match self {
            DurabilityHealth::Healthy => 0,
            DurabilityHealth::ReadOnly => 1,
            DurabilityHealth::Wedged => 2,
        }
    }

    /// Inverse of [`as_u64`](DurabilityHealth::as_u64); unknown codes
    /// conservatively decode as `Wedged`.
    #[must_use]
    pub fn from_u64(code: u64) -> Self {
        match code {
            0 => DurabilityHealth::Healthy,
            1 => DurabilityHealth::ReadOnly,
            _ => DurabilityHealth::Wedged,
        }
    }
}

/// Whether a persist error is an injected *crash* (the crash-matrix
/// tests' "process died here" simulation) rather than a live I/O
/// failure. A simulated crash wedges immediately — the process is
/// notionally gone, so in-place repair would be cheating — while every
/// real or injected I/O failure takes the ReadOnly + repair path.
fn is_simulated_crash(e: &GraphError) -> bool {
    matches!(e, GraphError::Io(msg) if msg.contains("injected crash at"))
}

/// Mutable durability state of the single-shard layout, locked *after*
/// the EG write lock (lock order: eg → durability → stats).
struct DurabilityState {
    config: DurabilityConfig,
    journal: Journal,
    /// Quarantine entries as last persisted (op_hash → failures) — the
    /// baseline the publish path diffs against to emit Q+/Q- records.
    persisted_quarantine: HashMap<OpHash, usize>,
    /// Graded health: a failed journal append no longer wedges the
    /// server — the delta joins `backlog`, the layer turns read-only,
    /// and repair re-appends once the disk recovers.
    health: DurabilityHealth,
    /// Deltas that are live in memory but not yet durable, in append
    /// order. Drained (front first) by a successful repair.
    backlog: Vec<EgDelta>,
    /// Consecutive failed counted repair attempts (see
    /// [`DurabilityConfig::max_repair_attempts`]).
    repair_attempts: usize,
}

/// One cross-shard publish awaiting re-append: its per-shard deltas
/// (ascending shard order), the commit record that seals it, and the
/// persisted-quarantine map to install once it lands.
struct ShardedBacklog {
    deltas: Vec<(usize, EgDelta)>,
    record: CommitRecord,
    quarantine: Option<HashMap<OpHash, usize>>,
}

/// Durability state of the sharded layout. Lock order within a publish:
/// shard write locks (ascending) → `persisted_quarantine` → per-shard
/// journal mutexes (ascending) → commit-log mutex → stats. The
/// `backlog` mutex is only ever taken with none of those held (the
/// publish path drops the quarantine guard before backlogging; repair
/// holds `backlog` outermost and takes the others transiently).
struct ShardedDurability {
    config: DurabilityConfig,
    /// One write-ahead journal per shard.
    journals: Vec<parking_lot::Mutex<Journal>>,
    /// The cross-shard commit log: a publish is committed iff its
    /// sequence number appears here. Always locked last.
    commit: parking_lot::Mutex<CommitLog>,
    /// Quarantine entries as last durably persisted. Advanced only
    /// after the commit record lands, so recovery's view matches.
    persisted_quarantine: parking_lot::Mutex<HashMap<OpHash, usize>>,
    /// Sharded analogue of [`DurabilityState::health`] (the
    /// [`DurabilityHealth::as_u64`] code, narrowed to u8).
    health: AtomicU8,
    /// Sharded analogue of [`DurabilityState::backlog`]. Entries may
    /// arrive out of sequence under concurrent failing publishers;
    /// repair sorts by sequence number before draining.
    backlog: parking_lot::Mutex<Vec<ShardedBacklog>>,
    /// Consecutive failed counted repair attempts.
    repair_attempts: AtomicUsize,
    /// Last assigned publish sequence number. Incremented only while
    /// the touched shards' write locks are held, so every shard journal
    /// sees its subset of sequence numbers in increasing order.
    seq: AtomicU64,
}

impl ShardedDurability {
    fn health(&self) -> DurabilityHealth {
        DurabilityHealth::from_u64(u64::from(self.health.load(Ordering::SeqCst)))
    }

    fn set_health(&self, health: DurabilityHealth) {
        #[allow(clippy::cast_possible_truncation)]
        // lint:reason health states fit in a u8 by definition
        self.health.store(health.as_u64() as u8, Ordering::SeqCst);
    }
}

/// Which durability layout the server persists with — decided by
/// `ServerConfig::shards` at open time.
enum Durability {
    Legacy(parking_lot::Mutex<DurabilityState>),
    Sharded(ShardedDurability),
}

/// Cumulative statistics over a server's lifetime — the dashboard
/// counters of the motivating example ("saves hundreds of hours of
/// execution time ... reduces the required resources and operation cost
/// of Kaggle").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Workloads served.
    pub workloads: usize,
    /// Operations actually executed across all workloads.
    pub ops_executed: usize,
    /// Artifacts served from the Experiment Graph.
    pub artifacts_loaded: usize,
    /// Training operations warmstarted.
    pub warmstarts: usize,
    /// Total client-visible run time (compute + charged loads), seconds.
    pub run_seconds: f64,
    /// Estimated time the same submissions would have cost with no reuse
    /// at all, seconds (from the Experiment Graph's recorded compute
    /// times).
    pub baseline_seconds: f64,
    /// Workloads that terminated with an error.
    pub failed_workloads: usize,
    /// Vertices salvaged into the Experiment Graph from failed runs.
    pub salvaged_artifacts: usize,
    /// Journal records replayed during startup recovery.
    pub journal_records_replayed: usize,
    /// Torn journal tails detected and truncated during recovery.
    pub torn_tail_truncated: usize,
    /// Snapshot compactions performed (explicit or threshold-triggered).
    pub snapshots_compacted: usize,
    /// Durability health at the moment of the stats read —
    /// [`DurabilityHealth::as_u64`] (0 healthy, 1 read-only, 2 wedged).
    /// Overwritten from the authoritative state by
    /// [`OptimizerServer::stats`], never summed.
    pub durability_health: u64,
    /// Repair attempts made over the server's lifetime (counted and
    /// opportunistic alike).
    pub repair_attempts: usize,
    /// Repairs that returned the durability layer to `Healthy`.
    pub repairs_succeeded: usize,
    /// Publishes rejected retriably while the layer was read-only.
    pub publishes_rejected_readonly: usize,
    /// Cold column files whose CRCs the scrubber verified.
    pub scrub_checked: usize,
    /// Corrupt cold files healed by lineage-based recomputation.
    pub scrub_healed: usize,
    /// Corrupt cold files quarantined as unrecoverable.
    pub scrub_quarantined: usize,
}

impl ServerStats {
    /// Estimated seconds saved by the optimizer so far.
    #[must_use]
    pub fn seconds_saved(&self) -> f64 {
        (self.baseline_seconds - self.run_seconds).max(0.0)
    }

    /// Fold another counter set into this one (per-shard sub-counters
    /// are summed on read).
    fn add(&mut self, other: &ServerStats) {
        self.workloads += other.workloads;
        self.ops_executed += other.ops_executed;
        self.artifacts_loaded += other.artifacts_loaded;
        self.warmstarts += other.warmstarts;
        self.run_seconds += other.run_seconds;
        self.baseline_seconds += other.baseline_seconds;
        self.failed_workloads += other.failed_workloads;
        self.salvaged_artifacts += other.salvaged_artifacts;
        self.journal_records_replayed += other.journal_records_replayed;
        self.torn_tail_truncated += other.torn_tail_truncated;
        self.snapshots_compacted += other.snapshots_compacted;
        self.durability_health = self.durability_health.max(other.durability_health);
        self.repair_attempts += other.repair_attempts;
        self.repairs_succeeded += other.repairs_succeeded;
        self.publishes_rejected_readonly += other.publishes_rejected_readonly;
        self.scrub_checked += other.scrub_checked;
        self.scrub_healed += other.scrub_healed;
        self.scrub_quarantined += other.scrub_quarantined;
    }

    /// Record one published workload's contribution. Runs inside the
    /// publish critical section (under the shard write locks), so a
    /// concurrent [`OptimizerServer::stats`] reader can never observe a
    /// graph state ahead of the counters.
    fn fold_publish(
        &mut self,
        report: &ExecutionReport,
        baseline: f64,
        failure: Option<&FailedExecution>,
        persist_failed: bool,
    ) {
        match (failure, persist_failed) {
            (None, false) => {
                self.workloads += 1;
                self.ops_executed += report.ops_executed;
                self.artifacts_loaded += report.artifacts_loaded;
                self.warmstarts += report.warmstarts;
                self.run_seconds += report.run_seconds();
                self.baseline_seconds += baseline;
            }
            (None, true) => {
                self.failed_workloads += 1;
            }
            (Some(f), _) => {
                self.failed_workloads += 1;
                self.salvaged_artifacts += f.completed.len();
            }
        }
    }
}

/// The collaborative optimizer server.
pub struct OptimizerServer {
    eg: ShardedEg,
    config: ServerConfig,
    materializer: Box<dyn Materializer>,
    planner: Box<dyn ReusePlanner>,
    /// One sub-counter set per shard, updated inside the publish
    /// critical section under the lowest touched shard's lock and
    /// summed on read.
    stats: Vec<parking_lot::Mutex<ServerStats>>,
    quarantine: Option<Arc<Quarantine>>,
    durability: Option<Durability>,
    /// Cold column store — `Some` iff durable with
    /// [`DurabilityConfig::cold_columns`] on.
    cold: Option<ColdStore>,
    /// Lineage registry for the scrubber: artifact → (producing op,
    /// ordered parents), captured at publish time. Only populated when
    /// the cold store is on.
    recipes: parking_lot::Mutex<HashMap<ArtifactId, Recipe>>,
    /// Publish-entry opportunistic repairs are throttled through this
    /// timestamp so a publish storm does not hammer a dead disk.
    repair_throttle: parking_lot::Mutex<Option<Instant>>,
}

/// Lineage needed to recompute one artifact: the producing operation
/// and its ordered parent artifacts.
#[derive(Clone)]
struct Recipe {
    op: OpRef,
    parents: Vec<ArtifactId>,
}

impl OptimizerServer {
    /// Create a server. The Experiment Graph store deduplicates columns
    /// iff the configured materializer is storage-aware; with
    /// `config.shards > 1` the graph is partitioned into that many lock
    /// shards sharing one column vault.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        let dedup = config.materializer == MaterializerKind::StorageAware;
        OptimizerServer::build(config, ShardedEg::new(config.shards.max(1), dedup))
    }

    /// Assemble a server around the given sharded graph (shared by
    /// [`new`], [`with_graph`] and [`open`]).
    ///
    /// [`new`]: OptimizerServer::new
    /// [`with_graph`]: OptimizerServer::with_graph
    /// [`open`]: OptimizerServer::open
    fn build(mut config: ServerConfig, eg: ShardedEg) -> Self {
        config.shards = eg.n_shards();
        if let Some(n) = config.df_threads {
            // Process-wide: the dataframe kernels' outputs are identical
            // for any thread count, so late application by a second server
            // only changes throughput, never results.
            co_dataframe::par::set_threads(n);
        }
        let materializer: Box<dyn Materializer> = match config.materializer {
            MaterializerKind::StorageAware => Box::new(StorageAwareMaterializer {
                budget: config.budget,
                alpha: config.alpha,
            }),
            MaterializerKind::Greedy => Box::new(GreedyMaterializer {
                budget: config.budget,
                alpha: config.alpha,
                max_artifacts: None,
            }),
            MaterializerKind::GreedyCapped(n) => Box::new(GreedyMaterializer {
                budget: config.budget,
                alpha: config.alpha,
                max_artifacts: Some(n),
            }),
            MaterializerKind::Helix => Box::new(HelixMaterializer {
                budget: config.budget,
            }),
            MaterializerKind::All => Box::new(AllMaterializer),
            MaterializerKind::None => Box::new(NoneMaterializer),
        };
        let planner: Box<dyn ReusePlanner> = match config.reuse {
            ReuseKind::Linear => Box::new(LinearReuse),
            ReuseKind::Helix => Box::new(HelixReuse),
            ReuseKind::AllMaterialized => Box::new(AllMaterializedReuse),
            ReuseKind::None => Box::new(NoReuse),
        };
        let stats = (0..eg.n_shards())
            .map(|_| parking_lot::Mutex::new(ServerStats::default()))
            .collect();
        OptimizerServer {
            quarantine: config
                .quarantine_after
                .map(|k| Arc::new(Quarantine::new(k))),
            eg,
            config,
            materializer,
            planner,
            stats,
            durability: None,
            cold: None,
            recipes: parking_lot::Mutex::new(HashMap::new()),
            repair_throttle: parking_lot::Mutex::new(None),
        }
    }

    /// Create a server around an existing Experiment Graph — e.g. one
    /// restored from a meta-data snapshot (`co_graph::snapshot`) after a
    /// restart. Always single-shard: an externally built graph has no
    /// shard partition.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidStructure`] when `config.shards > 1`
    /// (partition an existing directory via [`open`] instead), or when
    /// the restored graph's store deduplication mode does not match the
    /// configured materializer: the storage-aware algorithm budgets
    /// *deduplicated* bytes, every other materializer budgets nominal
    /// bytes, so a mismatch silently mis-accounts the storage budget.
    ///
    /// [`open`]: OptimizerServer::open
    pub fn with_graph(config: ServerConfig, eg: ExperimentGraph) -> Result<Self> {
        if config.shards > 1 {
            return Err(GraphError::InvalidStructure(format!(
                "with_graph builds a single-shard server but config.shards = {}",
                config.shards
            )));
        }
        let dedup = config.materializer == MaterializerKind::StorageAware;
        if eg.storage().dedup_enabled() != dedup {
            return Err(GraphError::InvalidStructure(format!(
                "experiment graph store dedup={} but the {:?} materializer requires dedup={}",
                eg.storage().dedup_enabled(),
                config.materializer,
                dedup
            )));
        }
        Ok(OptimizerServer::build(
            config,
            ShardedEg::from_graphs(vec![eg], None),
        ))
    }

    /// Open a crash-safe server from a data directory: remove orphaned
    /// temp files, load the newest valid snapshot(s), replay the
    /// journal(s) on top (truncating torn tails instead of failing),
    /// re-install the persisted quarantine set, and start journaling
    /// committed workloads. Returns the server and a [`RecoveryReport`]
    /// describing what recovery found and repaired.
    ///
    /// With `config.shards > 1` the directory uses the sharded layout
    /// (`eg-k.egsnap` / `eg-k.wal` / `eg.commit`) and recovery
    /// reconstructs exactly the committed prefix: per-shard journal
    /// records whose publish never reached the commit log are skipped,
    /// so a crash between two shards' appends rolls the whole publish
    /// back. Opening a directory whose on-disk layout disagrees with
    /// `config.shards` is an error.
    pub fn open(
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        co_graph::vfs::create_dir_all(&durability.dir, None).map_err(|e| {
            GraphError::Io(format!(
                "cannot create data directory {}: {e}",
                durability.dir.display()
            ))
        })?;
        let mut recovery = RecoveryReport::default();

        // A crash mid-save leaves `*.tmp` files behind; an interrupted
        // save never touches the live snapshot or journal, so these are
        // safe to discard.
        if let Ok(entries) = co_graph::vfs::read_dir_sorted(&durability.dir, None) {
            for path in entries {
                if path.to_string_lossy().ends_with(".tmp")
                    && co_graph::vfs::remove_file(&path, None).is_ok()
                {
                    recovery.stray_tmp_removed += 1;
                }
            }
        }

        let dedup = config.materializer == MaterializerKind::StorageAware;
        if config.shards.max(1) == 1 {
            if let Some(found) = co_graph::fsck::detect_shard_layout(&durability.dir) {
                return Err(GraphError::InvalidStructure(format!(
                    "data directory {} holds a sharded layout ({found} shards); \
                     open it with config.shards = {found}",
                    durability.dir.display()
                )));
            }
            OptimizerServer::open_single(config, durability, dedup, recovery)
        } else {
            if durability.snapshot_path().exists() || durability.journal_path().exists() {
                return Err(GraphError::InvalidStructure(format!(
                    "data directory {} holds a single-graph layout (eg.egsnap/eg.wal); \
                     open it with config.shards = 1",
                    durability.dir.display()
                )));
            }
            if let Some(found) = co_graph::fsck::detect_shard_layout(&durability.dir) {
                if found != config.shards {
                    return Err(GraphError::InvalidStructure(format!(
                        "data directory {} is sharded {found} ways but the server is \
                         configured for {} shards",
                        durability.dir.display(),
                        config.shards
                    )));
                }
            }
            OptimizerServer::open_sharded(config, durability, dedup, recovery)
        }
    }

    /// The single-shard (`shards = 1`) half of [`open`]: one snapshot,
    /// one journal, byte-identical to the pre-sharding format.
    ///
    /// [`open`]: OptimizerServer::open
    fn open_single(
        config: ServerConfig,
        durability: DurabilityConfig,
        dedup: bool,
        mut recovery: RecoveryReport,
    ) -> Result<(Self, RecoveryReport)> {
        let snapshot_path = durability.snapshot_path();
        let (mut eg, mut qmap) = if snapshot_path.exists() {
            let restored = snapshot::load_full(&snapshot_path, dedup)?;
            recovery.snapshot_loaded = true;
            let qmap: HashMap<OpHash, (String, usize)> = restored
                .quarantine
                .into_iter()
                .map(|q| (q.op_hash, (q.name, q.failures)))
                .collect();
            (restored.graph, qmap)
        } else {
            (ExperimentGraph::new(dedup), HashMap::new())
        };

        let journal_path = durability.journal_path();
        let outcome = journal::replay(&journal_path)?;
        for delta in &outcome.deltas {
            delta.apply(&mut eg)?;
            for q in &delta.quarantine_set {
                qmap.insert(q.op_hash, (q.name.clone(), q.failures));
            }
            for h in &delta.quarantine_cleared {
                qmap.remove(h);
            }
        }
        recovery.journal_records_replayed = outcome.deltas.len();
        if let Some(valid_len) = outcome.torn_at {
            journal::truncate(&journal_path, valid_len)?;
            recovery.torn_tail_truncated = true;
            recovery.torn_bytes_discarded = outcome.bytes_discarded;
        }

        // In debug builds, fsck the recovered graph before serving from
        // it: recovery bugs surface here, not workloads later.
        #[cfg(debug_assertions)]
        {
            let fsck = co_graph::fsck::check_graph(&eg);
            debug_assert!(fsck.is_clean(), "post-recovery fsck failed:\n{fsck}");
        }

        let journal = Journal::open(&journal_path, durability.fsync)?;
        let cold = durability
            .cold_columns
            .then(|| ColdStore::open(&durability.cold_dir()))
            .transpose()?;
        let state = DurabilityState {
            config: durability,
            journal,
            persisted_quarantine: qmap.iter().map(|(op, (_, f))| (*op, *f)).collect(),
            health: DurabilityHealth::Healthy,
            backlog: Vec::new(),
            repair_attempts: 0,
        };
        let mut server = OptimizerServer::build(config, ShardedEg::from_graphs(vec![eg], None));
        server.cold = cold;
        if let Some(quarantine) = &server.quarantine {
            for (op, (name, failures)) in &qmap {
                quarantine.restore(*op, name, *failures);
            }
            recovery.quarantine_restored = qmap.len();
        }
        server.durability = Some(Durability::Legacy(parking_lot::Mutex::new(state)));
        {
            let mut stats = server.stats[0].lock();
            stats.journal_records_replayed = recovery.journal_records_replayed;
            stats.torn_tail_truncated = usize::from(recovery.torn_tail_truncated);
        }
        Ok((server, recovery))
    }

    /// The sharded (`shards = N`) half of [`open`]: N snapshot/journal
    /// pairs plus the commit log, replayed to exactly the committed
    /// prefix by `co_graph::shard::recover_shards`.
    ///
    /// [`open`]: OptimizerServer::open
    fn open_sharded(
        config: ServerConfig,
        durability: DurabilityConfig,
        dedup: bool,
        mut recovery: RecoveryReport,
    ) -> Result<(Self, RecoveryReport)> {
        let n = config.shards;
        let rec = shard::recover_shards(&durability.dir, n, dedup)?;
        if !rec.unresolved_links.is_empty() {
            return Err(GraphError::InvalidStructure(format!(
                "sharded recovery left {} cross-shard child link(s) unresolved — \
                 the data directory is corrupt (run egfsck)",
                rec.unresolved_links.len()
            )));
        }
        for (path, valid_len, _) in &rec.torn {
            journal::truncate(path, *valid_len)?;
        }
        recovery.snapshot_loaded =
            (0..n).any(|k| durability.dir.join(shard::shard_snapshot_file(k)).exists());
        recovery.journal_records_replayed = rec.deltas_applied;
        recovery.journal_records_skipped = rec.deltas_skipped;
        recovery.committed_publishes = rec.committed_publishes;
        recovery.torn_tail_truncated = !rec.torn.is_empty();
        recovery.torn_bytes_discarded = rec.torn.iter().map(|(.., b)| *b).sum();

        // In debug builds, fsck the recovered shards before serving.
        #[cfg(debug_assertions)]
        {
            let refs: Vec<&ExperimentGraph> = rec.graphs.iter().collect();
            let fsck = co_graph::fsck::check_shards(&refs, &rec.quarantine);
            debug_assert!(fsck.is_clean(), "post-recovery fsck failed:\n{fsck}");
        }

        let journals = (0..n)
            .map(|k| {
                Journal::open(
                    &durability.dir.join(shard::shard_journal_file(k)),
                    durability.fsync,
                )
                .map(parking_lot::Mutex::new)
            })
            .collect::<Result<Vec<_>>>()?;
        let commit = CommitLog::open(&durability.dir.join(shard::COMMIT_FILE))?;

        let qmap: HashMap<OpHash, (String, usize)> = rec
            .quarantine
            .iter()
            .map(|q| (q.op_hash, (q.name.clone(), q.failures)))
            .collect();
        let cold = durability
            .cold_columns
            .then(|| ColdStore::open(&durability.cold_dir()))
            .transpose()?;
        let sharded = ShardedDurability {
            config: durability,
            journals,
            commit: parking_lot::Mutex::new(commit),
            persisted_quarantine: parking_lot::Mutex::new(
                qmap.iter().map(|(op, (_, f))| (*op, *f)).collect(),
            ),
            health: AtomicU8::new(0),
            backlog: parking_lot::Mutex::new(Vec::new()),
            repair_attempts: AtomicUsize::new(0),
            seq: AtomicU64::new(rec.max_seq),
        };
        let torn_tails = rec.torn.len();
        let mut server =
            OptimizerServer::build(config, ShardedEg::from_graphs(rec.graphs, rec.vault));
        server.cold = cold;
        if let Some(quarantine) = &server.quarantine {
            for (op, (name, failures)) in &qmap {
                quarantine.restore(*op, name, *failures);
            }
            recovery.quarantine_restored = qmap.len();
        }
        server.durability = Some(Durability::Sharded(sharded));
        {
            let mut stats = server.stats[0].lock();
            stats.journal_records_replayed = recovery.journal_records_replayed;
            stats.torn_tail_truncated = torn_tails;
        }
        Ok((server, recovery))
    }

    /// The active configuration (`shards` normalized to ≥ 1).
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Run one workload end to end by composing the pipeline stages
    /// ([`plan_workload`] → [`PlannedWorkload::execute`] →
    /// [`publish_workload`]). Returns the executed DAG (terminal values
    /// populated) and the execution report.
    ///
    /// [`plan_workload`]: OptimizerServer::plan_workload
    /// [`publish_workload`]: OptimizerServer::publish_workload
    ///
    /// On failure the returned [`WorkloadError`] still carries the
    /// report and the taint mask, and the server has already *salvaged*
    /// the successfully computed prefix: untainted vertices are merged
    /// into the Experiment Graph and offered to the materializer, so a
    /// resubmission of the same (or an overlapping) workload reuses them
    /// instead of recomputing.
    pub fn run_workload(
        &self,
        dag: WorkloadDag,
    ) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
        // Stage 1 (client, no lock): local pruning.
        let pruned = PrunedWorkload::new(dag)?;
        // Stage 2 (server, read lock): reuse planning + snapshot.
        let planned = self.plan_workload(pruned)?;
        // Stage 3 (client, lock-free): execution against the snapshot.
        let executed = planned.execute(&self.executor_config());
        // Stage 4 (server, one write-lock critical section): publish.
        self.publish_workload(executed)
    }

    /// The executor configuration derived from the server's.
    #[must_use]
    pub fn executor_config(&self) -> ExecutorConfig {
        ExecutorConfig {
            cost: self.config.cost,
            warmstart: self.config.warmstart,
            retry: self.config.retry,
            quarantine: self.quarantine.clone(),
        }
    }

    /// The executor configuration with a per-request time budget folded
    /// into the retry policy: the effective workload deadline is the
    /// tighter of the server's configured deadline and `remaining`. The
    /// service front-end (`co-serve`) uses this to propagate a client's
    /// request deadline into execution, so a slow workload cannot hold a
    /// worker thread past the client's budget.
    #[must_use]
    pub fn executor_config_with_deadline(
        &self,
        remaining: Option<std::time::Duration>,
    ) -> ExecutorConfig {
        let mut config = self.executor_config();
        config.retry.workload_deadline = match (config.retry.workload_deadline, remaining) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => b.or(a),
        };
        config
    }

    /// Pipeline stage 2 (paper step 3): plan reuse against the Experiment
    /// Graph and capture the execution snapshot — planned loads fetched
    /// up front as Arc clones, warmstart candidates prefetched. The EG
    /// read lock (every shard's, when sharded) is held only for the
    /// duration of this call; the returned [`PlannedWorkload`] executes
    /// without touching the graph.
    pub fn plan_workload(
        &self,
        pruned: PrunedWorkload,
    ) -> std::result::Result<PlannedWorkload, WorkloadError> {
        let PrunedWorkload { dag } = pruned;
        if self.eg.n_shards() == 1 {
            let eg = self.eg.read(0);
            let start = Instant::now();
            let plan = self.planner.plan(&dag, &*eg, &self.config.cost);
            let optimizer_seconds = start.elapsed().as_secs_f64();
            let snapshot = executor::snapshot(&dag, &plan, &*eg, &self.executor_config())
                .map_err(WorkloadError::from)?;
            Ok(PlannedWorkload {
                dag,
                snapshot,
                optimizer_seconds,
            })
        } else {
            let guards = self.eg.read_all();
            let view = EgView::new(guards.iter().map(|g| &**g).collect());
            let start = Instant::now();
            let plan = self.planner.plan(&dag, &view, &self.config.cost);
            let optimizer_seconds = start.elapsed().as_secs_f64();
            let snapshot = executor::snapshot(&dag, &plan, &view, &self.executor_config())
                .map_err(WorkloadError::from)?;
            Ok(PlannedWorkload {
                dag,
                snapshot,
                optimizer_seconds,
            })
        }
    }

    /// Pipeline stage 4 (paper step 5): merge the executed DAG into the
    /// Experiment Graph, run the materializer, take the baseline-cost
    /// estimate, and fold the lifetime stats — all inside one short
    /// write-lock critical section, so a concurrent eviction, update or
    /// stats read cannot observe a half-published workload and writers
    /// never wait on a running computation. A failed run with a taint
    /// mask still merges (salvages) its untainted prefix.
    ///
    /// On a durable server ([`OptimizerServer::open`]) the workload's EG
    /// delta is appended to the write-ahead journal inside the same
    /// critical section; if that append fails, the workload is reported
    /// failed and the durability layer wedges — every later persist
    /// refuses — until the server restarts from its data directory.
    ///
    /// On a sharded server only the shards the workload's artifacts hash
    /// to are write-locked, in ascending shard order (two publishers
    /// acquiring ordered subsets can never deadlock); each touched
    /// shard's journal receives its own delta under one shared sequence
    /// number, and the publish becomes durable exactly when the
    /// cross-shard commit record lands.
    pub fn publish_workload(
        &self,
        executed: ExecutedWorkload,
    ) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
        if self.eg.n_shards() == 1 {
            self.publish_single(executed)
        } else {
            self.publish_sharded(executed)
        }
    }

    /// The classic single-shard publish: one write lock over the whole
    /// graph, one journal append.
    fn publish_single(
        &self,
        executed: ExecutedWorkload,
    ) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
        let ExecutedWorkload {
            dag,
            mut report,
            failure,
        } = executed;
        let start = Instant::now();
        // Degraded durability rejects the publish *before* the merge:
        // merging while read-only would put memory further ahead of
        // disk with no backlog entry to repair from.
        if let Some(error) = self.degraded_reject() {
            self.reject_publish(&report, failure.as_ref(), &error);
            report.materializer_seconds = start.elapsed().as_secs_f64();
            return finish_publish(dag, report, failure, Some(error));
        }
        let mut persist_error = None;
        {
            let mut eg = self.eg.write(0);
            // With durability on, note which merged artifacts are new to
            // the graph (vs merely touched) and the pre-publish mat set,
            // so the journal delta can be diffed after the merge.
            let capture = self
                .durability
                .as_ref()
                .map(|_| DeltaCapture::before(&eg, &dag, failure.as_ref()));
            match &failure {
                None => eg.update_with_workload(&dag)?,
                Some(f) if f.tainted.len() == dag.n_nodes() => {
                    let keep: Vec<bool> = f.tainted.iter().map(|t| !t).collect();
                    eg.update_with_workload_partial(&dag, &keep)?;
                }
                // Failed before execution (bad plan, no terminals):
                // nothing to merge.
                Some(_) => {}
            }
            // Executed values merge back as Arc clones: the store and
            // the returned DAG share the same allocations.
            let available = available_contents(&dag);
            self.materializer
                .run(&mut eg, &available, &self.config.cost);
            reconcile_restored_flags(&mut eg);
            if self.cold.is_some() {
                self.record_recipes(&dag, failure.as_ref());
                let faults = eg.storage().fault_injector().map(Arc::clone);
                self.write_cold(&available, faults.as_deref(), |id| {
                    eg.storage().contains(id)
                });
            }
            let baseline = baseline_cost(&dag, &eg);
            if let (Some(Durability::Legacy(durability)), Some(capture)) =
                (&self.durability, capture)
            {
                let mut dur = durability.lock();
                persist_error = self.persist_delta(&eg, &mut dur, &capture).err();
            }
            // In debug builds, fsck the graph while still inside the
            // critical section: an invariant break is pinned to the
            // publication that introduced it.
            #[cfg(debug_assertions)]
            {
                let fsck = co_graph::fsck::check_graph(&eg);
                debug_assert!(fsck.is_clean(), "post-publish fsck failed:\n{fsck}");
            }
            self.stats[0].lock().fold_publish(
                &report,
                baseline,
                failure.as_ref(),
                persist_error.is_some(),
            );
        }
        report.materializer_seconds = start.elapsed().as_secs_f64();
        finish_publish(dag, report, failure, persist_error)
    }

    /// The sharded publish: write-lock exactly the touched shards in
    /// ascending order, merge each vertex into its owning shard, wire
    /// child links on the parent's shard, materialize within a first-fit
    /// budget scope, and journal per-shard deltas sealed by a
    /// cross-shard commit record.
    fn publish_sharded(
        &self,
        executed: ExecutedWorkload,
    ) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
        let ExecutedWorkload {
            dag,
            mut report,
            failure,
        } = executed;
        let start = Instant::now();
        // Same pre-merge rejection as the single-shard path.
        if let Some(error) = self.degraded_reject() {
            self.reject_publish(&report, failure.as_ref(), &error);
            report.materializer_seconds = start.elapsed().as_secs_f64();
            return finish_publish(dag, report, failure, Some(error));
        }

        // Which nodes merge — the same salvage rules as the single-shard
        // path (None: all; full taint mask: the untainted prefix;
        // pre-execution failure: nothing).
        let n_nodes = dag.n_nodes();
        let merged: Vec<bool> = match &failure {
            None => vec![true; n_nodes],
            Some(f) if f.tainted.len() == n_nodes => f.tainted.iter().map(|t| !t).collect(),
            Some(_) => vec![false; n_nodes],
        };
        // The mask must be ancestor-closed (update_with_workload_partial
        // enforces the same): child wiring below assumes a kept node's
        // parents are merged — and therefore locked.
        for (i, m) in merged.iter().enumerate() {
            if *m {
                for p in dag.parents(co_graph::NodeId(i)) {
                    if !merged[p.0] {
                        return Err(WorkloadError::from(GraphError::InvalidStructure(
                            "partial publish mask is not ancestor-closed".to_owned(),
                        )));
                    }
                }
            }
        }

        let sharded_dur = match &self.durability {
            Some(Durability::Sharded(d)) => Some(d),
            _ => None,
        };

        // Quarantine records live in shard 0's journal only, so a
        // pending quarantine diff pulls shard 0 into the lock set. The
        // diff is recomputed against this same snapshot inside the
        // critical section (under shard 0's lock).
        let mut current_quarantine = self
            .quarantine
            .as_ref()
            .map(|q| q.entries())
            .unwrap_or_default();
        current_quarantine.sort_by_key(|(op, ..)| *op);
        let quarantine_dirty = sharded_dur.is_some_and(|d| {
            quarantine_diff(&current_quarantine, &d.persisted_quarantine.lock()).is_some()
        });

        let mut touched: BTreeSet<usize> = dag
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| merged[*i])
            .map(|(_, node)| self.eg.shard_index(node.artifact))
            .collect();
        if quarantine_dirty {
            touched.insert(0);
        }

        let mut persist_error = None;
        if touched.is_empty() {
            // Failed before execution with nothing to salvage and no
            // quarantine change to persist: only the failure counters
            // move.
            self.stats[0]
                .lock()
                .fold_publish(&report, 0.0, failure.as_ref(), false);
        } else {
            // Ordered-lock protocol: ascending shard indices, held
            // through merge, materialization, journaling and commit.
            let shard_list: Vec<usize> = touched.iter().copied().collect();
            let mut guards = self.eg.write_set(&shard_list);
            let pos: HashMap<usize, usize> = shard_list
                .iter()
                .enumerate()
                .map(|(gi, k)| (*k, gi))
                .collect();

            // Pre-merge capture per locked shard: which merged artifacts
            // are new vs merely touched, and the pre-publish mat sets.
            let mut new_ids: Vec<Vec<ArtifactId>> = vec![Vec::new(); guards.len()];
            let mut touched_ids: Vec<Vec<ArtifactId>> = vec![Vec::new(); guards.len()];
            let mut seen = HashSet::new();
            for (i, node) in dag.nodes().iter().enumerate() {
                if merged[i] && seen.insert(node.artifact) {
                    let gi = pos[&self.eg.shard_index(node.artifact)];
                    if guards[gi].1.contains(node.artifact) {
                        touched_ids[gi].push(node.artifact);
                    } else {
                        new_ids[gi].push(node.artifact);
                    }
                }
            }
            let mat_before: Vec<BTreeSet<ArtifactId>> =
                guards.iter().map(|(_, g)| mat_set(g)).collect();

            // Merge every kept node into its owning shard; child links
            // are wired on the parent's shard (locked, because the mask
            // is ancestor-closed).
            for (i, node) in dag.nodes().iter().enumerate() {
                if !merged[i] {
                    continue;
                }
                let gi = pos[&self.eg.shard_index(node.artifact)];
                let inserted = guards[gi].1.merge_workload_node(&dag, i)?;
                if inserted {
                    for p in dag.parents(co_graph::NodeId(i)) {
                        let parent = dag.nodes()[p.0].artifact;
                        let pg = pos[&self.eg.shard_index(parent)];
                        guards[pg].1.add_child_link(parent, node.artifact)?;
                    }
                }
            }

            let available = available_contents(&dag);
            self.materialize_sharded(&mut guards, &pos, &dag, &merged, &available);
            for (_, g) in &mut guards {
                reconcile_restored_flags(g);
            }
            if self.cold.is_some() {
                self.record_recipes(&dag, failure.as_ref());
                let faults = guards
                    .first()
                    .and_then(|(_, g)| g.storage().fault_injector().map(Arc::clone));
                self.write_cold(&available, faults.as_deref(), |id| {
                    pos.get(&self.eg.shard_index(id))
                        .is_some_and(|gi| guards[*gi].1.storage().contains(id))
                });
            }
            let baseline = baseline_cost_with(&dag, |id| {
                pos.get(&self.eg.shard_index(id))
                    .and_then(|gi| guards[*gi].1.vertex(id).ok())
                    .map(|v| v.compute_time)
            });

            if let Some(dur) = sharded_dur {
                persist_error = self
                    .persist_sharded(
                        dur,
                        &guards,
                        &new_ids,
                        &touched_ids,
                        &mat_before,
                        &current_quarantine,
                        quarantine_dirty,
                    )
                    .err();
            }
            // (No per-shard debug fsck here: a lone shard legitimately
            // holds child links into shards this publish did not lock.
            // The sharded invariants are checked by `egfsck`, recovery,
            // and the crash-matrix tests.)

            // Satellite fix: fold the stats while the shard locks are
            // still held, so stats() can never lag the graph.
            self.stats[shard_list[0]].lock().fold_publish(
                &report,
                baseline,
                failure.as_ref(),
                persist_error.is_some(),
            );
        }
        report.materializer_seconds = start.elapsed().as_secs_f64();

        // Threshold compaction runs after the publish locks are
        // released: compaction takes every shard lock and parking_lot
        // locks are not reentrant. Best-effort, like the single-shard
        // threshold path.
        if persist_error.is_none() {
            if let Some(dur) = sharded_dur {
                if dur.health() == DurabilityHealth::Healthy
                    && dur
                        .journals
                        .iter()
                        .any(|j| j.lock().len_bytes() > dur.config.compact_journal_bytes)
                {
                    let _ = self.compact();
                }
            }
        }

        finish_publish(dag, report, failure, persist_error)
    }

    /// Materialization for sharded publishes. The full utility-ranked
    /// algorithms walk one whole graph under one lock, which a sharded
    /// publish deliberately avoids; instead each budgeted materializer
    /// degrades to first-fit over the publishing workload's computed
    /// values, admitting a value only when a *lower bound* on global
    /// usage (the shared column vault plus every locked shard's local
    /// bytes) leaves room in the budget. `All` stores everything, `None`
    /// nothing — identical to their single-shard behavior.
    fn materialize_sharded(
        &self,
        guards: &mut [(usize, co_graph::ShardWriteGuard<'_>)],
        pos: &HashMap<usize, usize>,
        dag: &WorkloadDag,
        merged: &[bool],
        available: &HashMap<ArtifactId, Value>,
    ) {
        if self.config.materializer == MaterializerKind::None {
            return;
        }
        let unlimited = self.config.materializer == MaterializerKind::All;
        let mut seen = HashSet::new();
        // Deterministic DAG order, not hash-map order.
        for (i, node) in dag.nodes().iter().enumerate() {
            if !merged[i] || !seen.insert(node.artifact) {
                continue;
            }
            let Some(value) = available.get(&node.artifact) else {
                continue;
            };
            // Aggregates are never materialization candidates (they are
            // excluded from every materializer's utility pool).
            if matches!(value, Value::Aggregate(_)) {
                continue;
            }
            let gi = pos[&self.eg.shard_index(node.artifact)];
            if guards[gi].1.storage().contains(node.artifact) {
                continue;
            }
            if !unlimited {
                let marginal = guards[gi].1.storage().marginal_bytes(value);
                // Lower bound on global usage: the shared vault plus every
                // locked shard's local bytes (unlocked shards' non-vault
                // bytes are invisible here — see DESIGN.md §14).
                let local: u64 = guards.iter().map(|(_, g)| g.storage().unique_bytes()).sum();
                let used = self.eg.vault().map_or(0, |v| v.unique_bytes()) + local;
                if used.saturating_add(marginal) > self.config.budget {
                    continue;
                }
            }
            guards[gi].1.storage_mut().store(node.artifact, value);
        }
    }

    /// Append this publish's per-shard journal deltas and the
    /// cross-shard commit record. Called with the touched shards'
    /// write locks held (ascending); journal mutexes are taken in the
    /// same ascending order, the commit-log mutex last.
    #[allow(clippy::too_many_arguments)] // lint:reason the sharded persist pipeline threads its full context explicitly
    fn persist_sharded(
        &self,
        dur: &ShardedDurability,
        guards: &[(usize, co_graph::ShardWriteGuard<'_>)],
        new_ids: &[Vec<ArtifactId>],
        touched_ids: &[Vec<ArtifactId>],
        mat_before: &[BTreeSet<ArtifactId>],
        current_quarantine: &[(OpHash, String, usize)],
        quarantine_dirty: bool,
    ) -> Result<()> {
        if dur.health() == DurabilityHealth::Wedged {
            return Err(GraphError::Io(WEDGED_MSG.to_owned()));
        }
        let mut deltas: Vec<EgDelta> = Vec::with_capacity(guards.len());
        for (gi, (_, g)) in guards.iter().enumerate() {
            let mut delta = EgDelta::default();
            for id in &new_ids[gi] {
                delta.new_vertices.push(g.vertex(*id)?.clone());
            }
            for id in &touched_ids[gi] {
                let v = g.vertex(*id)?;
                delta.touched.push(VertexTouch {
                    id: *id,
                    frequency: v.frequency,
                    compute_time: v.compute_time,
                    size: v.size,
                    quality: v.quality,
                });
            }
            let mat_after = mat_set(g);
            delta.mat_added = mat_after.difference(&mat_before[gi]).copied().collect();
            delta.mat_removed = mat_before[gi].difference(&mat_after).copied().collect();
            deltas.push(delta);
        }
        // Quarantine records are confined to shard 0. The diff is
        // recomputed against the pre-lock snapshot under the persisted
        // map's lock, which stays held until the commit record lands so
        // the map only ever advances for durable publishes.
        let mut persisted = quarantine_dirty.then(|| dur.persisted_quarantine.lock());
        if let Some(persisted) = &persisted {
            if let Some((set, cleared)) = quarantine_diff(current_quarantine, persisted) {
                // quarantine_dirty pulled shard 0 into the (ascending)
                // lock set, so it is guards[0].
                debug_assert_eq!(guards[0].0, 0);
                deltas[0].quarantine_set = set;
                deltas[0].quarantine_cleared = cleared;
            }
        }

        // One sequence number per publish, assigned while every lock in
        // the ordered protocol is held: each shard journal's sequence
        // numbers appear in increasing order.
        let seq = dur.seq.fetch_add(1, Ordering::SeqCst) + 1;
        let faults = guards
            .first()
            .and_then(|(_, g)| g.storage().fault_injector().map(Arc::clone));
        let mut pending: Vec<(usize, EgDelta)> = Vec::new();
        for (gi, (k, _)) in guards.iter().enumerate() {
            if deltas[gi].is_empty() {
                continue;
            }
            let mut delta = std::mem::take(&mut deltas[gi]);
            delta.seq = Some(seq);
            pending.push((*k, delta));
        }
        if pending.is_empty() {
            return Ok(());
        }
        let record = CommitRecord {
            seq,
            shards: pending
                .iter()
                // co-lint:allow(no-panic) shard counts are small configuration values, far below u32::MAX
                .map(|(k, _)| u32::try_from(*k).expect("shard index fits u32"))
                .collect(),
        };
        // The persisted-quarantine map this publish installs once it is
        // durable — either immediately below, or at backlog-drain time.
        let quarantine_target: Option<HashMap<OpHash, usize>> = persisted.is_some().then(|| {
            current_quarantine
                .iter()
                .map(|(op, _, f)| (*op, *f))
                .collect()
        });

        // A publish that raced past the entry gate while the layer was
        // already read-only goes straight to the backlog: its merge is
        // live in memory, and the (possibly damaged, possibly being
        // repaired) journals must not be touched from here.
        if dur.health() == DurabilityHealth::ReadOnly {
            persisted.take();
            return Err(self.backlog_sharded(dur, pending, record, quarantine_target));
        }

        let mut append_error: Option<GraphError> = None;
        for (i, (k, delta)) in pending.iter().enumerate() {
            if i > 0 {
                if let Some(f) = &faults {
                    if f.take_crash(CrashPoint::ShardGapAppend) {
                        dur.set_health(DurabilityHealth::Wedged);
                        return Err(GraphError::Io(
                            "injected crash at shard-gap-append (between per-shard \
                             journal appends)"
                                .to_owned(),
                        ));
                    }
                }
            }
            if let Err(e) = dur.journals[*k].lock().append(delta, faults.as_deref()) {
                append_error = Some(e);
                break;
            }
        }
        let commit_error = if append_error.is_none() {
            dur.commit.lock().append(&record, faults.as_deref()).err()
        } else {
            None
        };
        if let Some(e) = append_error.or(commit_error) {
            if is_simulated_crash(&e) {
                dur.set_health(DurabilityHealth::Wedged);
                return Err(e);
            }
            persisted.take();
            return Err(self.backlog_sharded(dur, pending, record, quarantine_target));
        }
        if let (Some(persisted), Some(target)) = (&mut persisted, quarantine_target) {
            **persisted = target;
        }
        Ok(())
    }

    /// Move one failed cross-shard publish into the durability backlog
    /// and degrade to read-only. Called with the shard write locks held
    /// but *not* the persisted-quarantine guard (dropped by the caller:
    /// the backlog mutex must never nest inside it — repair holds the
    /// backlog outermost and takes the quarantine map while draining).
    fn backlog_sharded(
        &self,
        dur: &ShardedDurability,
        deltas: Vec<(usize, EgDelta)>,
        record: CommitRecord,
        quarantine: Option<HashMap<OpHash, usize>>,
    ) -> GraphError {
        dur.backlog.lock().push(ShardedBacklog {
            deltas,
            record,
            quarantine,
        });
        dur.set_health(DurabilityHealth::ReadOnly);
        GraphError::read_only(READ_ONLY_RETRY_HINT_MS)
    }

    /// Build and append this publish's journal delta, then compact if
    /// the journal crossed its size threshold. Called with the EG write
    /// lock held and the durability state locked (single-shard layout).
    fn persist_delta(
        &self,
        eg: &ExperimentGraph,
        dur: &mut DurabilityState,
        capture: &DeltaCapture,
    ) -> Result<()> {
        if dur.health == DurabilityHealth::Wedged {
            return Err(GraphError::Io(WEDGED_MSG.to_owned()));
        }
        let mut delta = EgDelta::default();
        for id in &capture.new_ids {
            delta.new_vertices.push(eg.vertex(*id)?.clone());
        }
        for id in &capture.touched_ids {
            let v = eg.vertex(*id)?;
            delta.touched.push(VertexTouch {
                id: *id,
                frequency: v.frequency,
                compute_time: v.compute_time,
                size: v.size,
                quality: v.quality,
            });
        }
        let mat_after = mat_set(eg);
        delta.mat_added = mat_after.difference(&capture.mat_before).copied().collect();
        delta.mat_removed = capture.mat_before.difference(&mat_after).copied().collect();
        let mut current = self
            .quarantine
            .as_ref()
            .map(|q| q.entries())
            .unwrap_or_default();
        current.sort_by_key(|(op, ..)| *op);
        if let Some((set, cleared)) = quarantine_diff(&current, &dur.persisted_quarantine) {
            delta.quarantine_set = set;
            delta.quarantine_cleared = cleared;
        }
        if delta.is_empty() {
            return Ok(());
        }
        // A publish that raced past the entry gate while read-only:
        // memory already merged it, so the delta must reach the backlog
        // (not the damaged journal) for repair to re-append.
        if dur.health == DurabilityHealth::ReadOnly {
            dur.backlog.push(delta);
            return Err(GraphError::read_only(READ_ONLY_RETRY_HINT_MS));
        }
        let faults = eg.storage().fault_injector().map(|f| &**f);
        if let Err(e) = dur.journal.append(&delta, faults) {
            if is_simulated_crash(&e) {
                dur.health = DurabilityHealth::Wedged;
                return Err(e);
            }
            // Live I/O failure: keep serving read-only, queue the delta
            // for repair, and reject this publish retriably.
            dur.backlog.push(delta);
            dur.health = DurabilityHealth::ReadOnly;
            return Err(GraphError::read_only(READ_ONLY_RETRY_HINT_MS));
        }
        dur.persisted_quarantine = current
            .into_iter()
            .map(|(op, _, failures)| (op, failures))
            .collect();
        // Threshold-triggered compaction. A failure here is survivable —
        // the delta is already durable in the journal and an interrupted
        // snapshot save only leaves a temp file — so it is swallowed and
        // the next publish retries.
        if dur.journal.len_bytes() > dur.config.compact_journal_bytes
            && self.compact_locked(eg, dur).is_ok()
        {
            self.stats[0].lock().snapshots_compacted += 1;
        }
        Ok(())
    }

    /// Write a fresh snapshot (atomically) and truncate the journal.
    /// The snapshot is renamed into place *before* the journal resets,
    /// so a crash between the two leaves a newer snapshot plus a journal
    /// whose records replay idempotently (absolute values).
    fn compact_locked(&self, eg: &ExperimentGraph, dur: &mut DurabilityState) -> Result<()> {
        let entries = sorted_quarantine_entries(self.quarantine.as_deref());
        let faults = eg.storage().fault_injector().map(|f| &**f);
        snapshot::save_with(eg, &entries, &dur.config.snapshot_path(), faults)?;
        dur.journal.reset(faults)?;
        dur.persisted_quarantine = entries.iter().map(|q| (q.op_hash, q.failures)).collect();
        Ok(())
    }

    /// Compact durable state now: snapshot the current graph and
    /// quarantine set atomically, then truncate the journal(s). A no-op
    /// `Ok(())` on a server without durability.
    ///
    /// On a sharded server this takes every shard's write lock, writes
    /// one watermarked snapshot per shard, resets the per-shard
    /// journals, and resets the commit log *last*: a crash anywhere in
    /// between leaves snapshots whose watermarks already cover every
    /// committed sequence number, so replay skips the stale records.
    pub fn compact(&self) -> Result<()> {
        match self.durability_health() {
            DurabilityHealth::Healthy => {}
            DurabilityHealth::ReadOnly => {
                return Err(GraphError::read_only(READ_ONLY_RETRY_HINT_MS))
            }
            DurabilityHealth::Wedged => return Err(GraphError::Io(WEDGED_MSG.to_owned())),
        }
        match &self.durability {
            None => Ok(()),
            Some(Durability::Legacy(durability)) => {
                {
                    let eg = self.eg.read(0);
                    let mut dur = durability.lock();
                    self.compact_locked(&eg, &mut dur)?;
                }
                self.stats[0].lock().snapshots_compacted += 1;
                Ok(())
            }
            Some(Durability::Sharded(dur)) => {
                {
                    let guards = self.eg.write_all();
                    // Every sequence number at or below the counter
                    // belongs to a finished publish (publishers hold
                    // their shard locks from seq assignment to commit,
                    // and we hold all of them).
                    let watermark = dur.seq.load(Ordering::SeqCst);
                    let entries = sorted_quarantine_entries(self.quarantine.as_deref());
                    let faults = guards
                        .first()
                        .and_then(|g| g.storage().fault_injector().map(Arc::clone));
                    for (k, g) in guards.iter().enumerate() {
                        // Quarantine entries persist in shard 0 only.
                        let q: &[QuarantineEntry] = if k == 0 { &entries } else { &[] };
                        snapshot::save_shard_with(
                            g,
                            q,
                            watermark,
                            &dur.config.dir.join(shard::shard_snapshot_file(k)),
                            faults.as_deref(),
                        )?;
                    }
                    for journal in &dur.journals {
                        journal.lock().reset(faults.as_deref())?;
                    }
                    dur.commit.lock().reset(faults.as_deref())?;
                    *dur.persisted_quarantine.lock() =
                        entries.iter().map(|q| (q.op_hash, q.failures)).collect();
                }
                self.stats[0].lock().snapshots_compacted += 1;
                Ok(())
            }
        }
    }

    /// Graceful-drain hook: flush all durable state to disk — snapshot
    /// the current graph and quarantine set atomically and truncate the
    /// journal (exactly [`compact`]), so a post-drain data directory is
    /// a clean snapshot set. A no-op `Ok(())` without durability; an
    /// error if the durability layer is wedged or the snapshot fails.
    ///
    /// [`compact`]: OptimizerServer::compact
    pub fn flush_durable(&self) -> Result<()> {
        if self.durability_health() == DurabilityHealth::ReadOnly {
            // A drain is a deliberate moment to catch up: repair first
            // (counted), then compact from the repaired state.
            self.try_repair()?;
        }
        self.compact()
    }

    /// Current durability health. `Healthy` on a server without
    /// durability (nothing can be behind).
    #[must_use]
    pub fn durability_health(&self) -> DurabilityHealth {
        match &self.durability {
            None => DurabilityHealth::Healthy,
            Some(Durability::Legacy(d)) => d.lock().health,
            Some(Durability::Sharded(d)) => d.health(),
        }
    }

    /// Whether durability is wedged — the terminal state after
    /// [`DurabilityConfig::max_repair_attempts`] consecutive failed
    /// repairs (or a simulated crash): every further persist refuses
    /// until the server restarts from its data directory.
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.durability_health() == DurabilityHealth::Wedged
    }

    /// Publish deltas queued in memory awaiting repair (0 when healthy).
    #[must_use]
    pub fn backlog_len(&self) -> usize {
        match &self.durability {
            None => 0,
            Some(Durability::Legacy(d)) => d.lock().backlog.len(),
            Some(Durability::Sharded(d)) => d.backlog.lock().len(),
        }
    }

    /// The publish-entry health gate: `None` lets the publish proceed.
    /// While read-only it first attempts a *throttled* opportunistic
    /// repair (at most one per [`READ_ONLY_RETRY_HINT_MS`], never
    /// counted toward the wedge limit), so a server whose disk has
    /// recovered heals itself on the next publish — no restart, no
    /// explicit operator action.
    fn degraded_reject(&self) -> Option<GraphError> {
        match self.durability_health() {
            DurabilityHealth::Healthy => None,
            DurabilityHealth::Wedged => Some(GraphError::Io(WEDGED_MSG.to_owned())),
            DurabilityHealth::ReadOnly => {
                self.maybe_repair();
                match self.durability_health() {
                    DurabilityHealth::Healthy => None,
                    DurabilityHealth::Wedged => Some(GraphError::Io(WEDGED_MSG.to_owned())),
                    DurabilityHealth::ReadOnly => {
                        Some(GraphError::read_only(READ_ONLY_RETRY_HINT_MS))
                    }
                }
            }
        }
    }

    /// Fold one rejected publish into the stats (the publish never
    /// reached the merge, so only the failure counters move).
    fn reject_publish(
        &self,
        report: &ExecutionReport,
        failure: Option<&FailedExecution>,
        error: &GraphError,
    ) {
        let mut stats = self.stats[0].lock();
        if matches!(error, GraphError::ReadOnly { .. }) {
            stats.publishes_rejected_readonly += 1;
        }
        stats.fold_publish(report, 0.0, failure, true);
    }

    /// Throttled, uncounted repair attempt (publish entry).
    fn maybe_repair(&self) {
        {
            let mut last = self.repair_throttle.lock();
            let ready = last.is_none_or(|t| {
                t.elapsed() >= std::time::Duration::from_millis(READ_ONLY_RETRY_HINT_MS)
            });
            if !ready {
                return;
            }
            *last = Some(Instant::now());
        }
        let _ = self.repair(false);
    }

    /// Attempt to return a read-only durability layer to `Healthy`:
    /// discard stray temp files, truncate torn journal tails, reopen
    /// every journal (and the commit log, sharded) on fresh handles,
    /// re-append the in-memory backlog in sequence order, and sync.
    ///
    /// Returns `Ok(true)` when a repair ran and the layer is healthy
    /// again, `Ok(false)` when there was nothing to repair (already
    /// healthy, or no durability). Each *failed* call counts toward
    /// [`DurabilityConfig::max_repair_attempts`]; at the limit the
    /// layer wedges permanently and this returns the wedged error.
    pub fn try_repair(&self) -> Result<bool> {
        self.repair(true)
    }

    /// Shared repair driver. `counted` distinguishes deliberate repair
    /// (explicit calls, the service front-end's background loop — these
    /// burn the wedge budget) from publish-entry opportunism (which
    /// must not: a publish storm during a long disk outage would wedge
    /// a server that was going to recover).
    fn repair(&self, counted: bool) -> Result<bool> {
        let Some(durability) = &self.durability else {
            return Ok(false);
        };
        let faults = {
            let g = self.eg.read(0);
            g.storage().fault_injector().map(Arc::clone)
        };
        match durability {
            Durability::Legacy(d) => {
                let mut dur = d.lock();
                match dur.health {
                    DurabilityHealth::Healthy => return Ok(false),
                    DurabilityHealth::Wedged => return Err(GraphError::Io(WEDGED_MSG.to_owned())),
                    DurabilityHealth::ReadOnly => {}
                }
                self.stats[0].lock().repair_attempts += 1;
                match repair_single(&mut dur, faults.as_deref()) {
                    Ok(()) => {
                        dur.health = DurabilityHealth::Healthy;
                        dur.repair_attempts = 0;
                        self.stats[0].lock().repairs_succeeded += 1;
                        Ok(true)
                    }
                    Err(e) => {
                        if counted {
                            dur.repair_attempts += 1;
                            if dur.repair_attempts >= dur.config.max_repair_attempts {
                                dur.health = DurabilityHealth::Wedged;
                            }
                        }
                        Err(e)
                    }
                }
            }
            Durability::Sharded(dur) => {
                // The backlog mutex is the repair critical section: it
                // serializes concurrent repairers and keeps the drain
                // atomic with respect to them. Publishers never take it
                // while holding journal or quarantine locks.
                let mut backlog = dur.backlog.lock();
                match dur.health() {
                    DurabilityHealth::Healthy => return Ok(false),
                    DurabilityHealth::Wedged => return Err(GraphError::Io(WEDGED_MSG.to_owned())),
                    DurabilityHealth::ReadOnly => {}
                }
                self.stats[0].lock().repair_attempts += 1;
                match repair_sharded(dur, &mut backlog, faults.as_deref()) {
                    Ok(()) => {
                        dur.set_health(DurabilityHealth::Healthy);
                        dur.repair_attempts.store(0, Ordering::SeqCst);
                        self.stats[0].lock().repairs_succeeded += 1;
                        Ok(true)
                    }
                    Err(e) => {
                        if counted {
                            let attempts = dur.repair_attempts.fetch_add(1, Ordering::SeqCst) + 1;
                            if attempts >= dur.config.max_repair_attempts {
                                dur.set_health(DurabilityHealth::Wedged);
                            }
                        }
                        Err(e)
                    }
                }
            }
        }
    }

    /// Verify the CRCs of every cold column file, healing corrupt ones
    /// by lineage-based recomputation (the producing operation re-run
    /// over its parents, resolved from the in-memory store, clean cold
    /// files, or recursively recomputed) and quarantining only the
    /// genuinely unrecoverable — renamed aside, never deleted. The cold
    /// encoding is deterministic, so a healed file is byte-identical to
    /// the original. A no-op outcome on a server without a cold store.
    pub fn scrub(&self) -> ScrubOutcome {
        let mut outcome = ScrubOutcome::default();
        let Some(cold) = &self.cold else {
            return outcome;
        };
        let faults = {
            let g = self.eg.read(0);
            g.storage().fault_injector().map(Arc::clone)
        };
        let ids = cold.list().unwrap_or_default();
        for id in ids {
            match cold.read(id, faults.as_deref()) {
                Ok(_) => outcome.checked += 1,
                Err(_) => {
                    outcome.checked += 1;
                    let healed = self
                        .resolve_value(id, &mut HashSet::new(), faults.as_deref())
                        .is_some_and(|value| {
                            cold.write(id, &value, faults.as_deref()).unwrap_or(false)
                        });
                    if healed {
                        outcome.healed += 1;
                    } else {
                        let _ = cold.quarantine_file(id, faults.as_deref());
                        outcome.quarantined += 1;
                    }
                }
            }
        }
        let mut stats = self.stats[0].lock();
        stats.scrub_checked += outcome.checked;
        stats.scrub_healed += outcome.healed;
        stats.scrub_quarantined += outcome.quarantined;
        outcome
    }

    /// Resolve an artifact's content for healing: the in-memory store
    /// first, then a clean cold file, then recompute from lineage.
    /// `visiting` breaks cycles (impossible in a DAG, cheap insurance).
    fn resolve_value(
        &self,
        id: ArtifactId,
        visiting: &mut HashSet<ArtifactId>,
        faults: Option<&FaultInjector>,
    ) -> Option<Value> {
        let k = self.eg.shard_index(id);
        if let Some(value) = self.eg.read(k).storage().get(id) {
            return Some(value);
        }
        if let Some(cold) = &self.cold {
            if let Ok(Some(value)) = cold.read(id, faults) {
                return Some(value);
            }
        }
        if !visiting.insert(id) {
            return None;
        }
        let recipe = self.recipes.lock().get(&id).cloned()?;
        let parents: Option<Vec<Value>> = recipe
            .parents
            .iter()
            .map(|p| self.resolve_value(*p, visiting, faults))
            .collect();
        let parents = parents?;
        let refs: Vec<&Value> = parents.iter().collect();
        recipe.op.run(&refs).ok()
    }

    /// Record the lineage of every merged workload node (cold store on).
    fn record_recipes(&self, dag: &WorkloadDag, failure: Option<&FailedExecution>) {
        let mut recipes = self.recipes.lock();
        for (i, node) in dag.nodes().iter().enumerate() {
            let merged = match failure {
                None => true,
                Some(f) if f.tainted.len() == dag.n_nodes() => !f.tainted[i],
                Some(_) => false,
            };
            if !merged {
                continue;
            }
            if let Some(edge) = dag.producer(co_graph::NodeId(i)) {
                recipes.entry(node.artifact).or_insert_with(|| Recipe {
                    op: Arc::clone(&edge.op),
                    parents: edge
                        .inputs
                        .iter()
                        .map(|n| dag.nodes()[n.0].artifact)
                        .collect(),
                });
            }
        }
    }

    /// Mirror newly materialized dataset artifacts into cold column
    /// files. Best-effort: a cold write failure costs scrub coverage of
    /// that artifact, never the publish.
    fn write_cold(
        &self,
        available: &HashMap<ArtifactId, Value>,
        faults: Option<&FaultInjector>,
        stored: impl Fn(ArtifactId) -> bool,
    ) {
        let Some(cold) = &self.cold else { return };
        for (id, value) in available {
            if stored(*id) && !cold.path_for(*id).exists() {
                let _ = cold.write(*id, value, faults);
            }
        }
    }

    /// Whether this server persists to a data directory.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Cumulative lifetime statistics (per-shard sub-counters summed).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for s in &self.stats {
            total.add(&s.lock());
        }
        total.durability_health = self.durability_health().as_u64();
        total
    }

    /// `EXPLAIN` for a workload: prune, plan against the current
    /// Experiment Graph, and render the decision table — without
    /// executing anything or touching the graph.
    pub fn explain(&self, mut dag: WorkloadDag) -> Result<String> {
        dag.prune()?;
        if self.eg.n_shards() == 1 {
            let eg = self.eg.read(0);
            let plan = self.planner.plan(&dag, &*eg, &self.config.cost);
            Ok(crate::optimizer::explain_plan(
                &dag,
                &*eg,
                &self.config.cost,
                &plan,
            ))
        } else {
            let guards = self.eg.read_all();
            let view = EgView::new(guards.iter().map(|g| &**g).collect());
            let plan = self.planner.plan(&dag, &view, &self.config.cost);
            Ok(crate::optimizer::explain_plan(
                &dag,
                &view,
                &self.config.cost,
                &plan,
            ))
        }
    }

    /// Number of Experiment Graph lock shards (1 = unsharded).
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.eg.n_shards()
    }

    /// The sharded Experiment Graph container — per-shard read/write
    /// access for offline tools, fsck sweeps and tests at any shard
    /// count.
    #[must_use]
    pub fn shards(&self) -> &ShardedEg {
        &self.eg
    }

    /// Nanoseconds publishers spent blocked on contended shard write
    /// locks, per shard (all zeros while uncontended: the fast path
    /// does not touch the clock).
    #[must_use]
    pub fn lock_wait_ns(&self) -> Vec<u64> {
        self.eg.lock_wait_ns()
    }

    /// Read access to the Experiment Graph (shared lock).
    ///
    /// # Panics
    ///
    /// Panics on a sharded server (shards > 1) — iterate
    /// [`shards`](OptimizerServer::shards) instead.
    pub fn eg(&self) -> co_graph::ShardReadGuard<'_> {
        assert_eq!(
            self.eg.n_shards(),
            1,
            "eg() is single-shard only; use shards() on a sharded server"
        );
        self.eg.read(0)
    }

    /// Write access to the Experiment Graph (exclusive lock) — for
    /// offline tools and tests (e.g. seeding corruption that
    /// `co_graph::fsck` must catch). Mutations made here bypass the
    /// publish pipeline and its durability journaling.
    ///
    /// # Panics
    ///
    /// Panics on a sharded server (shards > 1) — iterate
    /// [`shards`](OptimizerServer::shards) instead.
    pub fn eg_mut(&self) -> co_graph::ShardWriteGuard<'_> {
        assert_eq!(
            self.eg.n_shards(),
            1,
            "eg_mut() is single-shard only; use shards() on a sharded server"
        );
        self.eg.write(0)
    }

    /// Summary of storage state: (number of materialized artifacts,
    /// unique bytes held, logical bytes materialized). On a sharded
    /// server, sums over every shard plus the shared column vault.
    #[must_use]
    pub fn storage_stats(&self) -> (usize, u64, u64) {
        let guards = self.eg.read_all();
        let n = guards.iter().map(|g| g.storage().n_artifacts()).sum();
        let unique = self.eg.vault().map_or(0, |v| v.unique_bytes())
            + guards
                .iter()
                .map(|g| g.storage().unique_bytes())
                .sum::<u64>();
        let logical = guards.iter().map(|g| g.storage().logical_bytes()).sum();
        (n, unique, logical)
    }

    /// Install a deterministic fault injector on the artifact store
    /// (every shard's, when sharded) for tests and chaos drills; see
    /// `co_graph::faults`.
    pub fn set_fault_injector(&self, faults: Arc<FaultInjector>) {
        self.eg.set_fault_injector(&faults);
    }

    /// Evict one artifact's content from the store (returns bytes
    /// freed). Reuse plans drawn before the eviction degrade to
    /// recomputation via the executor's load-miss fallback. On a durable
    /// server the mat-flag change is journaled (and, sharded, committed)
    /// so a restart does not resurrect the flag.
    pub fn evict_artifact(&self, id: ArtifactId) -> u64 {
        let k = self.eg.shard_index(id);
        let mut eg = self.eg.write(k);
        let bytes = eg.storage_mut().evict(id);
        let was_restored = eg.unmark_restored_materialized(id);
        if bytes > 0 || was_restored {
            if let Some(cold) = &self.cold {
                let faults = eg.storage().fault_injector().map(Arc::clone);
                let _ = cold.remove(id, faults.as_deref());
            }
            match &self.durability {
                None => {}
                Some(Durability::Legacy(durability)) => {
                    let mut dur = durability.lock();
                    let delta = EgDelta {
                        mat_removed: vec![id],
                        ..EgDelta::default()
                    };
                    match dur.health {
                        // A wedged layer drops the record: the restart
                        // that un-wedges it resurrects the mat flag and
                        // the next access re-evicts — consistent, cheap.
                        DurabilityHealth::Wedged => {}
                        DurabilityHealth::ReadOnly => dur.backlog.push(delta),
                        DurabilityHealth::Healthy => {
                            let faults = eg.storage().fault_injector().map(|f| &**f);
                            if let Err(e) = dur.journal.append(&delta, faults) {
                                if is_simulated_crash(&e) {
                                    dur.health = DurabilityHealth::Wedged;
                                } else {
                                    dur.backlog.push(delta);
                                    dur.health = DurabilityHealth::ReadOnly;
                                }
                            }
                        }
                    }
                }
                Some(Durability::Sharded(dur)) => {
                    if dur.health() == DurabilityHealth::Wedged {
                        return bytes;
                    }
                    let seq = dur.seq.fetch_add(1, Ordering::SeqCst) + 1;
                    let delta = EgDelta {
                        seq: Some(seq),
                        mat_removed: vec![id],
                        ..EgDelta::default()
                    };
                    let record = CommitRecord {
                        seq,
                        // co-lint:allow(no-panic) shard counts are small configuration values, far below u32::MAX
                        shards: vec![u32::try_from(k).expect("shard index fits u32")],
                    };
                    if dur.health() == DurabilityHealth::ReadOnly {
                        let _ = self.backlog_sharded(dur, vec![(k, delta)], record, None);
                        return bytes;
                    }
                    let faults = eg.storage().fault_injector().map(Arc::clone);
                    let append = dur.journals[k]
                        .lock()
                        .append(&delta, faults.as_deref())
                        .and_then(|()| dur.commit.lock().append(&record, faults.as_deref()));
                    if let Err(e) = append {
                        if is_simulated_crash(&e) {
                            dur.set_health(DurabilityHealth::Wedged);
                        } else {
                            let _ = self.backlog_sharded(dur, vec![(k, delta)], record, None);
                        }
                    }
                }
            }
        }
        bytes
    }

    /// The server's quarantine registry, if quarantining is enabled.
    #[must_use]
    pub fn quarantine(&self) -> Option<&Arc<Quarantine>> {
        self.quarantine.as_ref()
    }
}

/// Shared tail of both publish paths: translate (failure, persist
/// failure) into the client-visible result, preserving error precedence
/// (the workload's own error wins; a persist failure alone reports the
/// run failed because a restart would forget it).
fn finish_publish(
    dag: WorkloadDag,
    mut report: ExecutionReport,
    failure: Option<FailedExecution>,
    persist_error: Option<GraphError>,
) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
    match failure {
        None => match persist_error {
            None => Ok((dag, report)),
            // The run computed fine but its delta never became
            // durable: report it failed so the client knows a
            // restart would forget this workload.
            Some(error) => Err(WorkloadError {
                error,
                report: Box::new(report),
                completed: Vec::new(),
                tainted: Vec::new(),
            }),
        },
        Some(FailedExecution {
            error,
            completed,
            tainted,
        }) => {
            // When both the workload and persistence failed, the
            // workload's own error wins; the persist failure is
            // still visible through the wedged durability state.
            report.salvaged_artifacts = completed.len();
            Err(WorkloadError {
                error,
                report: Box::new(report),
                completed,
                tainted,
            })
        }
    }
}

/// Best-effort sweep of stray `.tmp` files (interrupted atomic
/// snapshot saves) from a data directory. Losing the sweep to an I/O
/// error is harmless — recovery ignores temp files anyway.
fn remove_stray_tmps(dir: &Path) {
    let Ok(entries) = co_graph::vfs::read_dir_sorted(dir, None) else {
        return;
    };
    for path in entries {
        if path.to_string_lossy().ends_with(".tmp") {
            let _ = co_graph::vfs::remove_file(&path, None);
        }
    }
}

/// One repair pass over the single-shard durability layer: sweep stray
/// temp files, truncate any torn journal tail the failed write left,
/// reopen the journal on a fresh handle (a failed fsync poisons the old
/// one — fsyncgate — so the *handle itself* must be replaced), then
/// re-append the backlog front-first and sync. A failure part-way is
/// safe: the drained prefix is durable, the rest stays backlogged.
fn repair_single(dur: &mut DurabilityState, faults: Option<&FaultInjector>) -> Result<()> {
    remove_stray_tmps(&dur.config.dir);
    let path = dur.config.journal_path();
    let outcome = journal::replay_with(&path, faults)?;
    if let Some(valid_len) = outcome.torn_at {
        journal::truncate_with(&path, valid_len, faults)?;
    }
    dur.journal = Journal::open_with(&path, dur.config.fsync, faults)?;
    while !dur.backlog.is_empty() {
        dur.journal.append(&dur.backlog[0], faults)?;
        let delta = dur.backlog.remove(0);
        for q in &delta.quarantine_set {
            dur.persisted_quarantine.insert(q.op_hash, q.failures);
        }
        for h in &delta.quarantine_cleared {
            dur.persisted_quarantine.remove(h);
        }
    }
    dur.journal.sync(faults)
}

/// One repair pass over the sharded durability layer (the backlog
/// mutex is held by the caller — it is the repair critical section).
/// Same shape as [`repair_single`] per shard journal plus the commit
/// log, then the backlog drains in publish (sequence) order: entries
/// can arrive out of order under concurrent failing publishers. A
/// partially drained entry re-appends in full next pass — journal
/// replay is idempotent and duplicate commit seqs are harmless.
fn repair_sharded(
    dur: &ShardedDurability,
    backlog: &mut Vec<ShardedBacklog>,
    faults: Option<&FaultInjector>,
) -> Result<()> {
    let dir = &dur.config.dir;
    remove_stray_tmps(dir);
    for (k, slot) in dur.journals.iter().enumerate() {
        let path = dir.join(shard::shard_journal_file(k));
        let outcome = journal::replay_with(&path, faults)?;
        if let Some(valid_len) = outcome.torn_at {
            journal::truncate_with(&path, valid_len, faults)?;
        }
        *slot.lock() = Journal::open_with(&path, dur.config.fsync, faults)?;
    }
    let commit_path = dir.join(shard::COMMIT_FILE);
    let replay = journal::replay_commits_with(&commit_path, faults)?;
    if let Some(valid_len) = replay.torn_at {
        journal::truncate_with(&commit_path, valid_len, faults)?;
    }
    *dur.commit.lock() = CommitLog::open_with(&commit_path, faults)?;
    backlog.sort_by_key(|e| e.record.seq);
    while !backlog.is_empty() {
        {
            let entry = &backlog[0];
            for (k, delta) in &entry.deltas {
                dur.journals[*k].lock().append(delta, faults)?;
            }
            dur.commit.lock().append(&entry.record, faults)?;
        }
        let entry = backlog.remove(0);
        if let Some(q) = entry.quarantine {
            *dur.persisted_quarantine.lock() = q;
        }
    }
    for slot in &dur.journals {
        slot.lock().sync(faults)?;
    }
    Ok(())
}

/// What the publish path notes *before* merging a workload, so the
/// journal delta can be diffed afterwards: which merged artifacts are
/// new to the graph vs merely touched, and the pre-publish mat set.
struct DeltaCapture {
    new_ids: Vec<ArtifactId>,
    touched_ids: Vec<ArtifactId>,
    mat_before: BTreeSet<ArtifactId>,
}

impl DeltaCapture {
    fn before(eg: &ExperimentGraph, dag: &WorkloadDag, failure: Option<&FailedExecution>) -> Self {
        let merged = |i: usize| match failure {
            None => true,
            Some(f) if f.tainted.len() == dag.n_nodes() => !f.tainted[i],
            Some(_) => false,
        };
        let mut new_ids = Vec::new();
        let mut touched_ids = Vec::new();
        let mut seen = HashSet::new();
        // DAG order is parents-first, so `new_ids` lists new vertices in
        // an order the journal can replay with restore_vertex.
        for (i, node) in dag.nodes().iter().enumerate() {
            if merged(i) && seen.insert(node.artifact) {
                if eg.contains(node.artifact) {
                    touched_ids.push(node.artifact);
                } else {
                    new_ids.push(node.artifact);
                }
            }
        }
        DeltaCapture {
            new_ids,
            touched_ids,
            mat_before: mat_set(eg),
        }
    }
}

/// Diff the live quarantine snapshot against the last persisted map:
/// `Some((set, cleared))` when any entry changed or vanished, `None`
/// when the persisted state is already current.
fn quarantine_diff(
    current: &[(OpHash, String, usize)],
    persisted: &HashMap<OpHash, usize>,
) -> Option<(Vec<QuarantineEntry>, Vec<OpHash>)> {
    let mut set = Vec::new();
    for (op, name, failures) in current {
        if persisted.get(op) != Some(failures) {
            set.push(QuarantineEntry {
                op_hash: *op,
                name: name.clone(),
                failures: *failures,
            });
        }
    }
    let current_ops: HashSet<OpHash> = current.iter().map(|(op, ..)| *op).collect();
    let mut cleared: Vec<OpHash> = persisted
        .keys()
        .filter(|op| !current_ops.contains(op))
        .copied()
        .collect();
    cleared.sort_unstable();
    if set.is_empty() && cleared.is_empty() {
        None
    } else {
        Some((set, cleared))
    }
}

/// The live quarantine set as sorted snapshot entries.
fn sorted_quarantine_entries(quarantine: Option<&Quarantine>) -> Vec<QuarantineEntry> {
    let mut entries: Vec<QuarantineEntry> = quarantine
        .map(|q| q.entries())
        .unwrap_or_default()
        .into_iter()
        .map(|(op_hash, name, failures)| QuarantineEntry {
            op_hash,
            name,
            failures,
        })
        .collect();
    entries.sort_by_key(|q| q.op_hash);
    entries
}

/// The persisted mat set: artifacts holding content plus restored mat
/// flags whose content has not repopulated yet.
fn mat_set(eg: &ExperimentGraph) -> BTreeSet<ArtifactId> {
    let mut set: BTreeSet<ArtifactId> = eg.storage().materialized_ids().into_iter().collect();
    set.extend(eg.restored_materialized().iter().copied());
    set
}

/// Restored mat flags whose content has arrived hand ownership of the
/// flag back to the store (so a later store-side eviction is visible to
/// `was_materialized`).
fn reconcile_restored_flags(eg: &mut ExperimentGraph) {
    let arrived: Vec<ArtifactId> = eg
        .restored_materialized()
        .iter()
        .copied()
        .filter(|id| eg.storage().contains(*id))
        .collect();
    for id in arrived {
        eg.unmark_restored_materialized(id);
    }
}

/// Contents produced by an executed workload, keyed by artifact. Values
/// are Arc-backed, so offering every computed dataframe to the
/// materializer costs a pointer bump per artifact, not a deep copy.
fn available_contents(dag: &WorkloadDag) -> HashMap<ArtifactId, Value> {
    dag.nodes()
        .iter()
        .filter_map(|n| n.computed.as_ref().map(|v| (n.artifact, v.clone())))
        .collect()
}

/// Estimate what this submission would have cost with no reuse at all —
/// the sum of recorded compute times over every (distinct) node the
/// terminals require. Called inside the publish critical section so the
/// graph cannot change under the walk.
fn baseline_cost(dag: &WorkloadDag, eg: &ExperimentGraph) -> f64 {
    baseline_cost_with(dag, |id| eg.vertex(id).ok().map(|v| v.compute_time))
}

/// [`baseline_cost`] with a pluggable vertex lookup, so the sharded
/// publish path can resolve compute times across its locked shards.
fn baseline_cost_with(dag: &WorkloadDag, lookup: impl Fn(ArtifactId) -> Option<f64>) -> f64 {
    let mut baseline = 0.0;
    let mut visited = vec![false; dag.n_nodes()];
    let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut visited[i], true) {
            continue;
        }
        let node = &dag.nodes()[i];
        baseline += node
            .compute_time
            .or_else(|| lookup(node.artifact))
            .unwrap_or(0.0);
        stack.extend(dag.parents(co_graph::NodeId(i)).iter().map(|p| p.0));
    }
    baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Script;
    use co_dataframe::ops::{MapFn, Predicate};
    use co_dataframe::{Column, ColumnData, DataFrame};
    use co_ml::linear::LogisticParams;

    fn frame() -> DataFrame {
        let n = 4000;
        DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float((0..n).map(f64::from).collect())),
            Column::source(
                "t",
                "y",
                ColumnData::Int((0..n).map(|i| i64::from(i >= n / 2)).collect()),
            ),
        ])
        .unwrap()
    }

    fn workload() -> WorkloadDag {
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s.train_logistic(m, "y", LogisticParams::default()).unwrap();
        s.output(model).unwrap();
        s.into_dag()
    }

    #[test]
    fn repeated_workload_is_loaded_not_recomputed() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        let (_, first) = server.run_workload(workload()).unwrap();
        assert!(first.ops_executed > 0);
        assert_eq!(first.artifacts_loaded, 0);

        let (_, second) = server.run_workload(workload()).unwrap();
        // The second run loads the terminal (or an ancestor) instead of
        // re-training.
        assert!(second.artifacts_loaded >= 1);
        assert!(second.ops_executed < first.ops_executed);
        assert!(second.run_seconds() < first.run_seconds());
    }

    #[test]
    fn baseline_never_reuses() {
        let server = OptimizerServer::new(ServerConfig::baseline());
        let (_, first) = server.run_workload(workload()).unwrap();
        let (_, second) = server.run_workload(workload()).unwrap();
        assert_eq!(second.artifacts_loaded, 0);
        assert_eq!(second.ops_executed, first.ops_executed);
        // Only sources are stored.
        let (n, ..) = server.storage_stats();
        assert_eq!(n, 1);
    }

    #[test]
    fn modified_workload_reuses_shared_prefix() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        server.run_workload(workload()).unwrap();

        // Same feature pipeline, different hyperparameters.
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s
            .train_logistic(
                m,
                "y",
                LogisticParams {
                    lr: 0.9,
                    ..LogisticParams::default()
                },
            )
            .unwrap();
        s.output(model).unwrap();

        let (_, report) = server.run_workload(s.into_dag()).unwrap();
        // The feature frame is loaded; only the new training op runs.
        assert_eq!(report.ops_executed, 1);
        assert!(report.artifacts_loaded >= 1);
    }

    #[test]
    fn helix_configuration_runs_end_to_end() {
        let server = OptimizerServer::new(ServerConfig::helix(u64::MAX));
        let (_, first) = server.run_workload(workload()).unwrap();
        let (_, second) = server.run_workload(workload()).unwrap();
        assert!(second.run_seconds() <= first.run_seconds());
        assert!(second.artifacts_loaded >= 1);
    }

    #[test]
    fn concurrent_sessions_share_the_graph() {
        let server = Arc::new(OptimizerServer::new(ServerConfig::collaborative(u64::MAX)));
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let server = Arc::clone(&server);
                scope.spawn(move |_| {
                    let (_, report) = server.run_workload(workload()).unwrap();
                    assert!(report.run_seconds() > 0.0);
                });
            }
        })
        .unwrap();
        // All four sessions converged onto one set of artifacts.
        let eg = server.eg();
        let dag = workload();
        for node in dag.nodes() {
            assert!(eg.contains(node.artifact));
        }
    }

    #[test]
    fn sharded_server_reuses_across_shards() {
        let mut config = ServerConfig::collaborative(u64::MAX);
        config.shards = 4;
        let server = OptimizerServer::new(config);
        assert_eq!(server.n_shards(), 4);
        let (_, first) = server.run_workload(workload()).unwrap();
        assert!(first.ops_executed > 0);
        let (_, second) = server.run_workload(workload()).unwrap();
        assert!(second.artifacts_loaded >= 1);
        assert!(second.ops_executed < first.ops_executed);
        // Every workload vertex landed on its owning shard.
        let dag = workload();
        let guards = server.shards().read_all();
        for node in dag.nodes() {
            let k = server.shards().shard_index(node.artifact);
            assert!(guards[k].contains(node.artifact));
        }
        // Stats fold across per-shard sub-counters.
        let stats = server.stats();
        assert_eq!(stats.workloads, 2);
    }

    #[test]
    fn sharded_concurrent_sessions_share_the_graph() {
        let mut config = ServerConfig::collaborative(u64::MAX);
        config.shards = 8;
        let server = Arc::new(OptimizerServer::new(config));
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let server = Arc::clone(&server);
                scope.spawn(move |_| {
                    let (_, report) = server.run_workload(workload()).unwrap();
                    assert!(report.run_seconds() > 0.0);
                });
            }
        })
        .unwrap();
        let dag = workload();
        let guards = server.shards().read_all();
        for node in dag.nodes() {
            let k = server.shards().shard_index(node.artifact);
            assert!(guards[k].contains(node.artifact));
        }
        assert_eq!(server.stats().workloads, 4);
    }

    #[test]
    fn with_graph_rejects_sharded_config() {
        let mut config = ServerConfig::collaborative(u64::MAX);
        config.shards = 4;
        let eg = ExperimentGraph::new(true);
        assert!(OptimizerServer::with_graph(config, eg).is_err());
    }

    #[test]
    fn lifetime_stats_accumulate_and_estimate_savings() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        server.run_workload(workload()).unwrap();
        server.run_workload(workload()).unwrap();
        let stats = server.stats();
        assert_eq!(stats.workloads, 2);
        assert!(stats.artifacts_loaded >= 1);
        assert!(stats.run_seconds > 0.0);
        // The second (fully reused) run makes the baseline exceed actual.
        assert!(
            stats.seconds_saved() > 0.0,
            "baseline {} vs actual {}",
            stats.baseline_seconds,
            stats.run_seconds
        );
        // A no-reuse server saves nothing (up to timing noise: its
        // baseline equals what it actually did).
        let kg = OptimizerServer::new(ServerConfig::baseline());
        kg.run_workload(workload()).unwrap();
        let kg_stats = kg.stats();
        assert_eq!(kg_stats.workloads, 1);
        assert!(kg_stats.seconds_saved() < kg_stats.run_seconds * 0.5);
    }

    #[test]
    fn explain_renders_decisions_without_executing() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        // Cold graph: everything computes.
        let text = server.explain(workload()).unwrap();
        assert!(text.contains("compute"));
        assert!(!text.contains("LOAD"));
        assert!(text.contains("train_logistic"));
        // Explain must not have executed or stored anything.
        let (n, ..) = server.storage_stats();
        assert_eq!(n, 0);

        server.run_workload(workload()).unwrap();
        let text = server.explain(workload()).unwrap();
        assert!(text.contains("LOAD"), "after a run the plan loads:\n{text}");
    }

    #[test]
    fn warmstart_counts_are_reported() {
        let mut config = ServerConfig::collaborative(u64::MAX);
        config.warmstart = true;
        let server = OptimizerServer::new(config);
        server.run_workload(workload()).unwrap();

        // Different hyperparameters: exact reuse impossible, warmstart
        // candidate exists.
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s
            .train_logistic(
                m,
                "y",
                LogisticParams {
                    max_iter: 50,
                    ..LogisticParams::default()
                },
            )
            .unwrap();
        s.output(model).unwrap();
        let (_, report) = server.run_workload(s.into_dag()).unwrap();
        assert_eq!(report.warmstarts, 1);
    }
}
