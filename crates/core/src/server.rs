//! The server: one shared Experiment Graph, an optimizer, and an updater
//! (paper Figure 2). [`OptimizerServer::run_workload`] drives a whole
//! client/server round trip as a staged pipeline with typed hand-offs
//! (`PrunedWorkload → PlannedWorkload → ExecutedWorkload`, see
//! [`crate::pipeline`]): prune (no lock) → plan + snapshot (read lock) →
//! execute (lock-free) → update + materialize + stats baseline (one
//! write-lock critical section). No Experiment Graph lock is ever held
//! while an `Operation::run` executes.

use crate::cost::CostModel;
use crate::executor::{self, ExecutorConfig};
use crate::failure::{Quarantine, RetryPolicy, WorkloadError};
use crate::materialize::{
    AllMaterializer, GreedyMaterializer, HelixMaterializer, Materializer, NoneMaterializer,
    StorageAwareMaterializer,
};
use crate::optimizer::{AllMaterializedReuse, HelixReuse, LinearReuse, NoReuse, ReusePlanner};
use crate::pipeline::{ExecutedWorkload, FailedExecution, PlannedWorkload, PrunedWorkload};
use crate::report::{ExecutionReport, RecoveryReport};
use co_graph::journal::{self, EgDelta, FsyncPolicy, Journal, QuarantineEntry, VertexTouch};
use co_graph::{
    snapshot, ArtifactId, ExperimentGraph, FaultInjector, GraphError, OpHash, Result, Value,
    WorkloadDag,
};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Which materialization algorithm the updater runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaterializerKind {
    /// Storage-aware with column dedup (`SA`, the paper's default).
    StorageAware,
    /// ML-based greedy with nominal sizes (`HM`).
    Greedy,
    /// Greedy with an artifact-count cap (Figure 8(b)'s one-artifact
    /// budget).
    GreedyCapped(usize),
    /// The Helix baseline (`HL`).
    Helix,
    /// Materialize everything (`ALL`).
    All,
    /// Materialize nothing (`KG` baseline).
    None,
}

/// Which reuse planner the optimizer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseKind {
    /// Linear-time forward/backward (`LN`, the paper's algorithm).
    Linear,
    /// Helix PSP + max-flow (`HL`).
    Helix,
    /// Load every materialized artifact (`ALL_M`).
    AllMaterialized,
    /// Recompute everything (`ALL_C` / `KG`).
    None,
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Storage budget in bytes.
    pub budget: u64,
    /// Quality-vs-cost weight `α` (paper default 0.5).
    pub alpha: f64,
    /// Materialization algorithm.
    pub materializer: MaterializerKind,
    /// Reuse planner.
    pub reuse: ReuseKind,
    /// Load-cost model.
    pub cost: CostModel,
    /// Warmstart training operations.
    pub warmstart: bool,
    /// Retry policy for transient operation failures.
    pub retry: RetryPolicy,
    /// Quarantine operations after this many consecutive permanent
    /// failures (`None` disables the quarantine).
    pub quarantine_after: Option<usize>,
    /// Worker threads for the dataframe kernels (join, group-by, map,
    /// filter, encode). `None` keeps the dataframe layer's own resolution:
    /// the `CO_DF_THREADS` environment variable if set, else the machine's
    /// available parallelism. The kernels are bit-identical for any thread
    /// count, so this is purely a throughput/footprint knob.
    pub df_threads: Option<usize>,
}

impl ServerConfig {
    /// The paper's default configuration: storage-aware materialization,
    /// linear reuse, α = 0.5, in-memory EG, no warmstarting.
    #[must_use]
    pub fn collaborative(budget: u64) -> Self {
        ServerConfig {
            budget,
            alpha: 0.5,
            materializer: MaterializerKind::StorageAware,
            reuse: ReuseKind::Linear,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
        }
    }

    /// The `KG` baseline: no storage, no reuse — every workload runs from
    /// scratch.
    #[must_use]
    pub fn baseline() -> Self {
        ServerConfig {
            budget: 0,
            alpha: 0.5,
            materializer: MaterializerKind::None,
            reuse: ReuseKind::None,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
        }
    }

    /// The Helix comparison system: Helix materializer + Helix reuse.
    #[must_use]
    pub fn helix(budget: u64) -> Self {
        ServerConfig {
            budget,
            alpha: 0.5,
            materializer: MaterializerKind::Helix,
            reuse: ReuseKind::Helix,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
        }
    }
}

/// Where and how the Experiment Graph is made crash-safe (see
/// DESIGN.md §10): a data directory holding one snapshot (`eg.egsnap`,
/// written atomically) and one write-ahead journal (`eg.wal`, appended
/// inside the publish critical section).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Data directory; created on open if missing.
    pub dir: PathBuf,
    /// When journal appends reach the disk.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + truncate the journal) once the journal
    /// exceeds this many bytes.
    pub compact_journal_bytes: u64,
}

impl DurabilityConfig {
    /// Durability in `dir` with the safe defaults: fsync every append,
    /// compact past 4 MiB of journal.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            compact_journal_bytes: 4 * 1024 * 1024,
        }
    }

    /// Path of the snapshot file.
    #[must_use]
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("eg.egsnap")
    }

    /// Path of the write-ahead journal.
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("eg.wal")
    }
}

/// Mutable durability state, locked *after* the EG write lock (lock
/// order: eg → durability → stats).
struct DurabilityState {
    config: DurabilityConfig,
    journal: Journal,
    /// Quarantine entries as last persisted (op_hash → failures) — the
    /// baseline the publish path diffs against to emit Q+/Q- records.
    persisted_quarantine: HashMap<OpHash, usize>,
    /// Set after a journal append fails: the in-memory graph is ahead
    /// of the durable state, so further appends could write records
    /// that reference vertices recovery will never see. Like a WAL
    /// database after a write error, the server refuses further
    /// publishes until restarted from the data directory.
    wedged: bool,
}

/// Cumulative statistics over a server's lifetime — the dashboard
/// counters of the motivating example ("saves hundreds of hours of
/// execution time ... reduces the required resources and operation cost
/// of Kaggle").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Workloads served.
    pub workloads: usize,
    /// Operations actually executed across all workloads.
    pub ops_executed: usize,
    /// Artifacts served from the Experiment Graph.
    pub artifacts_loaded: usize,
    /// Training operations warmstarted.
    pub warmstarts: usize,
    /// Total client-visible run time (compute + charged loads), seconds.
    pub run_seconds: f64,
    /// Estimated time the same submissions would have cost with no reuse
    /// at all, seconds (from the Experiment Graph's recorded compute
    /// times).
    pub baseline_seconds: f64,
    /// Workloads that terminated with an error.
    pub failed_workloads: usize,
    /// Vertices salvaged into the Experiment Graph from failed runs.
    pub salvaged_artifacts: usize,
    /// Journal records replayed during startup recovery.
    pub journal_records_replayed: usize,
    /// Torn journal tails detected and truncated during recovery.
    pub torn_tail_truncated: usize,
    /// Snapshot compactions performed (explicit or threshold-triggered).
    pub snapshots_compacted: usize,
}

impl ServerStats {
    /// Estimated seconds saved by the optimizer so far.
    #[must_use]
    pub fn seconds_saved(&self) -> f64 {
        (self.baseline_seconds - self.run_seconds).max(0.0)
    }
}

/// The collaborative optimizer server.
pub struct OptimizerServer {
    eg: RwLock<ExperimentGraph>,
    config: ServerConfig,
    materializer: Box<dyn Materializer>,
    planner: Box<dyn ReusePlanner>,
    stats: parking_lot::Mutex<ServerStats>,
    quarantine: Option<Arc<Quarantine>>,
    durability: Option<parking_lot::Mutex<DurabilityState>>,
}

impl OptimizerServer {
    /// Create a server. The Experiment Graph store deduplicates columns
    /// iff the configured materializer is storage-aware.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        let dedup = config.materializer == MaterializerKind::StorageAware;
        OptimizerServer::build(config, ExperimentGraph::new(dedup))
    }

    /// Assemble a server around the given graph (shared by [`new`] and
    /// [`with_graph`]).
    ///
    /// [`new`]: OptimizerServer::new
    /// [`with_graph`]: OptimizerServer::with_graph
    fn build(config: ServerConfig, eg: ExperimentGraph) -> Self {
        if let Some(n) = config.df_threads {
            // Process-wide: the dataframe kernels' outputs are identical
            // for any thread count, so late application by a second server
            // only changes throughput, never results.
            co_dataframe::par::set_threads(n);
        }
        let materializer: Box<dyn Materializer> = match config.materializer {
            MaterializerKind::StorageAware => Box::new(StorageAwareMaterializer {
                budget: config.budget,
                alpha: config.alpha,
            }),
            MaterializerKind::Greedy => Box::new(GreedyMaterializer {
                budget: config.budget,
                alpha: config.alpha,
                max_artifacts: None,
            }),
            MaterializerKind::GreedyCapped(n) => Box::new(GreedyMaterializer {
                budget: config.budget,
                alpha: config.alpha,
                max_artifacts: Some(n),
            }),
            MaterializerKind::Helix => Box::new(HelixMaterializer {
                budget: config.budget,
            }),
            MaterializerKind::All => Box::new(AllMaterializer),
            MaterializerKind::None => Box::new(NoneMaterializer),
        };
        let planner: Box<dyn ReusePlanner> = match config.reuse {
            ReuseKind::Linear => Box::new(LinearReuse),
            ReuseKind::Helix => Box::new(HelixReuse),
            ReuseKind::AllMaterialized => Box::new(AllMaterializedReuse),
            ReuseKind::None => Box::new(NoReuse),
        };
        OptimizerServer {
            eg: RwLock::new(eg),
            quarantine: config
                .quarantine_after
                .map(|k| Arc::new(Quarantine::new(k))),
            config,
            materializer,
            planner,
            stats: parking_lot::Mutex::new(ServerStats::default()),
            durability: None,
        }
    }

    /// Create a server around an existing Experiment Graph — e.g. one
    /// restored from a meta-data snapshot (`co_graph::snapshot`) after a
    /// restart.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidStructure`] when the restored graph's
    /// store deduplication mode does not match the configured
    /// materializer: the storage-aware algorithm budgets *deduplicated*
    /// bytes, every other materializer budgets nominal bytes, so a
    /// mismatch silently mis-accounts the storage budget.
    pub fn with_graph(config: ServerConfig, eg: ExperimentGraph) -> Result<Self> {
        let dedup = config.materializer == MaterializerKind::StorageAware;
        if eg.storage().dedup_enabled() != dedup {
            return Err(GraphError::InvalidStructure(format!(
                "experiment graph store dedup={} but the {:?} materializer requires dedup={}",
                eg.storage().dedup_enabled(),
                config.materializer,
                dedup
            )));
        }
        Ok(OptimizerServer::build(config, eg))
    }

    /// Open a crash-safe server from a data directory: remove orphaned
    /// temp files, load the newest valid snapshot, replay the journal on
    /// top of it (truncating a torn tail instead of failing), re-install
    /// the persisted quarantine set, and start journaling committed
    /// workloads. Returns the server and a [`RecoveryReport`] describing
    /// what recovery found and repaired.
    pub fn open(
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(&durability.dir).map_err(|e| {
            GraphError::Io(format!(
                "cannot create data directory {}: {e}",
                durability.dir.display()
            ))
        })?;
        let mut recovery = RecoveryReport::default();

        // A crash mid-save leaves `*.tmp` files behind; an interrupted
        // save never touches the live snapshot or journal, so these are
        // safe to discard.
        if let Ok(entries) = std::fs::read_dir(&durability.dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().ends_with(".tmp")
                    && std::fs::remove_file(entry.path()).is_ok()
                {
                    recovery.stray_tmp_removed += 1;
                }
            }
        }

        let dedup = config.materializer == MaterializerKind::StorageAware;
        let snapshot_path = durability.snapshot_path();
        let (mut eg, mut qmap) = if snapshot_path.exists() {
            let restored = snapshot::load_full(&snapshot_path, dedup)?;
            recovery.snapshot_loaded = true;
            let qmap: HashMap<OpHash, (String, usize)> = restored
                .quarantine
                .into_iter()
                .map(|q| (q.op_hash, (q.name, q.failures)))
                .collect();
            (restored.graph, qmap)
        } else {
            (ExperimentGraph::new(dedup), HashMap::new())
        };

        let journal_path = durability.journal_path();
        let outcome = journal::replay(&journal_path)?;
        for delta in &outcome.deltas {
            delta.apply(&mut eg)?;
            for q in &delta.quarantine_set {
                qmap.insert(q.op_hash, (q.name.clone(), q.failures));
            }
            for h in &delta.quarantine_cleared {
                qmap.remove(h);
            }
        }
        recovery.journal_records_replayed = outcome.deltas.len();
        if let Some(valid_len) = outcome.torn_at {
            journal::truncate(&journal_path, valid_len)?;
            recovery.torn_tail_truncated = true;
            recovery.torn_bytes_discarded = outcome.bytes_discarded;
        }

        // In debug builds, fsck the recovered graph before serving from
        // it: recovery bugs surface here, not workloads later.
        #[cfg(debug_assertions)]
        {
            let fsck = co_graph::fsck::check_graph(&eg);
            debug_assert!(fsck.is_clean(), "post-recovery fsck failed:\n{fsck}");
        }

        let journal = Journal::open(&journal_path, durability.fsync)?;
        let state = DurabilityState {
            config: durability,
            journal,
            persisted_quarantine: qmap.iter().map(|(op, (_, f))| (*op, *f)).collect(),
            wedged: false,
        };
        let mut server = OptimizerServer::build(config, eg);
        if let Some(quarantine) = &server.quarantine {
            for (op, (name, failures)) in &qmap {
                quarantine.restore(*op, name, *failures);
            }
            recovery.quarantine_restored = qmap.len();
        }
        server.durability = Some(parking_lot::Mutex::new(state));
        {
            let mut stats = server.stats.lock();
            stats.journal_records_replayed = recovery.journal_records_replayed;
            stats.torn_tail_truncated = usize::from(recovery.torn_tail_truncated);
        }
        Ok((server, recovery))
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Run one workload end to end by composing the pipeline stages
    /// ([`plan_workload`] → [`PlannedWorkload::execute`] →
    /// [`publish_workload`]). Returns the executed DAG (terminal values
    /// populated) and the execution report.
    ///
    /// [`plan_workload`]: OptimizerServer::plan_workload
    /// [`publish_workload`]: OptimizerServer::publish_workload
    ///
    /// On failure the returned [`WorkloadError`] still carries the
    /// report and the taint mask, and the server has already *salvaged*
    /// the successfully computed prefix: untainted vertices are merged
    /// into the Experiment Graph and offered to the materializer, so a
    /// resubmission of the same (or an overlapping) workload reuses them
    /// instead of recomputing.
    pub fn run_workload(
        &self,
        dag: WorkloadDag,
    ) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
        // Stage 1 (client, no lock): local pruning.
        let pruned = PrunedWorkload::new(dag)?;
        // Stage 2 (server, read lock): reuse planning + snapshot.
        let planned = self.plan_workload(pruned)?;
        // Stage 3 (client, lock-free): execution against the snapshot.
        let executed = planned.execute(&self.executor_config());
        // Stage 4 (server, one write-lock critical section): publish.
        self.publish_workload(executed)
    }

    /// The executor configuration derived from the server's.
    #[must_use]
    pub fn executor_config(&self) -> ExecutorConfig {
        ExecutorConfig {
            cost: self.config.cost,
            warmstart: self.config.warmstart,
            retry: self.config.retry,
            quarantine: self.quarantine.clone(),
        }
    }

    /// The executor configuration with a per-request time budget folded
    /// into the retry policy: the effective workload deadline is the
    /// tighter of the server's configured deadline and `remaining`. The
    /// service front-end (`co-serve`) uses this to propagate a client's
    /// request deadline into execution, so a slow workload cannot hold a
    /// worker thread past the client's budget.
    #[must_use]
    pub fn executor_config_with_deadline(
        &self,
        remaining: Option<std::time::Duration>,
    ) -> ExecutorConfig {
        let mut config = self.executor_config();
        config.retry.workload_deadline = match (config.retry.workload_deadline, remaining) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => b.or(a),
        };
        config
    }

    /// Pipeline stage 2 (paper step 3): plan reuse against the Experiment
    /// Graph and capture the execution snapshot — planned loads fetched
    /// up front as Arc clones, warmstart candidates prefetched. The EG
    /// read lock is held only for the duration of this call; the returned
    /// [`PlannedWorkload`] executes without touching the graph.
    pub fn plan_workload(
        &self,
        pruned: PrunedWorkload,
    ) -> std::result::Result<PlannedWorkload, WorkloadError> {
        let PrunedWorkload { dag } = pruned;
        let eg = self.eg.read();
        let start = Instant::now();
        let plan = self.planner.plan(&dag, &eg, &self.config.cost);
        let optimizer_seconds = start.elapsed().as_secs_f64();
        let snapshot = executor::snapshot(&dag, &plan, &eg, &self.executor_config())
            .map_err(WorkloadError::from)?;
        Ok(PlannedWorkload {
            dag,
            snapshot,
            optimizer_seconds,
        })
    }

    /// Pipeline stage 4 (paper step 5): merge the executed DAG into the
    /// Experiment Graph, run the materializer, and take the baseline-cost
    /// estimate — all inside one short write-lock critical section, so a
    /// concurrent eviction or update cannot skew the estimate and writers
    /// never wait on a running computation. A failed run with a taint
    /// mask still merges (salvages) its untainted prefix.
    ///
    /// On a durable server ([`OptimizerServer::open`]) the workload's EG
    /// delta is appended to the write-ahead journal inside the same
    /// critical section; if that append fails, the workload is reported
    /// failed and the durability layer wedges — every later persist
    /// refuses — until the server restarts from its data directory.
    pub fn publish_workload(
        &self,
        executed: ExecutedWorkload,
    ) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
        let ExecutedWorkload {
            dag,
            mut report,
            failure,
        } = executed;
        let start = Instant::now();
        let baseline;
        let mut persist_error = None;
        {
            let mut eg = self.eg.write();
            // With durability on, note which merged artifacts are new to
            // the graph (vs merely touched) and the pre-publish mat set,
            // so the journal delta can be diffed after the merge.
            let capture = self
                .durability
                .as_ref()
                .map(|_| DeltaCapture::before(&eg, &dag, failure.as_ref()));
            match &failure {
                None => eg.update_with_workload(&dag)?,
                Some(f) if f.tainted.len() == dag.n_nodes() => {
                    let keep: Vec<bool> = f.tainted.iter().map(|t| !t).collect();
                    eg.update_with_workload_partial(&dag, &keep)?;
                }
                // Failed before execution (bad plan, no terminals):
                // nothing to merge.
                Some(_) => {}
            }
            // Executed values merge back as Arc clones: the store and
            // the returned DAG share the same allocations.
            let available = available_contents(&dag);
            self.materializer
                .run(&mut eg, &available, &self.config.cost);
            reconcile_restored_flags(&mut eg);
            baseline = baseline_cost(&dag, &eg);
            if let (Some(durability), Some(capture)) = (&self.durability, capture) {
                let mut dur = durability.lock();
                persist_error = self.persist_delta(&eg, &mut dur, &capture).err();
            }
            // In debug builds, fsck the graph while still inside the
            // critical section: an invariant break is pinned to the
            // publication that introduced it.
            #[cfg(debug_assertions)]
            {
                let fsck = co_graph::fsck::check_graph(&eg);
                debug_assert!(fsck.is_clean(), "post-publish fsck failed:\n{fsck}");
            }
        }
        report.materializer_seconds = start.elapsed().as_secs_f64();

        let mut stats = self.stats.lock();
        match (&failure, &persist_error) {
            (None, None) => {
                stats.workloads += 1;
                stats.ops_executed += report.ops_executed;
                stats.artifacts_loaded += report.artifacts_loaded;
                stats.warmstarts += report.warmstarts;
                stats.run_seconds += report.run_seconds();
                stats.baseline_seconds += baseline;
            }
            (None, Some(_)) => {
                stats.failed_workloads += 1;
            }
            (Some(f), _) => {
                stats.failed_workloads += 1;
                stats.salvaged_artifacts += f.completed.len();
            }
        }
        drop(stats);

        match failure {
            None => match persist_error {
                None => Ok((dag, report)),
                // The run computed fine but its delta never became
                // durable: report it failed so the client knows a
                // restart would forget this workload.
                Some(error) => Err(WorkloadError {
                    error,
                    report: Box::new(report),
                    completed: Vec::new(),
                    tainted: Vec::new(),
                }),
            },
            Some(FailedExecution {
                error,
                completed,
                tainted,
            }) => {
                // When both the workload and persistence failed, the
                // workload's own error wins; the persist failure is
                // still visible through the wedged durability state.
                report.salvaged_artifacts = completed.len();
                Err(WorkloadError {
                    error,
                    report: Box::new(report),
                    completed,
                    tainted,
                })
            }
        }
    }

    /// Build and append this publish's journal delta, then compact if
    /// the journal crossed its size threshold. Called with the EG write
    /// lock held and the durability state locked.
    fn persist_delta(
        &self,
        eg: &ExperimentGraph,
        dur: &mut DurabilityState,
        capture: &DeltaCapture,
    ) -> Result<()> {
        if dur.wedged {
            return Err(GraphError::Io(
                "durability layer wedged by an earlier persistence failure; \
                 restart the server from its data directory"
                    .to_owned(),
            ));
        }
        let mut delta = EgDelta::default();
        for id in &capture.new_ids {
            delta.new_vertices.push(eg.vertex(*id)?.clone());
        }
        for id in &capture.touched_ids {
            let v = eg.vertex(*id)?;
            delta.touched.push(VertexTouch {
                id: *id,
                frequency: v.frequency,
                compute_time: v.compute_time,
                size: v.size,
                quality: v.quality,
            });
        }
        let mat_after = mat_set(eg);
        delta.mat_added = mat_after.difference(&capture.mat_before).copied().collect();
        delta.mat_removed = capture.mat_before.difference(&mat_after).copied().collect();
        let mut current = self
            .quarantine
            .as_ref()
            .map(|q| q.entries())
            .unwrap_or_default();
        current.sort_by_key(|(op, ..)| *op);
        for (op, name, failures) in &current {
            if dur.persisted_quarantine.get(op) != Some(failures) {
                delta.quarantine_set.push(QuarantineEntry {
                    op_hash: *op,
                    name: name.clone(),
                    failures: *failures,
                });
            }
        }
        let current_ops: std::collections::HashSet<OpHash> =
            current.iter().map(|(op, ..)| *op).collect();
        delta.quarantine_cleared = dur
            .persisted_quarantine
            .keys()
            .filter(|op| !current_ops.contains(op))
            .copied()
            .collect();
        delta.quarantine_cleared.sort_unstable();
        if delta.is_empty() {
            return Ok(());
        }
        let faults = eg.storage().fault_injector().map(|f| &**f);
        if let Err(e) = dur.journal.append(&delta, faults) {
            dur.wedged = true;
            return Err(e);
        }
        dur.persisted_quarantine = current
            .into_iter()
            .map(|(op, _, failures)| (op, failures))
            .collect();
        // Threshold-triggered compaction. A failure here is survivable —
        // the delta is already durable in the journal and an interrupted
        // snapshot save only leaves a temp file — so it is swallowed and
        // the next publish retries.
        if dur.journal.len_bytes() > dur.config.compact_journal_bytes
            && self.compact_locked(eg, dur).is_ok()
        {
            self.stats.lock().snapshots_compacted += 1;
        }
        Ok(())
    }

    /// Write a fresh snapshot (atomically) and truncate the journal.
    /// The snapshot is renamed into place *before* the journal resets,
    /// so a crash between the two leaves a newer snapshot plus a journal
    /// whose records replay idempotently (absolute values).
    fn compact_locked(&self, eg: &ExperimentGraph, dur: &mut DurabilityState) -> Result<()> {
        let mut entries: Vec<QuarantineEntry> = self
            .quarantine
            .as_ref()
            .map(|q| q.entries())
            .unwrap_or_default()
            .into_iter()
            .map(|(op_hash, name, failures)| QuarantineEntry {
                op_hash,
                name,
                failures,
            })
            .collect();
        entries.sort_by_key(|q| q.op_hash);
        let faults = eg.storage().fault_injector().map(|f| &**f);
        snapshot::save_with(eg, &entries, &dur.config.snapshot_path(), faults)?;
        dur.journal.reset()?;
        dur.persisted_quarantine = entries.iter().map(|q| (q.op_hash, q.failures)).collect();
        Ok(())
    }

    /// Compact durable state now: snapshot the current graph and
    /// quarantine set atomically, then truncate the journal. A no-op
    /// `Ok(())` on a server without durability.
    pub fn compact(&self) -> Result<()> {
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        {
            let eg = self.eg.read();
            let mut dur = durability.lock();
            self.compact_locked(&eg, &mut dur)?;
        }
        self.stats.lock().snapshots_compacted += 1;
        Ok(())
    }

    /// Graceful-drain hook: flush all durable state to disk — snapshot
    /// the current graph and quarantine set atomically and truncate the
    /// journal (exactly [`compact`]), so a post-drain data directory is
    /// a single clean snapshot. A no-op `Ok(())` without durability; an
    /// error if the durability layer is wedged or the snapshot fails.
    ///
    /// [`compact`]: OptimizerServer::compact
    pub fn flush_durable(&self) -> Result<()> {
        if self.is_wedged() {
            return Err(GraphError::Io(
                "durability layer wedged by an earlier persistence failure; \
                 refusing to flush — restart the server from its data directory"
                    .to_owned(),
            ));
        }
        self.compact()
    }

    /// Whether durability is wedged: an earlier journal append failed,
    /// the in-memory graph is ahead of disk, and every further persist
    /// refuses until the server restarts from its data directory.
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.durability.as_ref().is_some_and(|d| d.lock().wedged)
    }

    /// Whether this server persists to a data directory.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Cumulative lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// `EXPLAIN` for a workload: prune, plan against the current
    /// Experiment Graph, and render the decision table — without
    /// executing anything or touching the graph.
    pub fn explain(&self, mut dag: WorkloadDag) -> Result<String> {
        dag.prune()?;
        let eg = self.eg.read();
        let plan = self.planner.plan(&dag, &eg, &self.config.cost);
        Ok(crate::optimizer::explain_plan(
            &dag,
            &eg,
            &self.config.cost,
            &plan,
        ))
    }

    /// Read access to the Experiment Graph (shared lock).
    pub fn eg(&self) -> parking_lot::RwLockReadGuard<'_, ExperimentGraph> {
        self.eg.read()
    }

    /// Write access to the Experiment Graph (exclusive lock) — for
    /// offline tools and tests (e.g. seeding corruption that
    /// `co_graph::fsck` must catch). Mutations made here bypass the
    /// publish pipeline and its durability journaling.
    pub fn eg_mut(&self) -> parking_lot::RwLockWriteGuard<'_, ExperimentGraph> {
        self.eg.write()
    }

    /// Summary of storage state: (number of materialized artifacts,
    /// unique bytes held, logical bytes materialized).
    #[must_use]
    pub fn storage_stats(&self) -> (usize, u64, u64) {
        let eg = self.eg.read();
        let s = eg.storage();
        (s.n_artifacts(), s.unique_bytes(), s.logical_bytes())
    }

    /// Install a deterministic fault injector on the artifact store
    /// (tests and chaos drills; see `co_graph::faults`).
    pub fn set_fault_injector(&self, faults: Arc<FaultInjector>) {
        self.eg.write().storage_mut().set_fault_injector(faults);
    }

    /// Evict one artifact's content from the store (returns bytes
    /// freed). Reuse plans drawn before the eviction degrade to
    /// recomputation via the executor's load-miss fallback. On a durable
    /// server the mat-flag change is journaled so a restart does not
    /// resurrect the flag.
    pub fn evict_artifact(&self, id: ArtifactId) -> u64 {
        let mut eg = self.eg.write();
        let bytes = eg.storage_mut().evict(id);
        let was_restored = eg.unmark_restored_materialized(id);
        if bytes > 0 || was_restored {
            if let Some(durability) = &self.durability {
                let mut dur = durability.lock();
                if !dur.wedged {
                    let delta = EgDelta {
                        mat_removed: vec![id],
                        ..EgDelta::default()
                    };
                    let faults = eg.storage().fault_injector().map(|f| &**f);
                    if dur.journal.append(&delta, faults).is_err() {
                        dur.wedged = true;
                    }
                }
            }
        }
        bytes
    }

    /// The server's quarantine registry, if quarantining is enabled.
    #[must_use]
    pub fn quarantine(&self) -> Option<&Arc<Quarantine>> {
        self.quarantine.as_ref()
    }
}

/// What the publish path notes *before* merging a workload, so the
/// journal delta can be diffed afterwards: which merged artifacts are
/// new to the graph vs merely touched, and the pre-publish mat set.
struct DeltaCapture {
    new_ids: Vec<ArtifactId>,
    touched_ids: Vec<ArtifactId>,
    mat_before: BTreeSet<ArtifactId>,
}

impl DeltaCapture {
    fn before(eg: &ExperimentGraph, dag: &WorkloadDag, failure: Option<&FailedExecution>) -> Self {
        let merged = |i: usize| match failure {
            None => true,
            Some(f) if f.tainted.len() == dag.n_nodes() => !f.tainted[i],
            Some(_) => false,
        };
        let mut new_ids = Vec::new();
        let mut touched_ids = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // DAG order is parents-first, so `new_ids` lists new vertices in
        // an order the journal can replay with restore_vertex.
        for (i, node) in dag.nodes().iter().enumerate() {
            if merged(i) && seen.insert(node.artifact) {
                if eg.contains(node.artifact) {
                    touched_ids.push(node.artifact);
                } else {
                    new_ids.push(node.artifact);
                }
            }
        }
        DeltaCapture {
            new_ids,
            touched_ids,
            mat_before: mat_set(eg),
        }
    }
}

/// The persisted mat set: artifacts holding content plus restored mat
/// flags whose content has not repopulated yet.
fn mat_set(eg: &ExperimentGraph) -> BTreeSet<ArtifactId> {
    let mut set: BTreeSet<ArtifactId> = eg.storage().materialized_ids().into_iter().collect();
    set.extend(eg.restored_materialized().iter().copied());
    set
}

/// Restored mat flags whose content has arrived hand ownership of the
/// flag back to the store (so a later store-side eviction is visible to
/// `was_materialized`).
fn reconcile_restored_flags(eg: &mut ExperimentGraph) {
    let arrived: Vec<ArtifactId> = eg
        .restored_materialized()
        .iter()
        .copied()
        .filter(|id| eg.storage().contains(*id))
        .collect();
    for id in arrived {
        eg.unmark_restored_materialized(id);
    }
}

/// Contents produced by an executed workload, keyed by artifact. Values
/// are Arc-backed, so offering every computed dataframe to the
/// materializer costs a pointer bump per artifact, not a deep copy.
fn available_contents(dag: &WorkloadDag) -> HashMap<ArtifactId, Value> {
    dag.nodes()
        .iter()
        .filter_map(|n| n.computed.as_ref().map(|v| (n.artifact, v.clone())))
        .collect()
}

/// Estimate what this submission would have cost with no reuse at all —
/// the sum of recorded compute times over every (distinct) node the
/// terminals require. Called inside the publish critical section so the
/// graph cannot change under the walk.
fn baseline_cost(dag: &WorkloadDag, eg: &ExperimentGraph) -> f64 {
    let mut baseline = 0.0;
    let mut visited = vec![false; dag.n_nodes()];
    let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut visited[i], true) {
            continue;
        }
        let node = &dag.nodes()[i];
        baseline += node
            .compute_time
            .or_else(|| eg.vertex(node.artifact).ok().map(|v| v.compute_time))
            .unwrap_or(0.0);
        stack.extend(dag.parents(co_graph::NodeId(i)).iter().map(|p| p.0));
    }
    baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Script;
    use co_dataframe::ops::{MapFn, Predicate};
    use co_dataframe::{Column, ColumnData, DataFrame};
    use co_ml::linear::LogisticParams;

    fn frame() -> DataFrame {
        let n = 4000;
        DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float((0..n).map(f64::from).collect())),
            Column::source(
                "t",
                "y",
                ColumnData::Int((0..n).map(|i| i64::from(i >= n / 2)).collect()),
            ),
        ])
        .unwrap()
    }

    fn workload() -> WorkloadDag {
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s.train_logistic(m, "y", LogisticParams::default()).unwrap();
        s.output(model).unwrap();
        s.into_dag()
    }

    #[test]
    fn repeated_workload_is_loaded_not_recomputed() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        let (_, first) = server.run_workload(workload()).unwrap();
        assert!(first.ops_executed > 0);
        assert_eq!(first.artifacts_loaded, 0);

        let (_, second) = server.run_workload(workload()).unwrap();
        // The second run loads the terminal (or an ancestor) instead of
        // re-training.
        assert!(second.artifacts_loaded >= 1);
        assert!(second.ops_executed < first.ops_executed);
        assert!(second.run_seconds() < first.run_seconds());
    }

    #[test]
    fn baseline_never_reuses() {
        let server = OptimizerServer::new(ServerConfig::baseline());
        let (_, first) = server.run_workload(workload()).unwrap();
        let (_, second) = server.run_workload(workload()).unwrap();
        assert_eq!(second.artifacts_loaded, 0);
        assert_eq!(second.ops_executed, first.ops_executed);
        // Only sources are stored.
        let (n, ..) = server.storage_stats();
        assert_eq!(n, 1);
    }

    #[test]
    fn modified_workload_reuses_shared_prefix() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        server.run_workload(workload()).unwrap();

        // Same feature pipeline, different hyperparameters.
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s
            .train_logistic(
                m,
                "y",
                LogisticParams {
                    lr: 0.9,
                    ..LogisticParams::default()
                },
            )
            .unwrap();
        s.output(model).unwrap();

        let (_, report) = server.run_workload(s.into_dag()).unwrap();
        // The feature frame is loaded; only the new training op runs.
        assert_eq!(report.ops_executed, 1);
        assert!(report.artifacts_loaded >= 1);
    }

    #[test]
    fn helix_configuration_runs_end_to_end() {
        let server = OptimizerServer::new(ServerConfig::helix(u64::MAX));
        let (_, first) = server.run_workload(workload()).unwrap();
        let (_, second) = server.run_workload(workload()).unwrap();
        assert!(second.run_seconds() <= first.run_seconds());
        assert!(second.artifacts_loaded >= 1);
    }

    #[test]
    fn concurrent_sessions_share_the_graph() {
        let server = Arc::new(OptimizerServer::new(ServerConfig::collaborative(u64::MAX)));
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let server = Arc::clone(&server);
                scope.spawn(move |_| {
                    let (_, report) = server.run_workload(workload()).unwrap();
                    assert!(report.run_seconds() > 0.0);
                });
            }
        })
        .unwrap();
        // All four sessions converged onto one set of artifacts.
        let eg = server.eg();
        let dag = workload();
        for node in dag.nodes() {
            assert!(eg.contains(node.artifact));
        }
    }

    #[test]
    fn lifetime_stats_accumulate_and_estimate_savings() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        server.run_workload(workload()).unwrap();
        server.run_workload(workload()).unwrap();
        let stats = server.stats();
        assert_eq!(stats.workloads, 2);
        assert!(stats.artifacts_loaded >= 1);
        assert!(stats.run_seconds > 0.0);
        // The second (fully reused) run makes the baseline exceed actual.
        assert!(
            stats.seconds_saved() > 0.0,
            "baseline {} vs actual {}",
            stats.baseline_seconds,
            stats.run_seconds
        );
        // A no-reuse server saves nothing (up to timing noise: its
        // baseline equals what it actually did).
        let kg = OptimizerServer::new(ServerConfig::baseline());
        kg.run_workload(workload()).unwrap();
        let kg_stats = kg.stats();
        assert_eq!(kg_stats.workloads, 1);
        assert!(kg_stats.seconds_saved() < kg_stats.run_seconds * 0.5);
    }

    #[test]
    fn explain_renders_decisions_without_executing() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        // Cold graph: everything computes.
        let text = server.explain(workload()).unwrap();
        assert!(text.contains("compute"));
        assert!(!text.contains("LOAD"));
        assert!(text.contains("train_logistic"));
        // Explain must not have executed or stored anything.
        let (n, ..) = server.storage_stats();
        assert_eq!(n, 0);

        server.run_workload(workload()).unwrap();
        let text = server.explain(workload()).unwrap();
        assert!(text.contains("LOAD"), "after a run the plan loads:\n{text}");
    }

    #[test]
    fn warmstart_counts_are_reported() {
        let mut config = ServerConfig::collaborative(u64::MAX);
        config.warmstart = true;
        let server = OptimizerServer::new(config);
        server.run_workload(workload()).unwrap();

        // Different hyperparameters: exact reuse impossible, warmstart
        // candidate exists.
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s
            .train_logistic(
                m,
                "y",
                LogisticParams {
                    max_iter: 50,
                    ..LogisticParams::default()
                },
            )
            .unwrap();
        s.output(model).unwrap();
        let (_, report) = server.run_workload(s.into_dag()).unwrap();
        assert_eq!(report.warmstarts, 1);
    }
}
