//! The server: one shared Experiment Graph, an optimizer, and an updater
//! (paper Figure 2). [`OptimizerServer::run_workload`] drives a whole
//! client/server round trip as a staged pipeline with typed hand-offs
//! (`PrunedWorkload → PlannedWorkload → ExecutedWorkload`, see
//! [`crate::pipeline`]): prune (no lock) → plan + snapshot (read lock) →
//! execute (lock-free) → update + materialize + stats baseline (one
//! write-lock critical section). No Experiment Graph lock is ever held
//! while an `Operation::run` executes.

use crate::cost::CostModel;
use crate::executor::{self, ExecutorConfig};
use crate::failure::{Quarantine, RetryPolicy, WorkloadError};
use crate::materialize::{
    AllMaterializer, GreedyMaterializer, HelixMaterializer, Materializer, NoneMaterializer,
    StorageAwareMaterializer,
};
use crate::optimizer::{AllMaterializedReuse, HelixReuse, LinearReuse, NoReuse, ReusePlanner};
use crate::pipeline::{ExecutedWorkload, FailedExecution, PlannedWorkload, PrunedWorkload};
use crate::report::ExecutionReport;
use co_graph::{
    ArtifactId, ExperimentGraph, FaultInjector, GraphError, Result, Value, WorkloadDag,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Which materialization algorithm the updater runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaterializerKind {
    /// Storage-aware with column dedup (`SA`, the paper's default).
    StorageAware,
    /// ML-based greedy with nominal sizes (`HM`).
    Greedy,
    /// Greedy with an artifact-count cap (Figure 8(b)'s one-artifact
    /// budget).
    GreedyCapped(usize),
    /// The Helix baseline (`HL`).
    Helix,
    /// Materialize everything (`ALL`).
    All,
    /// Materialize nothing (`KG` baseline).
    None,
}

/// Which reuse planner the optimizer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseKind {
    /// Linear-time forward/backward (`LN`, the paper's algorithm).
    Linear,
    /// Helix PSP + max-flow (`HL`).
    Helix,
    /// Load every materialized artifact (`ALL_M`).
    AllMaterialized,
    /// Recompute everything (`ALL_C` / `KG`).
    None,
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Storage budget in bytes.
    pub budget: u64,
    /// Quality-vs-cost weight `α` (paper default 0.5).
    pub alpha: f64,
    /// Materialization algorithm.
    pub materializer: MaterializerKind,
    /// Reuse planner.
    pub reuse: ReuseKind,
    /// Load-cost model.
    pub cost: CostModel,
    /// Warmstart training operations.
    pub warmstart: bool,
    /// Retry policy for transient operation failures.
    pub retry: RetryPolicy,
    /// Quarantine operations after this many consecutive permanent
    /// failures (`None` disables the quarantine).
    pub quarantine_after: Option<usize>,
}

impl ServerConfig {
    /// The paper's default configuration: storage-aware materialization,
    /// linear reuse, α = 0.5, in-memory EG, no warmstarting.
    #[must_use]
    pub fn collaborative(budget: u64) -> Self {
        ServerConfig {
            budget,
            alpha: 0.5,
            materializer: MaterializerKind::StorageAware,
            reuse: ReuseKind::Linear,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
        }
    }

    /// The `KG` baseline: no storage, no reuse — every workload runs from
    /// scratch.
    #[must_use]
    pub fn baseline() -> Self {
        ServerConfig {
            budget: 0,
            alpha: 0.5,
            materializer: MaterializerKind::None,
            reuse: ReuseKind::None,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
        }
    }

    /// The Helix comparison system: Helix materializer + Helix reuse.
    #[must_use]
    pub fn helix(budget: u64) -> Self {
        ServerConfig {
            budget,
            alpha: 0.5,
            materializer: MaterializerKind::Helix,
            reuse: ReuseKind::Helix,
            cost: CostModel::memory(),
            warmstart: false,
            retry: RetryPolicy::default(),
            quarantine_after: Some(3),
        }
    }
}

/// Cumulative statistics over a server's lifetime — the dashboard
/// counters of the motivating example ("saves hundreds of hours of
/// execution time ... reduces the required resources and operation cost
/// of Kaggle").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Workloads served.
    pub workloads: usize,
    /// Operations actually executed across all workloads.
    pub ops_executed: usize,
    /// Artifacts served from the Experiment Graph.
    pub artifacts_loaded: usize,
    /// Training operations warmstarted.
    pub warmstarts: usize,
    /// Total client-visible run time (compute + charged loads), seconds.
    pub run_seconds: f64,
    /// Estimated time the same submissions would have cost with no reuse
    /// at all, seconds (from the Experiment Graph's recorded compute
    /// times).
    pub baseline_seconds: f64,
    /// Workloads that terminated with an error.
    pub failed_workloads: usize,
    /// Vertices salvaged into the Experiment Graph from failed runs.
    pub salvaged_artifacts: usize,
}

impl ServerStats {
    /// Estimated seconds saved by the optimizer so far.
    #[must_use]
    pub fn seconds_saved(&self) -> f64 {
        (self.baseline_seconds - self.run_seconds).max(0.0)
    }
}

/// The collaborative optimizer server.
pub struct OptimizerServer {
    eg: RwLock<ExperimentGraph>,
    config: ServerConfig,
    materializer: Box<dyn Materializer>,
    planner: Box<dyn ReusePlanner>,
    stats: parking_lot::Mutex<ServerStats>,
    quarantine: Option<Arc<Quarantine>>,
}

impl OptimizerServer {
    /// Create a server. The Experiment Graph store deduplicates columns
    /// iff the configured materializer is storage-aware.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        let dedup = config.materializer == MaterializerKind::StorageAware;
        OptimizerServer::build(config, ExperimentGraph::new(dedup))
    }

    /// Assemble a server around the given graph (shared by [`new`] and
    /// [`with_graph`]).
    ///
    /// [`new`]: OptimizerServer::new
    /// [`with_graph`]: OptimizerServer::with_graph
    fn build(config: ServerConfig, eg: ExperimentGraph) -> Self {
        let materializer: Box<dyn Materializer> = match config.materializer {
            MaterializerKind::StorageAware => Box::new(StorageAwareMaterializer {
                budget: config.budget,
                alpha: config.alpha,
            }),
            MaterializerKind::Greedy => Box::new(GreedyMaterializer {
                budget: config.budget,
                alpha: config.alpha,
                max_artifacts: None,
            }),
            MaterializerKind::GreedyCapped(n) => Box::new(GreedyMaterializer {
                budget: config.budget,
                alpha: config.alpha,
                max_artifacts: Some(n),
            }),
            MaterializerKind::Helix => Box::new(HelixMaterializer {
                budget: config.budget,
            }),
            MaterializerKind::All => Box::new(AllMaterializer),
            MaterializerKind::None => Box::new(NoneMaterializer),
        };
        let planner: Box<dyn ReusePlanner> = match config.reuse {
            ReuseKind::Linear => Box::new(LinearReuse),
            ReuseKind::Helix => Box::new(HelixReuse),
            ReuseKind::AllMaterialized => Box::new(AllMaterializedReuse),
            ReuseKind::None => Box::new(NoReuse),
        };
        OptimizerServer {
            eg: RwLock::new(eg),
            quarantine: config
                .quarantine_after
                .map(|k| Arc::new(Quarantine::new(k))),
            config,
            materializer,
            planner,
            stats: parking_lot::Mutex::new(ServerStats::default()),
        }
    }

    /// Create a server around an existing Experiment Graph — e.g. one
    /// restored from a meta-data snapshot (`co_graph::snapshot`) after a
    /// restart.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidStructure`] when the restored graph's
    /// store deduplication mode does not match the configured
    /// materializer: the storage-aware algorithm budgets *deduplicated*
    /// bytes, every other materializer budgets nominal bytes, so a
    /// mismatch silently mis-accounts the storage budget.
    pub fn with_graph(config: ServerConfig, eg: ExperimentGraph) -> Result<Self> {
        let dedup = config.materializer == MaterializerKind::StorageAware;
        if eg.storage().dedup_enabled() != dedup {
            return Err(GraphError::InvalidStructure(format!(
                "experiment graph store dedup={} but the {:?} materializer requires dedup={}",
                eg.storage().dedup_enabled(),
                config.materializer,
                dedup
            )));
        }
        Ok(OptimizerServer::build(config, eg))
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Run one workload end to end by composing the pipeline stages
    /// ([`plan_workload`] → [`PlannedWorkload::execute`] →
    /// [`publish_workload`]). Returns the executed DAG (terminal values
    /// populated) and the execution report.
    ///
    /// [`plan_workload`]: OptimizerServer::plan_workload
    /// [`publish_workload`]: OptimizerServer::publish_workload
    ///
    /// On failure the returned [`WorkloadError`] still carries the
    /// report and the taint mask, and the server has already *salvaged*
    /// the successfully computed prefix: untainted vertices are merged
    /// into the Experiment Graph and offered to the materializer, so a
    /// resubmission of the same (or an overlapping) workload reuses them
    /// instead of recomputing.
    pub fn run_workload(
        &self,
        dag: WorkloadDag,
    ) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
        // Stage 1 (client, no lock): local pruning.
        let pruned = PrunedWorkload::new(dag)?;
        // Stage 2 (server, read lock): reuse planning + snapshot.
        let planned = self.plan_workload(pruned)?;
        // Stage 3 (client, lock-free): execution against the snapshot.
        let executed = planned.execute(&self.executor_config());
        // Stage 4 (server, one write-lock critical section): publish.
        self.publish_workload(executed)
    }

    /// The executor configuration derived from the server's.
    #[must_use]
    pub fn executor_config(&self) -> ExecutorConfig {
        ExecutorConfig {
            cost: self.config.cost,
            warmstart: self.config.warmstart,
            retry: self.config.retry,
            quarantine: self.quarantine.clone(),
        }
    }

    /// Pipeline stage 2 (paper step 3): plan reuse against the Experiment
    /// Graph and capture the execution snapshot — planned loads fetched
    /// up front as Arc clones, warmstart candidates prefetched. The EG
    /// read lock is held only for the duration of this call; the returned
    /// [`PlannedWorkload`] executes without touching the graph.
    pub fn plan_workload(
        &self,
        pruned: PrunedWorkload,
    ) -> std::result::Result<PlannedWorkload, WorkloadError> {
        let PrunedWorkload { dag } = pruned;
        let eg = self.eg.read();
        let start = Instant::now();
        let plan = self.planner.plan(&dag, &eg, &self.config.cost);
        let optimizer_seconds = start.elapsed().as_secs_f64();
        let snapshot = executor::snapshot(&dag, &plan, &eg, &self.executor_config())
            .map_err(WorkloadError::from)?;
        Ok(PlannedWorkload {
            dag,
            snapshot,
            optimizer_seconds,
        })
    }

    /// Pipeline stage 4 (paper step 5): merge the executed DAG into the
    /// Experiment Graph, run the materializer, and take the baseline-cost
    /// estimate — all inside one short write-lock critical section, so a
    /// concurrent eviction or update cannot skew the estimate and writers
    /// never wait on a running computation. A failed run with a taint
    /// mask still merges (salvages) its untainted prefix.
    pub fn publish_workload(
        &self,
        executed: ExecutedWorkload,
    ) -> std::result::Result<(WorkloadDag, ExecutionReport), WorkloadError> {
        let ExecutedWorkload {
            dag,
            mut report,
            failure,
        } = executed;
        let start = Instant::now();
        let baseline;
        {
            let mut eg = self.eg.write();
            match &failure {
                None => eg.update_with_workload(&dag)?,
                Some(f) if f.tainted.len() == dag.n_nodes() => {
                    let keep: Vec<bool> = f.tainted.iter().map(|t| !t).collect();
                    eg.update_with_workload_partial(&dag, &keep)?;
                }
                // Failed before execution (bad plan, no terminals):
                // nothing to merge.
                Some(_) => {}
            }
            // Executed values merge back as Arc clones: the store and
            // the returned DAG share the same allocations.
            let available = available_contents(&dag);
            self.materializer
                .run(&mut eg, &available, &self.config.cost);
            baseline = baseline_cost(&dag, &eg);
        }
        report.materializer_seconds = start.elapsed().as_secs_f64();

        let mut stats = self.stats.lock();
        match &failure {
            None => {
                stats.workloads += 1;
                stats.ops_executed += report.ops_executed;
                stats.artifacts_loaded += report.artifacts_loaded;
                stats.warmstarts += report.warmstarts;
                stats.run_seconds += report.run_seconds();
                stats.baseline_seconds += baseline;
            }
            Some(f) => {
                stats.failed_workloads += 1;
                stats.salvaged_artifacts += f.completed.len();
            }
        }
        drop(stats);

        match failure {
            None => Ok((dag, report)),
            Some(FailedExecution {
                error,
                completed,
                tainted,
            }) => {
                report.salvaged_artifacts = completed.len();
                Err(WorkloadError {
                    error,
                    report: Box::new(report),
                    completed,
                    tainted,
                })
            }
        }
    }

    /// Cumulative lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// `EXPLAIN` for a workload: prune, plan against the current
    /// Experiment Graph, and render the decision table — without
    /// executing anything or touching the graph.
    pub fn explain(&self, mut dag: WorkloadDag) -> Result<String> {
        dag.prune()?;
        let eg = self.eg.read();
        let plan = self.planner.plan(&dag, &eg, &self.config.cost);
        Ok(crate::optimizer::explain_plan(
            &dag,
            &eg,
            &self.config.cost,
            &plan,
        ))
    }

    /// Read access to the Experiment Graph (shared lock).
    pub fn eg(&self) -> parking_lot::RwLockReadGuard<'_, ExperimentGraph> {
        self.eg.read()
    }

    /// Summary of storage state: (number of materialized artifacts,
    /// unique bytes held, logical bytes materialized).
    #[must_use]
    pub fn storage_stats(&self) -> (usize, u64, u64) {
        let eg = self.eg.read();
        let s = eg.storage();
        (s.n_artifacts(), s.unique_bytes(), s.logical_bytes())
    }

    /// Install a deterministic fault injector on the artifact store
    /// (tests and chaos drills; see `co_graph::faults`).
    pub fn set_fault_injector(&self, faults: Arc<FaultInjector>) {
        self.eg.write().storage_mut().set_fault_injector(faults);
    }

    /// Evict one artifact's content from the store (returns bytes
    /// freed). Reuse plans drawn before the eviction degrade to
    /// recomputation via the executor's load-miss fallback.
    pub fn evict_artifact(&self, id: co_graph::ArtifactId) -> u64 {
        self.eg.write().storage_mut().evict(id)
    }

    /// The server's quarantine registry, if quarantining is enabled.
    #[must_use]
    pub fn quarantine(&self) -> Option<&Arc<Quarantine>> {
        self.quarantine.as_ref()
    }
}

/// Contents produced by an executed workload, keyed by artifact. Values
/// are Arc-backed, so offering every computed dataframe to the
/// materializer costs a pointer bump per artifact, not a deep copy.
fn available_contents(dag: &WorkloadDag) -> HashMap<ArtifactId, Value> {
    dag.nodes()
        .iter()
        .filter_map(|n| n.computed.as_ref().map(|v| (n.artifact, v.clone())))
        .collect()
}

/// Estimate what this submission would have cost with no reuse at all —
/// the sum of recorded compute times over every (distinct) node the
/// terminals require. Called inside the publish critical section so the
/// graph cannot change under the walk.
fn baseline_cost(dag: &WorkloadDag, eg: &ExperimentGraph) -> f64 {
    let mut baseline = 0.0;
    let mut visited = vec![false; dag.n_nodes()];
    let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut visited[i], true) {
            continue;
        }
        let node = &dag.nodes()[i];
        baseline += node
            .compute_time
            .or_else(|| eg.vertex(node.artifact).ok().map(|v| v.compute_time))
            .unwrap_or(0.0);
        stack.extend(dag.parents(co_graph::NodeId(i)).iter().map(|p| p.0));
    }
    baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Script;
    use co_dataframe::ops::{MapFn, Predicate};
    use co_dataframe::{Column, ColumnData, DataFrame};
    use co_ml::linear::LogisticParams;

    fn frame() -> DataFrame {
        let n = 4000;
        DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float((0..n).map(f64::from).collect())),
            Column::source(
                "t",
                "y",
                ColumnData::Int((0..n).map(|i| i64::from(i >= n / 2)).collect()),
            ),
        ])
        .unwrap()
    }

    fn workload() -> WorkloadDag {
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s.train_logistic(m, "y", LogisticParams::default()).unwrap();
        s.output(model).unwrap();
        s.into_dag()
    }

    #[test]
    fn repeated_workload_is_loaded_not_recomputed() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        let (_, first) = server.run_workload(workload()).unwrap();
        assert!(first.ops_executed > 0);
        assert_eq!(first.artifacts_loaded, 0);

        let (_, second) = server.run_workload(workload()).unwrap();
        // The second run loads the terminal (or an ancestor) instead of
        // re-training.
        assert!(second.artifacts_loaded >= 1);
        assert!(second.ops_executed < first.ops_executed);
        assert!(second.run_seconds() < first.run_seconds());
    }

    #[test]
    fn baseline_never_reuses() {
        let server = OptimizerServer::new(ServerConfig::baseline());
        let (_, first) = server.run_workload(workload()).unwrap();
        let (_, second) = server.run_workload(workload()).unwrap();
        assert_eq!(second.artifacts_loaded, 0);
        assert_eq!(second.ops_executed, first.ops_executed);
        // Only sources are stored.
        let (n, ..) = server.storage_stats();
        assert_eq!(n, 1);
    }

    #[test]
    fn modified_workload_reuses_shared_prefix() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        server.run_workload(workload()).unwrap();

        // Same feature pipeline, different hyperparameters.
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s
            .train_logistic(
                m,
                "y",
                LogisticParams {
                    lr: 0.9,
                    ..LogisticParams::default()
                },
            )
            .unwrap();
        s.output(model).unwrap();

        let (_, report) = server.run_workload(s.into_dag()).unwrap();
        // The feature frame is loaded; only the new training op runs.
        assert_eq!(report.ops_executed, 1);
        assert!(report.artifacts_loaded >= 1);
    }

    #[test]
    fn helix_configuration_runs_end_to_end() {
        let server = OptimizerServer::new(ServerConfig::helix(u64::MAX));
        let (_, first) = server.run_workload(workload()).unwrap();
        let (_, second) = server.run_workload(workload()).unwrap();
        assert!(second.run_seconds() <= first.run_seconds());
        assert!(second.artifacts_loaded >= 1);
    }

    #[test]
    fn concurrent_sessions_share_the_graph() {
        let server =
            std::sync::Arc::new(OptimizerServer::new(ServerConfig::collaborative(u64::MAX)));
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let server = std::sync::Arc::clone(&server);
                scope.spawn(move |_| {
                    let (_, report) = server.run_workload(workload()).unwrap();
                    assert!(report.run_seconds() > 0.0);
                });
            }
        })
        .unwrap();
        // All four sessions converged onto one set of artifacts.
        let eg = server.eg();
        let dag = workload();
        for node in dag.nodes() {
            assert!(eg.contains(node.artifact));
        }
    }

    #[test]
    fn lifetime_stats_accumulate_and_estimate_savings() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        server.run_workload(workload()).unwrap();
        server.run_workload(workload()).unwrap();
        let stats = server.stats();
        assert_eq!(stats.workloads, 2);
        assert!(stats.artifacts_loaded >= 1);
        assert!(stats.run_seconds > 0.0);
        // The second (fully reused) run makes the baseline exceed actual.
        assert!(
            stats.seconds_saved() > 0.0,
            "baseline {} vs actual {}",
            stats.baseline_seconds,
            stats.run_seconds
        );
        // A no-reuse server saves nothing (up to timing noise: its
        // baseline equals what it actually did).
        let kg = OptimizerServer::new(ServerConfig::baseline());
        kg.run_workload(workload()).unwrap();
        let kg_stats = kg.stats();
        assert_eq!(kg_stats.workloads, 1);
        assert!(kg_stats.seconds_saved() < kg_stats.run_seconds * 0.5);
    }

    #[test]
    fn explain_renders_decisions_without_executing() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        // Cold graph: everything computes.
        let text = server.explain(workload()).unwrap();
        assert!(text.contains("compute"));
        assert!(!text.contains("LOAD"));
        assert!(text.contains("train_logistic"));
        // Explain must not have executed or stored anything.
        let (n, ..) = server.storage_stats();
        assert_eq!(n, 0);

        server.run_workload(workload()).unwrap();
        let text = server.explain(workload()).unwrap();
        assert!(text.contains("LOAD"), "after a run the plan loads:\n{text}");
    }

    #[test]
    fn warmstart_counts_are_reported() {
        let mut config = ServerConfig::collaborative(u64::MAX);
        config.warmstart = true;
        let server = OptimizerServer::new(config);
        server.run_workload(workload()).unwrap();

        // Different hyperparameters: exact reuse impossible, warmstart
        // candidate exists.
        let mut s = Script::new();
        let data = s.load("t", frame());
        let f = s.filter(data, Predicate::gt_f("x", 100.0)).unwrap();
        let m = s.map(f, "x", MapFn::Log1p, "lx").unwrap();
        let model = s
            .train_logistic(
                m,
                "y",
                LogisticParams {
                    max_iter: 50,
                    ..LogisticParams::default()
                },
            )
            .unwrap();
        s.output(model).unwrap();
        let (_, report) = server.run_workload(s.into_dag()).unwrap();
        assert_eq!(report.warmstarts, 1);
    }
}
