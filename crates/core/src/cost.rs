//! The load-cost model `Cl(v)`.
//!
//! The paper (§5.2): "The `Cl(v)` function depends on the size of the
//! vertex and where EG resides (i.e., in memory, on disk, or in a remote
//! location)." In this reproduction the Experiment Graph lives in-process,
//! so loading an artifact is physically an `Arc` clone; to recreate the
//! paper's load-vs-recompute trade-off the executor *charges* the modelled
//! load cost to its virtual clock and reports it alongside measured
//! compute time (see `DESIGN.md`, substitution table).

/// Linear load-cost model: `latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-artifact retrieval latency, in seconds.
    pub latency_s: f64,
    /// Transfer bandwidth, in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl CostModel {
    /// EG in the memory of the same machine (the paper's default setup:
    /// "since EG is inside the memory of the machine, load times are
    /// generally low").
    #[must_use]
    pub fn memory() -> Self {
        CostModel {
            latency_s: 2e-5,
            bandwidth_bytes_per_s: 20e9,
        }
    }

    /// EG on local disk.
    #[must_use]
    pub fn disk() -> Self {
        CostModel {
            latency_s: 5e-3,
            bandwidth_bytes_per_s: 500e6,
        }
    }

    /// EG on a remote store.
    #[must_use]
    pub fn remote() -> Self {
        CostModel {
            latency_s: 5e-2,
            bandwidth_bytes_per_s: 100e6,
        }
    }

    /// `Cl(v)` for an artifact of the given size.
    #[must_use]
    pub fn load_cost(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grows_with_size_and_medium() {
        let mem = CostModel::memory();
        let disk = CostModel::disk();
        let remote = CostModel::remote();
        let size = 100 << 20; // 100 MB
        assert!(mem.load_cost(size) < disk.load_cost(size));
        assert!(disk.load_cost(size) < remote.load_cost(size));
        assert!(mem.load_cost(0) > 0.0); // latency floor
        assert!(mem.load_cost(2 * size) > mem.load_cost(size));
    }

    #[test]
    fn disk_costs_are_plausible() {
        // 500 MB at 500 MB/s ~ 1s + latency.
        let c = CostModel::disk().load_cost(500 << 20);
        assert!((0.9..1.3).contains(&c), "cost = {c}");
    }
}
