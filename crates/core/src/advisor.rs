//! Pipeline and hyperparameter advice from Experiment Graph meta-data —
//! the paper's stated future work (§9: "EG contains valuable information
//! about the meta-data and hyperparameters of the feature engineering and
//! model training operations. In future work, we plan to utilize this
//! information to automatically construct ML pipelines and tune
//! hyperparameters").
//!
//! The advisor is read-only over the graph: it ranks the models the
//! community has already trained — globally, or on one specific feature
//! artifact — exposing each model's type + hyperparameter digest, its
//! evaluation score, how often its pipeline recurred, and whether its
//! content is on hand (materialized ⇒ instantly reusable or
//! warmstartable).

use co_graph::{ArtifactId, ExperimentGraph, NodeKind};

/// One ranked model suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecommendation {
    /// The model artifact.
    pub artifact: ArtifactId,
    /// Meta-data digest: `"<kind>:<hyperparameters>"` (e.g.
    /// `"gbt:n=8,lr=0.25,depth=3,..."`).
    pub description: String,
    /// Evaluation score `q` of the model.
    pub quality: f64,
    /// How many workloads produced this exact model.
    pub frequency: u64,
    /// Whether the model content is materialized (reusable now).
    pub materialized: bool,
    /// Length of the longest operation chain from a source to this model
    /// — a proxy for pipeline complexity.
    pub pipeline_depth: usize,
}

fn depth_of(eg: &ExperimentGraph, id: ArtifactId) -> usize {
    // Longest path from any source; graphs are modest, recompute per call.
    let mut depth = std::collections::HashMap::new();
    for v in eg.topo_order() {
        let vertex = eg.vertex(*v).expect("topo lists known vertices"); // co-lint:allow(no-panic) topo_order only yields ids present in the graph
        let d = vertex
            .parents
            .iter()
            .map(|p| depth.get(p).copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
        depth.insert(*v, d);
    }
    depth.get(&id).copied().unwrap_or(0)
}

fn rank(mut out: Vec<ModelRecommendation>, top_k: usize) -> Vec<ModelRecommendation> {
    out.sort_by(|a, b| {
        b.quality
            .partial_cmp(&a.quality)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.frequency.cmp(&a.frequency))
            .then_with(|| a.artifact.cmp(&b.artifact))
    });
    out.truncate(top_k);
    out
}

/// The community leaderboard: the best models anywhere in the graph,
/// ranked by quality (ties by recurrence).
#[must_use]
pub fn leaderboard(eg: &ExperimentGraph, top_k: usize) -> Vec<ModelRecommendation> {
    let out = eg
        .vertices()
        .filter(|v| v.kind == NodeKind::Model)
        .map(|v| ModelRecommendation {
            artifact: v.id,
            description: v.description.clone(),
            quality: v.quality,
            frequency: v.frequency,
            materialized: eg.is_materialized(v.id),
            pipeline_depth: depth_of(eg, v.id),
        })
        .collect();
    rank(out, top_k)
}

/// Hyperparameter advice for a training operation on `train_input`: the
/// models already trained *on that artifact*, best first. The top entry's
/// description carries the hyperparameters to copy; if it is
/// materialized it is also the warmstart candidate the executor would
/// pick (§6.2).
#[must_use]
pub fn recommend_for_input(
    eg: &ExperimentGraph,
    train_input: ArtifactId,
    top_k: usize,
) -> Vec<ModelRecommendation> {
    let Ok(input) = eg.vertex(train_input) else {
        return Vec::new();
    };
    let out = input
        .children
        .iter()
        .filter_map(|c| eg.vertex(*c).ok())
        .filter(|v| v.kind == NodeKind::Model)
        .map(|v| ModelRecommendation {
            artifact: v.id,
            description: v.description.clone(),
            quality: v.quality,
            frequency: v.frequency,
            materialized: eg.is_materialized(v.id),
            pipeline_depth: depth_of(eg, v.id),
        })
        .collect();
    rank(out, top_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Script;
    use crate::ops::EvalMetric;
    use crate::{OptimizerServer, ServerConfig};
    use co_dataframe::{Column, ColumnData, DataFrame};
    use co_ml::linear::LogisticParams;
    use co_ml::tree::GbtParams;

    fn frame() -> DataFrame {
        let n = 200;
        DataFrame::new(vec![
            Column::source(
                "t",
                "x",
                ColumnData::Float((0..n).map(|i| f64::from(i) / 100.0).collect()),
            ),
            Column::source(
                "t",
                "y",
                ColumnData::Int((0..n).map(|i| i64::from(i >= n / 2)).collect()),
            ),
        ])
        .unwrap()
    }

    fn submit(server: &OptimizerServer, lr: f64, max_iter: usize) {
        let mut s = Script::new();
        let d = s.load("t", frame());
        let m = s
            .train_logistic(
                d,
                "y",
                LogisticParams {
                    lr,
                    max_iter,
                    ..LogisticParams::default()
                },
            )
            .unwrap();
        let e = s.evaluate(m, d, "y", EvalMetric::RocAuc).unwrap();
        s.output(e).unwrap();
        server.run_workload(s.into_dag()).unwrap();
    }

    #[test]
    fn leaderboard_ranks_by_quality() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        submit(&server, 0.1, 0); // zero epochs: constant scores, AUC 0.5
        submit(&server, 0.5, 300); // a strong model
                                   // A GBT on the same data, different family.
        let mut s = Script::new();
        let d = s.load("t", frame());
        let m = s.train_gbt(d, "y", GbtParams::default()).unwrap();
        s.output(m).unwrap();
        server.run_workload(s.into_dag()).unwrap();

        let eg = server.eg();
        let board = leaderboard(&eg, 10);
        assert_eq!(board.len(), 3);
        assert!(board[0].quality >= board[1].quality);
        assert!(board[1].quality >= board[2].quality);
        assert!(board[0].quality > 0.9);
        assert!(
            board.last().unwrap().quality < 0.6,
            "the zero-epoch run scores at chance: {}",
            board.last().unwrap().quality
        );
        assert!(board[0].materialized);
        assert!(board[0].pipeline_depth >= 1);
        // top_k truncates.
        assert_eq!(leaderboard(&eg, 2).len(), 2);
    }

    #[test]
    fn input_specific_advice_surfaces_hyperparameters() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        submit(&server, 0.1, 0); // chance-level model
        submit(&server, 0.5, 300);
        let eg = server.eg();
        let input = ArtifactId::source("t");
        let advice = recommend_for_input(&eg, input, 10);
        assert_eq!(advice.len(), 2, "two logistic models trained on the source");
        assert!(advice[0].quality > advice[1].quality);
        // The description carries copyable hyperparameters.
        assert!(advice[0].description.starts_with("logistic:"));
        assert!(advice[0].description.contains("lr=0.5"));
        // Unknown artifacts give empty advice.
        assert!(recommend_for_input(&eg, ArtifactId(42), 5).is_empty());
    }

    #[test]
    fn frequency_breaks_quality_ties() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        submit(&server, 0.5, 300);
        submit(&server, 0.5, 300); // exact repeat: frequency 2
        submit(&server, 0.5, 301); // same quality in practice, frequency 1
        let eg = server.eg();
        let advice = recommend_for_input(&eg, ArtifactId::source("t"), 10);
        assert_eq!(advice.len(), 2);
        if (advice[0].quality - advice[1].quality).abs() < 1e-12 {
            assert!(advice[0].frequency >= advice[1].frequency);
        }
    }
}
