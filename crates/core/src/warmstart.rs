//! Warmstart candidate search (paper §6.2).
//!
//! "A warmstarting candidate is a model that is trained on the same
//! artifact and is of the same type as the model in the workload DAG.
//! When there are multiple candidates ... we select the model with the
//! highest quality."

use co_graph::{ArtifactId, GraphQuery, NodeKind};
use co_ml::{ModelKind, TrainedModel};

/// Find the best warmstart candidate for a training operation that
/// consumes `train_input` and produces a model of `kind`. `exclude` is the
/// artifact the operation itself would produce (an exact match is a reuse,
/// not a warmstart). Returns the materialized model with the highest
/// quality, if any. The graph is read through [`GraphQuery`], so the
/// search works over a plain `ExperimentGraph` or a sharded view alike
/// (children may live on a different shard than their parent).
#[must_use]
pub fn find_candidate(
    eg: &dyn GraphQuery,
    train_input: ArtifactId,
    kind: ModelKind,
    exclude: ArtifactId,
) -> Option<TrainedModel> {
    let input = eg.lookup(train_input)?;
    let mut best: Option<(f64, ArtifactId)> = None;
    for &child in &input.children {
        if child == exclude {
            continue;
        }
        let Some(v) = eg.lookup(child) else { continue };
        if v.kind != NodeKind::Model || !eg.has_content(child) {
            continue;
        }
        // Model vertices describe themselves as "<kind>:<params>".
        if !v.description.starts_with(kind.name())
            || v.description.as_bytes().get(kind.name().len()) != Some(&b':')
        {
            continue;
        }
        if best.is_none_or(|(q, _)| v.quality > q) {
            best = Some((v.quality, child));
        }
    }
    let (_, candidate) = best?;
    eg.load_content(candidate)?
        .as_model()
        .map(|m| m.model.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::Scalar;
    use co_graph::{ExperimentGraph, ModelArtifact, Operation, Value, WorkloadDag};
    use co_ml::linear::{LogisticParams, LogisticRegression};
    use co_ml::Matrix;
    use std::sync::Arc;

    struct TrainTag {
        label: &'static str,
        quality: f64,
    }
    impl Operation for TrainTag {
        fn name(&self) -> &str {
            self.label
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Model
        }
        fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
            Ok(Value::model(ModelArtifact::new(logistic(), self.quality)))
        }
    }

    fn logistic() -> TrainedModel {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        TrainedModel::Logistic(
            LogisticRegression::new(LogisticParams::default())
                .fit(&x, &[0.0, 1.0])
                .unwrap(),
        )
    }

    fn model_value(q: f64) -> Value {
        Value::model(ModelArtifact::new(logistic(), q))
    }

    /// Build an EG where `data` has two trained logistic models (q = 0.6
    /// materialized, q = 0.9 maybe materialized) and one aggregate child.
    fn setup(materialize_best: bool) -> (ExperimentGraph, ArtifactId, ArtifactId) {
        let mut dag = WorkloadDag::new();
        let data = dag.add_source("data", Value::Aggregate(Scalar::Float(0.0)));
        let weak = dag
            .add_op(
                Arc::new(TrainTag {
                    label: "train_a",
                    quality: 0.6,
                }),
                &[data],
            )
            .unwrap();
        let strong = dag
            .add_op(
                Arc::new(TrainTag {
                    label: "train_b",
                    quality: 0.9,
                }),
                &[data],
            )
            .unwrap();
        dag.mark_terminal(strong).unwrap();
        dag.mark_terminal(weak).unwrap();
        for (n, q) in [(weak, 0.6), (strong, 0.9)] {
            dag.annotate(n, 1.0, 100).unwrap();
            dag.node_mut(n).unwrap().quality = q;
            dag.set_computed(n, model_value(q)).unwrap();
        }
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        // Descriptions come from computed values; materialize contents.
        let weak_id = dag.nodes()[weak.0].artifact;
        let strong_id = dag.nodes()[strong.0].artifact;
        eg.storage_mut().store(weak_id, &model_value(0.6));
        if materialize_best {
            eg.storage_mut().store(strong_id, &model_value(0.9));
        }
        (eg, dag.nodes()[data.0].artifact, strong_id)
    }

    #[test]
    fn picks_highest_quality_materialized_model() {
        let (eg, data, _strong) = setup(true);
        let m = find_candidate(&eg, data, ModelKind::Logistic, ArtifactId(0)).unwrap();
        assert_eq!(m.kind(), ModelKind::Logistic);
        // The strong model (q = 0.9) wins; verify by quality lookup.
        let input = eg.vertex(data).unwrap();
        let best_q = input
            .children
            .iter()
            .filter(|c| eg.is_materialized(**c))
            .map(|c| eg.vertex(*c).unwrap().quality)
            .fold(0.0, f64::max);
        assert_eq!(best_q, 0.9);
    }

    #[test]
    fn falls_back_to_weaker_materialized_model() {
        let (eg, data, _) = setup(false);
        // Only the weak model is materialized; it is still a candidate.
        let m = find_candidate(&eg, data, ModelKind::Logistic, ArtifactId(0));
        assert!(m.is_some());
    }

    #[test]
    fn excludes_exact_match_and_wrong_kind() {
        let (eg, data, strong_id) = setup(true);
        // Excluding the strong model falls back to the weak one.
        let m = find_candidate(&eg, data, ModelKind::Logistic, strong_id);
        assert!(m.is_some());
        // No SVM was ever trained on this artifact.
        assert!(find_candidate(&eg, data, ModelKind::Svm, ArtifactId(0)).is_none());
        // Unknown input artifact.
        assert!(find_candidate(&eg, ArtifactId(123), ModelKind::Logistic, ArtifactId(0)).is_none());
    }
}
