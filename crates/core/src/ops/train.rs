//! Model-training and evaluation operations (the paper's
//! `TrainOperation`s).
//!
//! Training operations take a single `Dataset` input containing the label
//! column, fit the model on all numeric feature columns, and emit a
//! `Model` artifact whose initial quality `q` is the training-set ROC AUC.
//! A downstream [`EvaluateOp`] refines `q` with a held-out score (the
//! executor feeds the evaluation result back to the model vertex).
//!
//! Iterative trainers declare themselves warmstartable (paper §4.2:
//! "users must specify whether the training operation can be warmstarted")
//! and accept an initialiser through `run_warm`.

use super::{arity, dataset_input};
use co_dataframe::schema::{replace_column, DType};
use co_graph::meta::{self, DatasetMeta, MetaCode, MetaError, MetaResult, ModelMeta, ValueMeta};
use co_graph::{GraphError, ModelArtifact, NodeKind, Operation, Result, Value};
use co_ml::dataset::supervised;
use co_ml::linear::{
    LinearSvc, LogisticParams, LogisticRegression, RidgeParams, RidgeRegression, SvmParams,
};
use co_ml::metrics::{accuracy, log_loss, roc_auc};
use co_ml::tree::{
    DecisionTree, ForestParams, GbtParams, GradientBoosting, RandomForest, TreeParams,
};
use co_ml::{Matrix, ModelKind, TrainedModel};

fn ml_err(op: &str, e: co_ml::MlError) -> GraphError {
    GraphError::from_ml(op, &e)
}

/// Fit + wrap: score the model on its training data for the initial `q`.
fn model_value(model: TrainedModel, x: &Matrix, y: &[f64]) -> Value {
    let quality = roc_auc(y, &model.predict_proba(x));
    Value::model(ModelArtifact::new(model, quality))
}

/// Extract a warmstart initialiser of the expected family.
fn warm_of<'a, F, M>(warmstart: Option<&'a TrainedModel>, extract: F) -> Option<&'a M>
where
    F: Fn(&'a TrainedModel) -> Option<&'a M>,
{
    warmstart.and_then(extract)
}

/// The statically known feature set of `ds` (numeric minus `exclude`), or
/// `None` when it cannot be pinned down — an open schema or an unknown
/// dtype may add or remove numeric columns at runtime.
fn known_features(ds: &DatasetMeta, exclude: &[&str]) -> Option<Vec<String>> {
    if ds.open || ds.columns.iter().any(|(_, dt)| dt.is_none()) {
        return None;
    }
    Some(ds.numeric_columns(exclude))
}

/// Shared schema transfer for the training operations: one labelled
/// dataset in, a model fitted on its numeric feature columns out.
fn train_infer(op: &str, label: &str, inputs: &[&ValueMeta]) -> MetaResult {
    meta::expect_arity(op, inputs, 1)?;
    let ds = inputs[0].expect_dataset(op)?;
    ds.require_dtype(op, label, "numeric", DType::is_numeric)?;
    let known = known_features(&ds, &[label]);
    if known.as_deref() == Some(&[]) {
        return Err(MetaError::new(
            MetaCode::EmptySelection,
            format!("{op}: input has no numeric feature columns besides the label"),
        ));
    }
    Ok(ValueMeta::Model(ModelMeta {
        open: known.is_none(),
        features: known.unwrap_or_default(),
        label: Some(label.to_owned()),
    }))
}

/// Check a model application: the dataset's statically known feature set
/// (numeric minus `exclude`) must be non-empty and, when the model's own
/// feature set is known, must match it exactly.
fn check_features(
    op: &str,
    model: &ModelMeta,
    ds: &DatasetMeta,
    exclude: &[&str],
) -> std::result::Result<(), MetaError> {
    let Some(features) = known_features(ds, exclude) else {
        return Ok(());
    };
    if features.is_empty() {
        return Err(MetaError::new(
            MetaCode::EmptySelection,
            format!("{op}: dataset has no numeric feature columns"),
        ));
    }
    if !model.open && features != model.features {
        return Err(MetaError::new(
            MetaCode::FitPredictMismatch,
            format!(
                "{op}: model is fitted on features [{}] but the dataset provides [{}]",
                model.features.join(", "),
                features.join(", ")
            ),
        ));
    }
    Ok(())
}

/// Train logistic regression.
pub struct TrainLogisticOp {
    /// Label column.
    pub label: String,
    /// Hyperparameters.
    pub params: LogisticParams,
}

impl Operation for TrainLogisticOp {
    fn name(&self) -> &str {
        "train_logistic"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.label, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Model
    }
    fn warmstartable(&self) -> bool {
        true
    }
    fn model_kind(&self) -> Option<ModelKind> {
        Some(ModelKind::Logistic)
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        self.run_warm(inputs, None)
    }
    fn run_warm(&self, inputs: &[&Value], warmstart: Option<&TrainedModel>) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let sup = supervised(df, &self.label).map_err(|e| ml_err(self.name(), e))?;
        let init = warm_of(warmstart, |m| match m {
            TrainedModel::Logistic(l) => Some(l),
            _ => None,
        });
        let model = LogisticRegression::new(self.params.clone())
            .fit_warm(&sup.x, &sup.y, init)
            .map_err(|e| ml_err(self.name(), e))?;
        Ok(model_value(TrainedModel::Logistic(model), &sup.x, &sup.y))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        train_infer(self.name(), &self.label, inputs)
    }
}

/// Train a linear SVM.
pub struct TrainSvmOp {
    /// Label column.
    pub label: String,
    /// Hyperparameters.
    pub params: SvmParams,
}

impl Operation for TrainSvmOp {
    fn name(&self) -> &str {
        "train_svm"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.label, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Model
    }
    fn warmstartable(&self) -> bool {
        true
    }
    fn model_kind(&self) -> Option<ModelKind> {
        Some(ModelKind::Svm)
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        self.run_warm(inputs, None)
    }
    fn run_warm(&self, inputs: &[&Value], warmstart: Option<&TrainedModel>) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let sup = supervised(df, &self.label).map_err(|e| ml_err(self.name(), e))?;
        let init = warm_of(warmstart, |m| match m {
            TrainedModel::Svm(s) => Some(s),
            _ => None,
        });
        let model = LinearSvc::new(self.params.clone())
            .fit_warm(&sup.x, &sup.y, init)
            .map_err(|e| ml_err(self.name(), e))?;
        Ok(model_value(TrainedModel::Svm(model), &sup.x, &sup.y))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        train_infer(self.name(), &self.label, inputs)
    }
}

/// Train ridge regression.
pub struct TrainRidgeOp {
    /// Label column.
    pub label: String,
    /// Hyperparameters.
    pub params: RidgeParams,
}

impl Operation for TrainRidgeOp {
    fn name(&self) -> &str {
        "train_ridge"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.label, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Model
    }
    fn warmstartable(&self) -> bool {
        true
    }
    fn model_kind(&self) -> Option<ModelKind> {
        Some(ModelKind::Ridge)
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        self.run_warm(inputs, None)
    }
    fn run_warm(&self, inputs: &[&Value], warmstart: Option<&TrainedModel>) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let sup = supervised(df, &self.label).map_err(|e| ml_err(self.name(), e))?;
        let init = warm_of(warmstart, |m| match m {
            TrainedModel::Ridge(r) => Some(r),
            _ => None,
        });
        let model = RidgeRegression::new(self.params.clone())
            .fit_warm(&sup.x, &sup.y, init)
            .map_err(|e| ml_err(self.name(), e))?;
        Ok(model_value(TrainedModel::Ridge(model), &sup.x, &sup.y))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        train_infer(self.name(), &self.label, inputs)
    }
}

/// Train a single decision tree.
pub struct TrainTreeOp {
    /// Label column.
    pub label: String,
    /// Hyperparameters.
    pub params: TreeParams,
}

impl Operation for TrainTreeOp {
    fn name(&self) -> &str {
        "train_tree"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.label, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Model
    }
    fn model_kind(&self) -> Option<ModelKind> {
        Some(ModelKind::Tree)
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let sup = supervised(df, &self.label).map_err(|e| ml_err(self.name(), e))?;
        let model =
            DecisionTree::fit(&sup.x, &sup.y, &self.params).map_err(|e| ml_err(self.name(), e))?;
        Ok(model_value(TrainedModel::Tree(model), &sup.x, &sup.y))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        train_infer(self.name(), &self.label, inputs)
    }
}

/// Train a random forest.
pub struct TrainForestOp {
    /// Label column.
    pub label: String,
    /// Hyperparameters.
    pub params: ForestParams,
}

impl Operation for TrainForestOp {
    fn name(&self) -> &str {
        "train_forest"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.label, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Model
    }
    fn model_kind(&self) -> Option<ModelKind> {
        Some(ModelKind::Forest)
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let sup = supervised(df, &self.label).map_err(|e| ml_err(self.name(), e))?;
        let model = RandomForest::new(self.params.clone())
            .fit(&sup.x, &sup.y)
            .map_err(|e| ml_err(self.name(), e))?;
        Ok(model_value(TrainedModel::Forest(model), &sup.x, &sup.y))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        train_infer(self.name(), &self.label, inputs)
    }
}

/// Train gradient-boosted trees.
pub struct TrainGbtOp {
    /// Label column.
    pub label: String,
    /// Hyperparameters.
    pub params: GbtParams,
}

impl Operation for TrainGbtOp {
    fn name(&self) -> &str {
        "train_gbt"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.label, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Model
    }
    fn warmstartable(&self) -> bool {
        true
    }
    fn model_kind(&self) -> Option<ModelKind> {
        Some(ModelKind::Gbt)
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        self.run_warm(inputs, None)
    }
    fn run_warm(&self, inputs: &[&Value], warmstart: Option<&TrainedModel>) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let sup = supervised(df, &self.label).map_err(|e| ml_err(self.name(), e))?;
        let init = warm_of(warmstart, |m| match m {
            TrainedModel::Gbt(g) => Some(g),
            _ => None,
        });
        let model = GradientBoosting::new(self.params.clone())
            .fit_warm(&sup.x, &sup.y, init)
            .map_err(|e| ml_err(self.name(), e))?;
        Ok(model_value(TrainedModel::Gbt(model), &sup.x, &sup.y))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        train_infer(self.name(), &self.label, inputs)
    }
}

/// Which score an [`EvaluateOp`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMetric {
    /// Area under the ROC curve (the paper's Kaggle metric).
    RocAuc,
    /// Classification accuracy.
    Accuracy,
    /// `1 - normalized log-loss` (so that higher is better, in `[0, 1]`).
    InvLogLoss,
}

impl EvalMetric {
    /// Short stable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvalMetric::RocAuc => "roc_auc",
            EvalMetric::Accuracy => "accuracy",
            EvalMetric::InvLogLoss => "inv_log_loss",
        }
    }
}

/// Score a model on a labelled dataset: inputs are `[model, dataset]`, the
/// output is an `Aggregate` score in `[0, 1]`. The executor propagates the
/// score back to the model vertex's quality attribute.
pub struct EvaluateOp {
    /// Label column in the evaluation dataset.
    pub label: String,
    /// Metric to report.
    pub metric: EvalMetric,
}

impl Operation for EvaluateOp {
    fn name(&self) -> &str {
        "evaluate"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.label, self.metric.name())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Aggregate
    }
    fn is_evaluation(&self) -> bool {
        true
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 2)?;
        let model = inputs[0]
            .as_model()
            .ok_or_else(|| GraphError::BadOperationInput {
                op: self.name().to_owned(),
                message: "input 0 must be a model".to_owned(),
            })?;
        let df = dataset_input(self.name(), inputs, 1)?;
        let sup = supervised(df, &self.label).map_err(|e| ml_err(self.name(), e))?;
        let probs = model.model.predict_proba(&sup.x);
        let score = match self.metric {
            EvalMetric::RocAuc => roc_auc(&sup.y, &probs),
            EvalMetric::Accuracy => accuracy(&sup.y, &probs),
            EvalMetric::InvLogLoss => 1.0 / (1.0 + log_loss(&sup.y, &probs)),
        };
        Ok(Value::Aggregate(co_dataframe::Scalar::Float(score)))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        meta::expect_arity(self.name(), inputs, 2)?;
        let model = inputs[0].expect_model(self.name())?;
        let ds = inputs[1].expect_dataset(self.name())?;
        ds.require_dtype(self.name(), &self.label, "numeric", DType::is_numeric)?;
        check_features(self.name(), &model, &ds, &[self.label.as_str()])?;
        Ok(ValueMeta::Aggregate)
    }
}

/// Apply a model to a dataset (paper §4.1: a model either feeds feature
/// engineering or "perform\[s\] predictions on a test dataset"). Inputs are
/// `[model, dataset]`; the output is the dataset with an appended `Float`
/// column of class-1 probabilities.
pub struct PredictOp {
    /// Name of the appended prediction column.
    pub out: String,
    /// Columns to exclude from the feature matrix (typically the label,
    /// when predicting on a labelled dataset).
    pub exclude: Vec<String>,
}

impl Operation for PredictOp {
    fn name(&self) -> &str {
        "predict"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.out, self.exclude.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 2)?;
        let model = inputs[0]
            .as_model()
            .ok_or_else(|| GraphError::BadOperationInput {
                op: self.name().to_owned(),
                message: "input 0 must be a model".to_owned(),
            })?;
        let df = dataset_input(self.name(), inputs, 1)?;
        let feature_frame = if self.exclude.is_empty() {
            df.clone()
        } else {
            let drop: Vec<&str> = self
                .exclude
                .iter()
                .map(String::as_str)
                .filter(|c| df.has_column(c))
                .collect();
            df.drop_columns(&drop)
                .map_err(|e| GraphError::from_df(self.name(), &e))?
        };
        let x =
            co_ml::dataset::features_only(&feature_frame).map_err(|e| ml_err(self.name(), e))?;
        let probs = model.model.predict_proba(&x);
        // The prediction column derives from every feature column plus the
        // model's operation identity.
        let sig = co_dataframe::hash::fnv1a_parts(&[
            "predict",
            &self.out,
            model.model.kind().name(),
            &model.model.params_digest(),
        ]);
        let id = co_dataframe::ColumnId::derive_many(&df.column_ids(), sig);
        let out = df
            .with_column(co_dataframe::Column::derived(
                &self.out,
                id,
                co_dataframe::ColumnData::Float(probs),
            ))
            .map_err(|e| GraphError::from_df(self.name(), &e))?;
        Ok(Value::dataset(out))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        meta::expect_arity(self.name(), inputs, 2)?;
        let model = inputs[0].expect_model(self.name())?;
        let ds = inputs[1].expect_dataset(self.name())?;
        let exclude: Vec<&str> = self.exclude.iter().map(String::as_str).collect();
        check_features(self.name(), &model, &ds, &exclude)?;
        let mut cols = ds.columns.clone();
        replace_column(&mut cols, &self.out, Some(DType::Float));
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: ds.open,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::{Column, ColumnData, DataFrame};

    fn labelled() -> Value {
        // Feature scaled into [0, 2]: full-batch gradient descent with the
        // default learning rate needs sane feature magnitudes (real
        // pipelines scale before training, as the workloads do).
        let x: Vec<f64> = (0..40).map(|i| i as f64 / 20.0).collect();
        let y: Vec<i64> = (0..40).map(|i| i64::from(i >= 20)).collect();
        Value::dataset(
            DataFrame::new(vec![
                Column::source("t", "x", ColumnData::Float(x)),
                Column::source("t", "y", ColumnData::Int(y)),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn trainers_emit_scored_models() {
        let data = labelled();
        let inputs = [&data];
        let ops: Vec<Box<dyn Operation>> = vec![
            Box::new(TrainLogisticOp {
                label: "y".into(),
                params: LogisticParams::default(),
            }),
            Box::new(TrainSvmOp {
                label: "y".into(),
                params: SvmParams::default(),
            }),
            Box::new(TrainGbtOp {
                label: "y".into(),
                params: GbtParams {
                    n_estimators: 5,
                    ..GbtParams::default()
                },
            }),
            Box::new(TrainForestOp {
                label: "y".into(),
                params: ForestParams {
                    n_estimators: 5,
                    ..ForestParams::default()
                },
            }),
            Box::new(TrainTreeOp {
                label: "y".into(),
                params: TreeParams::default(),
            }),
        ];
        for op in ops {
            let out = op.run(&inputs).unwrap();
            let m = out.as_model().expect("model output");
            assert!(m.quality > 0.9, "{} quality = {}", op.name(), m.quality);
        }
    }

    #[test]
    fn warmstart_flags_match_model_kinds() {
        let lr = TrainLogisticOp {
            label: "y".into(),
            params: LogisticParams::default(),
        };
        assert!(lr.warmstartable());
        assert_eq!(lr.model_kind(), Some(ModelKind::Logistic));
        let forest = TrainForestOp {
            label: "y".into(),
            params: ForestParams::default(),
        };
        assert!(!forest.warmstartable());
    }

    #[test]
    fn warmstart_of_wrong_family_is_ignored() {
        let data = labelled();
        let inputs = [&data];
        let gbt_model = TrainGbtOp {
            label: "y".into(),
            params: GbtParams {
                n_estimators: 3,
                ..GbtParams::default()
            },
        }
        .run(&inputs)
        .unwrap();
        let lr = TrainLogisticOp {
            label: "y".into(),
            params: LogisticParams::default(),
        };
        // A GBT initialiser cannot seed logistic regression; cold start.
        let warm = lr
            .run_warm(&inputs, Some(&gbt_model.as_model().unwrap().model))
            .unwrap();
        let cold = lr.run(&inputs).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn evaluation_scores_models() {
        let data = labelled();
        let model = TrainLogisticOp {
            label: "y".into(),
            params: LogisticParams::default(),
        }
        .run(&[&data])
        .unwrap();
        for metric in [
            EvalMetric::RocAuc,
            EvalMetric::Accuracy,
            EvalMetric::InvLogLoss,
        ] {
            let eval = EvaluateOp {
                label: "y".into(),
                metric,
            };
            assert!(eval.is_evaluation());
            let out = eval.run(&[&model, &data]).unwrap();
            let score = out.as_aggregate().unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&score));
            assert!(score > 0.8, "{} = {score}", metric.name());
        }
        // Wrong input order is rejected.
        let eval = EvaluateOp {
            label: "y".into(),
            metric: EvalMetric::RocAuc,
        };
        assert!(eval.run(&[&data, &model]).is_err());
    }

    #[test]
    fn predict_appends_probabilities() {
        let data = labelled();
        let model = TrainLogisticOp {
            label: "y".into(),
            params: LogisticParams::default(),
        }
        .run(&[&data])
        .unwrap();
        let op = PredictOp {
            out: "p_default".into(),
            exclude: vec!["y".into()],
        };
        let out = op.run(&[&model, &data]).unwrap();
        let df = out.as_dataset().unwrap();
        assert!(df.has_column("p_default"));
        assert!(df.has_column("y")); // label kept in the output frame
        let probs = df.column("p_default").unwrap().floats().unwrap();
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        // Predictions track the labels on this separable data.
        let labels = df.column("y").unwrap().ints().unwrap();
        let auc = roc_auc(&labels.iter().map(|&l| l as f64).collect::<Vec<_>>(), probs);
        assert!(auc > 0.9, "auc = {auc}");
        // Lineage: the prediction column is deterministic in its inputs.
        let again = op.run(&[&model, &data]).unwrap();
        assert_eq!(
            again
                .as_dataset()
                .unwrap()
                .column("p_default")
                .unwrap()
                .id(),
            df.column("p_default").unwrap().id()
        );
        // Wrong input order is rejected.
        assert!(op.run(&[&data, &model]).is_err());
    }

    #[test]
    fn hyperparameters_change_op_identity() {
        let a = TrainGbtOp {
            label: "y".into(),
            params: GbtParams::default(),
        };
        let b = TrainGbtOp {
            label: "y".into(),
            params: GbtParams {
                n_estimators: 99,
                ..GbtParams::default()
            },
        };
        assert_ne!(a.op_hash(), b.op_hash());
    }
}
