//! Data-preprocessing operations (the paper's `DataOperation`s).

use super::{arity, dataset_input};
use co_dataframe::ops as df_ops;
use co_dataframe::ops::{AggFn, BinFn, MapFn, Predicate, StrFn};
use co_graph::{GraphError, NodeKind, Operation, Result, Value};
use co_ml::feature::{self, ImputeStrategy, PcaParams, ScaleKind, VectorizerParams};

fn df_err(op: &str, e: co_dataframe::DfError) -> GraphError {
    GraphError::from_df(op, &e)
}

fn ml_err(op: &str, e: co_ml::MlError) -> GraphError {
    GraphError::from_ml(op, &e)
}

/// Projection (`df[cols]`).
pub struct SelectOp {
    /// Columns to keep, in order.
    pub columns: Vec<String>,
}

impl Operation for SelectOp {
    fn name(&self) -> &str {
        "select"
    }
    fn params_digest(&self) -> String {
        self.columns.join(",")
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            df.select(&cols).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Drop columns.
pub struct DropColumnsOp {
    /// Columns to remove.
    pub columns: Vec<String>,
}

impl Operation for DropColumnsOp {
    fn name(&self) -> &str {
        "drop_columns"
    }
    fn params_digest(&self) -> String {
        self.columns.join(",")
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            df.drop_columns(&cols).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Rename a column.
pub struct RenameOp {
    /// Existing name.
    pub from: String,
    /// New name.
    pub to: String,
}

impl Operation for RenameOp {
    fn name(&self) -> &str {
        "rename"
    }
    fn params_digest(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df.rename(&self.from, &self.to)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Row filter.
pub struct FilterOp {
    /// Row predicate.
    pub predicate: Predicate,
}

impl Operation for FilterOp {
    fn name(&self) -> &str {
        "filter"
    }
    fn params_digest(&self) -> String {
        self.predicate.digest()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::filter(df, &self.predicate).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Drop rows with missing values.
pub struct DropNaOp {
    /// Columns to consider (empty = all).
    pub subset: Vec<String>,
}

impl Operation for DropNaOp {
    fn name(&self) -> &str {
        "dropna"
    }
    fn params_digest(&self) -> String {
        self.subset.join(",")
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let subset: Vec<&str> = self.subset.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            df_ops::dropna(df, &subset).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Unary column transform.
pub struct MapOp {
    /// Input column.
    pub column: String,
    /// Transform.
    pub f: MapFn,
    /// Output column (may equal `column` to replace in place).
    pub out: String,
}

impl Operation for MapOp {
    fn name(&self) -> &str {
        "map"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}:{}", self.column, self.f.digest(), self.out)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::map_column(df, &self.column, &self.f, &self.out)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Binary column arithmetic.
pub struct BinaryOp {
    /// Left column.
    pub left: String,
    /// Right column.
    pub right: String,
    /// Arithmetic function.
    pub f: BinFn,
    /// Output column.
    pub out: String,
}

impl Operation for BinaryOp {
    fn name(&self) -> &str {
        "binary_op"
    }
    fn params_digest(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.left,
            self.right,
            self.f.name(),
            self.out
        )
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::binary_op(df, &self.left, &self.right, self.f, &self.out)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Numeric feature from a string column.
pub struct StrFeatureOp {
    /// Input text column.
    pub column: String,
    /// Feature function.
    pub f: StrFn,
    /// Output column.
    pub out: String,
}

impl Operation for StrFeatureOp {
    fn name(&self) -> &str {
        "str_feature"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}:{}", self.column, self.f.name(), self.out)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::str_feature(df, &self.column, self.f, &self.out)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinHow {
    /// Inner equi-join.
    Inner,
    /// Left outer join.
    Left,
}

/// Two-input equi-join on an integer key (a paper *supernode* operation).
pub struct JoinOp {
    /// Key column present in both inputs.
    pub on: String,
    /// Join flavour.
    pub how: JoinHow,
}

impl Operation for JoinOp {
    fn name(&self) -> &str {
        match self.how {
            JoinHow::Inner => "inner_join",
            JoinHow::Left => "left_join",
        }
    }
    fn params_digest(&self) -> String {
        self.on.clone()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 2)?;
        let left = dataset_input(self.name(), inputs, 0)?;
        let right = dataset_input(self.name(), inputs, 1)?;
        let joined = match self.how {
            JoinHow::Inner => df_ops::inner_join(left, right, &self.on),
            JoinHow::Left => df_ops::left_join(left, right, &self.on),
        }
        .map_err(|e| df_err(self.name(), e))?;
        Ok(Value::dataset(joined))
    }
}

/// Horizontal concatenation (pandas `concat(axis=1)`), any arity >= 1.
pub struct HConcatOp;

impl Operation for HConcatOp {
    fn name(&self) -> &str {
        "hconcat"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        let frames: Vec<&co_dataframe::DataFrame> = inputs
            .iter()
            .enumerate()
            .map(|(i, _)| dataset_input(self.name(), inputs, i))
            .collect::<Result<_>>()?;
        Ok(Value::dataset(
            df_ops::hconcat(&frames).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Vertical concatenation (row stacking), any arity >= 1.
pub struct VConcatOp;

impl Operation for VConcatOp {
    fn name(&self) -> &str {
        "vconcat"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        let frames: Vec<&co_dataframe::DataFrame> = inputs
            .iter()
            .enumerate()
            .map(|(i, _)| dataset_input(self.name(), inputs, i))
            .collect::<Result<_>>()?;
        Ok(Value::dataset(
            df_ops::vconcat(&frames).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// The paper's alignment operation (§7.2), re-implemented as two
/// single-output operations: `side = 0` returns the left frame restricted
/// to the common columns, `side = 1` the right frame. Each output's cost
/// and size can then be measured independently — exactly the workaround
/// the paper describes for multi-output operations.
pub struct AlignOp {
    /// 0 = left output, 1 = right output.
    pub side: usize,
}

impl Operation for AlignOp {
    fn name(&self) -> &str {
        "align"
    }
    fn params_digest(&self) -> String {
        self.side.to_string()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 2)?;
        let a = dataset_input(self.name(), inputs, 0)?;
        let b = dataset_input(self.name(), inputs, 1)?;
        let (left, right) = df_ops::align(a, b).map_err(|e| df_err(self.name(), e))?;
        Ok(Value::dataset(if self.side == 0 { left } else { right }))
    }
}

/// Group-by aggregation.
pub struct GroupByOp {
    /// Key column.
    pub key: String,
    /// `(column, aggregate)` pairs.
    pub aggs: Vec<(String, AggFn)>,
}

impl Operation for GroupByOp {
    fn name(&self) -> &str {
        "groupby"
    }
    fn params_digest(&self) -> String {
        let aggs: Vec<String> = self
            .aggs
            .iter()
            .map(|(c, f)| format!("{c}:{}", f.name()))
            .collect();
        format!("{}|{}", self.key, aggs.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let aggs: Vec<(&str, AggFn)> = self.aggs.iter().map(|(c, f)| (c.as_str(), *f)).collect();
        Ok(Value::dataset(
            df_ops::groupby_agg(df, &self.key, &aggs).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// One-hot encode a string column.
pub struct OneHotOp {
    /// Column to encode.
    pub column: String,
    /// Keep this many categories.
    pub max_categories: usize,
}

impl Operation for OneHotOp {
    fn name(&self) -> &str {
        "one_hot"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}", self.column, self.max_categories)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::one_hot(df, &self.column, self.max_categories)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Label-encode a string column.
pub struct LabelEncodeOp {
    /// Column to encode.
    pub column: String,
}

impl Operation for LabelEncodeOp {
    fn name(&self) -> &str {
        "label_encode"
    }
    fn params_digest(&self) -> String {
        self.column.clone()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::label_encode(df, &self.column).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Seeded row sample (the paper's Listing 2 example).
pub struct SampleOp {
    /// Rows to draw.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Operation for SampleOp {
    fn name(&self) -> &str {
        "sample"
    }
    fn params_digest(&self) -> String {
        format!("n={},seed={}", self.n, self.seed)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::sample(df, self.n, self.seed).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Sort rows by a column.
pub struct SortOp {
    /// Sort key column.
    pub column: String,
    /// Ascending order?
    pub ascending: bool,
}

impl Operation for SortOp {
    fn name(&self) -> &str {
        "sort"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}", self.column, self.ascending)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::sort_by(df, &self.column, self.ascending)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Scale numeric columns.
pub struct ScaleOp {
    /// Standard or min-max.
    pub kind: ScaleKind,
    /// Columns to scale.
    pub columns: Vec<String>,
}

impl Operation for ScaleOp {
    fn name(&self) -> &str {
        "scale"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.kind.name(), self.columns.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            feature::scale(df, self.kind, &cols).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
}

/// Impute missing values.
pub struct ImputeOp {
    /// Fill strategy.
    pub strategy: ImputeStrategy,
    /// Columns to fill.
    pub columns: Vec<String>,
}

impl Operation for ImputeOp {
    fn name(&self) -> &str {
        "impute"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.strategy.digest(), self.columns.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            feature::impute(df, self.strategy, &cols).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
}

/// Bag-of-words vectorisation of a text column.
pub struct CountVectorizeOp {
    /// Text column.
    pub column: String,
    /// Vocabulary parameters.
    pub params: VectorizerParams,
}

impl Operation for CountVectorizeOp {
    fn name(&self) -> &str {
        "count_vectorize"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.column, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            feature::count_vectorize(df, &self.column, &self.params)
                .map_err(|e| ml_err(self.name(), e))?,
        ))
    }
}

/// TF-IDF vectorisation of a text column.
pub struct TfidfVectorizeOp {
    /// Text column.
    pub column: String,
    /// Vocabulary parameters.
    pub params: VectorizerParams,
}

impl Operation for TfidfVectorizeOp {
    fn name(&self) -> &str {
        "tfidf_vectorize"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.column, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            feature::tfidf_vectorize(df, &self.column, &self.params)
                .map_err(|e| ml_err(self.name(), e))?,
        ))
    }
}

/// Univariate feature selection.
pub struct SelectKBestOp {
    /// Label column (excluded from the output).
    pub label: String,
    /// Number of features to keep.
    pub k: usize,
}

impl Operation for SelectKBestOp {
    fn name(&self) -> &str {
        "select_k_best"
    }
    fn params_digest(&self) -> String {
        format!("{}|k={}", self.label, self.k)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            feature::select_k_best(df, &self.label, self.k).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
}

/// PCA projection of numeric columns.
pub struct PcaOp {
    /// Input columns.
    pub columns: Vec<String>,
    /// PCA parameters.
    pub params: PcaParams,
}

impl Operation for PcaOp {
    fn name(&self) -> &str {
        "pca"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.params.digest(), self.columns.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            feature::pca(df, &cols, &self.params).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
}

/// K-means cluster-distance features: fit k-means on the named numeric
/// columns and append one `Float` distance column per centroid
/// (`cluster_d0..`). Like [`PcaOp`], a feature-engineering *model* in the
/// paper's sense, wrapped as a data operation over its training input.
pub struct ClusterFeaturesOp {
    /// Input columns.
    pub columns: Vec<String>,
    /// K-means hyperparameters.
    pub params: co_ml::cluster::KMeansParams,
}

impl Operation for ClusterFeaturesOp {
    fn name(&self) -> &str {
        "cluster_features"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.params.digest(), self.columns.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let sub = df.select(&cols).map_err(|e| df_err(self.name(), e))?;
        let x = co_ml::dataset::features_only(&sub).map_err(|e| ml_err(self.name(), e))?;
        let model = co_ml::cluster::KMeans::new(self.params.clone())
            .fit(&x)
            .map_err(|e| ml_err(self.name(), e))?;
        let distances = model.transform(&x);
        let base = co_dataframe::ColumnId::derive_many(&sub.column_ids(), self.op_hash());
        let mut out = df.clone();
        for c in 0..distances.cols() {
            let id = base.derive(co_dataframe::hash::fnv1a_parts(&[
                "cluster",
                &c.to_string(),
            ]));
            out = out
                .with_column(co_dataframe::Column::derived(
                    &format!("cluster_d{c}"),
                    id,
                    co_dataframe::ColumnData::Float(distances.column(c)),
                ))
                .map_err(|e| df_err(self.name(), e))?;
        }
        Ok(Value::dataset(out))
    }
}

/// Degree-2 polynomial feature expansion.
pub struct PolyOp {
    /// Input columns.
    pub columns: Vec<String>,
}

impl Operation for PolyOp {
    fn name(&self) -> &str {
        "poly2"
    }
    fn params_digest(&self) -> String {
        self.columns.join(",")
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            feature::polynomial_features(df, &cols).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
}

/// Whole-column aggregate producing an `Aggregate` artifact.
pub struct AggOp {
    /// Column to aggregate.
    pub column: String,
    /// Aggregate function.
    pub f: AggFn,
}

impl Operation for AggOp {
    fn name(&self) -> &str {
        "agg"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}", self.column, self.f.name())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Aggregate
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::Aggregate(
            df_ops::agg_column(df, &self.column, self.f).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Frequency table of a column.
pub struct ValueCountsOp {
    /// Column to count.
    pub column: String,
}

impl Operation for ValueCountsOp {
    fn name(&self) -> &str {
        "value_counts"
    }
    fn params_digest(&self) -> String {
        self.column.clone()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::value_counts(df, &self.column).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Summary statistics (a typical visualization terminal).
pub struct DescribeOp;

impl Operation for DescribeOp {
    fn name(&self) -> &str {
        "describe"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::describe(df).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

/// Pearson correlation matrix (a typical visualization terminal).
pub struct CorrOp;

impl Operation for CorrOp {
    fn name(&self) -> &str {
        "corr"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::corr_matrix(df).map_err(|e| df_err(self.name(), e))?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::{Column, ColumnData, DataFrame};

    fn dataset() -> Value {
        Value::dataset(
            DataFrame::new(vec![
                Column::source("t", "x", ColumnData::Float(vec![1.0, 2.0, 3.0])),
                Column::source("t", "k", ColumnData::Int(vec![1, 1, 2])),
                Column::source(
                    "t",
                    "s",
                    ColumnData::Str(vec!["a".into(), "b".into(), "a".into()]),
                ),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn single_input_ops_run() {
        let v = dataset();
        let inputs = [&v];
        let out = SelectOp {
            columns: vec!["x".into()],
        }
        .run(&inputs)
        .unwrap();
        assert_eq!(out.as_dataset().unwrap().n_cols(), 1);
        let out = FilterOp {
            predicate: Predicate::gt_f("x", 1.5),
        }
        .run(&inputs)
        .unwrap();
        assert_eq!(out.as_dataset().unwrap().n_rows(), 2);
        let out = MapOp {
            column: "x".into(),
            f: MapFn::Abs,
            out: "ax".into(),
        }
        .run(&inputs)
        .unwrap();
        assert!(out.as_dataset().unwrap().has_column("ax"));
        let out = GroupByOp {
            key: "k".into(),
            aggs: vec![("x".into(), AggFn::Sum)],
        }
        .run(&inputs)
        .unwrap();
        assert_eq!(out.as_dataset().unwrap().n_rows(), 2);
        let out = OneHotOp {
            column: "s".into(),
            max_categories: 2,
        }
        .run(&inputs)
        .unwrap();
        assert!(out.as_dataset().unwrap().has_column("s=a"));
        let out = AggOp {
            column: "x".into(),
            f: AggFn::Mean,
        }
        .run(&inputs)
        .unwrap();
        assert_eq!(out.as_aggregate().unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn multi_input_ops_validate_arity() {
        let v = dataset();
        let op = JoinOp {
            on: "k".into(),
            how: JoinHow::Inner,
        };
        assert!(op.run(&[&v]).is_err());
        let out = op.run(&[&v, &v]).unwrap();
        assert!(out.as_dataset().unwrap().n_rows() > 0);
        let align = AlignOp { side: 0 };
        assert!(align.run(&[&v]).is_err());
        let out = align.run(&[&v, &v]).unwrap();
        assert_eq!(out.as_dataset().unwrap().n_cols(), 3);
    }

    #[test]
    fn cluster_features_append_distances() {
        let v = dataset();
        let op = ClusterFeaturesOp {
            columns: vec!["x".into(), "k".into()],
            params: co_ml::cluster::KMeansParams {
                k: 2,
                ..Default::default()
            },
        };
        let out = op.run(&[&v]).unwrap();
        let df = out.as_dataset().unwrap();
        assert!(df.has_column("cluster_d0"));
        assert!(df.has_column("cluster_d1"));
        assert_eq!(df.n_cols(), 5); // originals + 2 distance columns
                                    // Original columns untouched (ids preserved).
        assert_eq!(
            df.column("s").unwrap().id(),
            v.as_dataset().unwrap().column("s").unwrap().id()
        );
        // Deterministic lineage.
        let again = op.run(&[&v]).unwrap();
        assert_eq!(
            again
                .as_dataset()
                .unwrap()
                .column("cluster_d0")
                .unwrap()
                .id(),
            df.column("cluster_d0").unwrap().id()
        );
    }

    #[test]
    fn op_hashes_distinguish_params() {
        let a = SelectOp {
            columns: vec!["x".into()],
        };
        let b = SelectOp {
            columns: vec!["k".into()],
        };
        assert_ne!(a.op_hash(), b.op_hash());
        let f1 = FilterOp {
            predicate: Predicate::gt_f("x", 1.0),
        };
        let f2 = FilterOp {
            predicate: Predicate::gt_f("x", 2.0),
        };
        assert_ne!(f1.op_hash(), f2.op_hash());
        // Different op types never collide on the same digest.
        assert_ne!(
            a.op_hash(),
            DropColumnsOp {
                columns: vec!["x".into()]
            }
            .op_hash()
        );
    }

    #[test]
    fn wrong_input_kind_is_reported() {
        let agg = Value::Aggregate(co_dataframe::Scalar::Int(1));
        let err = SelectOp { columns: vec![] }.run(&[&agg]).unwrap_err();
        assert!(matches!(err, GraphError::BadOperationInput { .. }));
    }
}
