//! Data-preprocessing operations (the paper's `DataOperation`s).

use super::{arity, dataset_input};
use co_dataframe::ops as df_ops;
use co_dataframe::ops::{AggFn, BinFn, MapFn, Predicate, StrFn};
use co_dataframe::schema::{align_columns, hconcat_columns, join_columns, replace_column, DType};
use co_graph::meta::{self, DatasetMeta, MetaCode, MetaError, MetaResult, ValueMeta};
use co_graph::{GraphError, NodeKind, Operation, Result, Value};
use co_ml::feature::{self, ImputeStrategy, PcaParams, ScaleKind, VectorizerParams};

fn df_err(op: &str, e: co_dataframe::DfError) -> GraphError {
    GraphError::from_df(op, &e)
}

fn ml_err(op: &str, e: co_ml::MlError) -> GraphError {
    GraphError::from_ml(op, &e)
}

/// Arity check + dataset view of input 0 — the common prologue of
/// single-input schema-transfer functions.
fn infer_dataset_input(
    op: &str,
    inputs: &[&ValueMeta],
) -> std::result::Result<DatasetMeta, MetaError> {
    meta::expect_arity(op, inputs, 1)?;
    inputs[0].expect_dataset(op)
}

/// Check the columns a predicate reads, mirroring `Predicate::eval`'s
/// dtype requirements (comparisons view columns as `f64`, `EqI`/`NeI`
/// read ints, `EqS`/`IsIn` read strings).
fn check_predicate(ds: &DatasetMeta, p: &Predicate) -> std::result::Result<(), MetaError> {
    match p {
        Predicate::GtF { col, .. }
        | Predicate::GeF { col, .. }
        | Predicate::LtF { col, .. }
        | Predicate::LeF { col, .. }
        | Predicate::NotNa { col } => ds.require_dtype("filter", col, "numeric", DType::is_numeric),
        Predicate::EqI { col, .. } | Predicate::NeI { col, .. } => {
            ds.require_dtype("filter", col, "int", |dt| dt == DType::Int)
        }
        Predicate::EqS { col, .. } | Predicate::IsIn { col, .. } => {
            ds.require_dtype("filter", col, "str", |dt| dt == DType::Str)
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            check_predicate(ds, a)?;
            check_predicate(ds, b)
        }
        Predicate::Not(inner) => check_predicate(ds, inner),
    }
}

/// Projection (`df[cols]`).
pub struct SelectOp {
    /// Columns to keep, in order.
    pub columns: Vec<String>,
}

impl Operation for SelectOp {
    fn name(&self) -> &str {
        "select"
    }
    fn params_digest(&self) -> String {
        self.columns.join(",")
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            df.select(&cols).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let m = infer_dataset_input(self.name(), inputs)?;
        let mut cols = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            cols.push((c.clone(), m.require(self.name(), c)?));
        }
        let out = DatasetMeta::closed(cols);
        out.ensure_unique(self.name())?;
        Ok(ValueMeta::Dataset(out))
    }
}

/// Drop columns.
pub struct DropColumnsOp {
    /// Columns to remove.
    pub columns: Vec<String>,
}

impl Operation for DropColumnsOp {
    fn name(&self) -> &str {
        "drop_columns"
    }
    fn params_digest(&self) -> String {
        self.columns.join(",")
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            df.drop_columns(&cols).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let m = infer_dataset_input(self.name(), inputs)?;
        for c in &self.columns {
            m.require(self.name(), c)?;
        }
        let cols = m
            .columns
            .iter()
            .filter(|(n, _)| !self.columns.contains(n))
            .cloned()
            .collect();
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: m.open,
        }))
    }
}

/// Rename a column.
pub struct RenameOp {
    /// Existing name.
    pub from: String,
    /// New name.
    pub to: String,
}

impl Operation for RenameOp {
    fn name(&self) -> &str {
        "rename"
    }
    fn params_digest(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df.rename(&self.from, &self.to)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let m = infer_dataset_input(self.name(), inputs)?;
        m.require(self.name(), &self.from)?;
        if self.from != self.to && m.lookup(&self.to).is_some() {
            return Err(MetaError::new(
                MetaCode::DuplicateColumn,
                format!("rename: target column {:?} already exists", self.to),
            ));
        }
        let cols = m
            .columns
            .iter()
            .map(|(n, dt)| {
                if n == &self.from {
                    (self.to.clone(), *dt)
                } else {
                    (n.clone(), *dt)
                }
            })
            .collect();
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: m.open,
        }))
    }
}

/// Row filter.
pub struct FilterOp {
    /// Row predicate.
    pub predicate: Predicate,
}

impl Operation for FilterOp {
    fn name(&self) -> &str {
        "filter"
    }
    fn params_digest(&self) -> String {
        self.predicate.digest()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::filter(df, &self.predicate).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let m = infer_dataset_input(self.name(), inputs)?;
        check_predicate(&m, &self.predicate)?;
        Ok(ValueMeta::Dataset(m))
    }
}

/// Drop rows with missing values.
pub struct DropNaOp {
    /// Columns to consider (empty = all).
    pub subset: Vec<String>,
}

impl Operation for DropNaOp {
    fn name(&self) -> &str {
        "dropna"
    }
    fn params_digest(&self) -> String {
        self.subset.join(",")
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let subset: Vec<&str> = self.subset.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            df_ops::dropna(df, &subset).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let m = infer_dataset_input(self.name(), inputs)?;
        for c in &self.subset {
            m.require(self.name(), c)?;
        }
        Ok(ValueMeta::Dataset(m))
    }
}

/// Unary column transform.
pub struct MapOp {
    /// Input column.
    pub column: String,
    /// Transform.
    pub f: MapFn,
    /// Output column (may equal `column` to replace in place).
    pub out: String,
}

impl Operation for MapOp {
    fn name(&self) -> &str {
        "map"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}:{}", self.column, self.f.digest(), self.out)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::map_column(df, &self.column, &self.f, &self.out)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let m = infer_dataset_input(self.name(), inputs)?;
        m.require_dtype(self.name(), &self.column, "numeric", DType::is_numeric)?;
        let mut cols = m.columns.clone();
        replace_column(&mut cols, &self.out, Some(DType::Float));
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: m.open,
        }))
    }
}

/// Binary column arithmetic.
pub struct BinaryOp {
    /// Left column.
    pub left: String,
    /// Right column.
    pub right: String,
    /// Arithmetic function.
    pub f: BinFn,
    /// Output column.
    pub out: String,
}

impl Operation for BinaryOp {
    fn name(&self) -> &str {
        "binary_op"
    }
    fn params_digest(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.left,
            self.right,
            self.f.name(),
            self.out
        )
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::binary_op(df, &self.left, &self.right, self.f, &self.out)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let m = infer_dataset_input(self.name(), inputs)?;
        m.require_dtype(self.name(), &self.left, "numeric", DType::is_numeric)?;
        m.require_dtype(self.name(), &self.right, "numeric", DType::is_numeric)?;
        let mut cols = m.columns.clone();
        replace_column(&mut cols, &self.out, Some(DType::Float));
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: m.open,
        }))
    }
}

/// Numeric feature from a string column.
pub struct StrFeatureOp {
    /// Input text column.
    pub column: String,
    /// Feature function.
    pub f: StrFn,
    /// Output column.
    pub out: String,
}

impl Operation for StrFeatureOp {
    fn name(&self) -> &str {
        "str_feature"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}:{}", self.column, self.f.name(), self.out)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::str_feature(df, &self.column, self.f, &self.out)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let m = infer_dataset_input(self.name(), inputs)?;
        m.require_dtype(self.name(), &self.column, "str", |dt| dt == DType::Str)?;
        let mut cols = m.columns.clone();
        replace_column(&mut cols, &self.out, Some(DType::Float));
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: m.open,
        }))
    }
}

/// Join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinHow {
    /// Inner equi-join.
    Inner,
    /// Left outer join.
    Left,
}

/// Two-input equi-join on an integer key (a paper *supernode* operation).
pub struct JoinOp {
    /// Key column present in both inputs.
    pub on: String,
    /// Join flavour.
    pub how: JoinHow,
}

impl Operation for JoinOp {
    fn name(&self) -> &str {
        match self.how {
            JoinHow::Inner => "inner_join",
            JoinHow::Left => "left_join",
        }
    }
    fn params_digest(&self) -> String {
        self.on.clone()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 2)?;
        let left = dataset_input(self.name(), inputs, 0)?;
        let right = dataset_input(self.name(), inputs, 1)?;
        let joined = match self.how {
            JoinHow::Inner => df_ops::inner_join(left, right, &self.on),
            JoinHow::Left => df_ops::left_join(left, right, &self.on),
        }
        .map_err(|e| df_err(self.name(), e))?;
        Ok(Value::dataset(joined))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        meta::expect_arity(self.name(), inputs, 2)?;
        let l = inputs[0].expect_dataset(self.name())?;
        let r = inputs[1].expect_dataset(self.name())?;
        for (side, m) in [("left", &l), ("right", &r)] {
            match m.require(self.name(), &self.on) {
                Err(_) => {
                    return Err(MetaError::new(
                        MetaCode::JoinKeyMismatch,
                        format!(
                            "{}: {side} input has no key column {:?}",
                            self.name(),
                            self.on
                        ),
                    ))
                }
                Ok(Some(dt)) if dt != DType::Int => {
                    return Err(MetaError::new(
                        MetaCode::JoinKeyMismatch,
                        format!(
                            "{}: {side} key column {:?} must be int, found {dt}",
                            self.name(),
                            self.on
                        ),
                    ))
                }
                Ok(_) => {}
            }
        }
        let cols = join_columns(&l.columns, &r.columns, &self.on, self.how == JoinHow::Left);
        let out = DatasetMeta {
            columns: cols,
            open: l.open || r.open,
        };
        out.ensure_unique(self.name())?;
        Ok(ValueMeta::Dataset(out))
    }
}

/// Horizontal concatenation (pandas `concat(axis=1)`), any arity >= 1.
pub struct HConcatOp;

impl Operation for HConcatOp {
    fn name(&self) -> &str {
        "hconcat"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        let frames: Vec<&co_dataframe::DataFrame> = inputs
            .iter()
            .enumerate()
            .map(|(i, _)| dataset_input(self.name(), inputs, i))
            .collect::<Result<_>>()?;
        Ok(Value::dataset(
            df_ops::hconcat(&frames).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        if inputs.is_empty() {
            return Err(MetaError::arity(self.name(), "at least 1", 0));
        }
        let frames = inputs
            .iter()
            .map(|m| m.expect_dataset(self.name()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let per_frame: Vec<_> = frames.iter().map(|f| f.columns.clone()).collect();
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: hconcat_columns(&per_frame),
            open: frames.iter().any(|f| f.open),
        }))
    }
}

/// Vertical concatenation (row stacking), any arity >= 1.
pub struct VConcatOp;

impl Operation for VConcatOp {
    fn name(&self) -> &str {
        "vconcat"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        let frames: Vec<&co_dataframe::DataFrame> = inputs
            .iter()
            .enumerate()
            .map(|(i, _)| dataset_input(self.name(), inputs, i))
            .collect::<Result<_>>()?;
        Ok(Value::dataset(
            df_ops::vconcat(&frames).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        if inputs.is_empty() {
            return Err(MetaError::arity(self.name(), "at least 1", 0));
        }
        let frames = inputs
            .iter()
            .map(|m| m.expect_dataset(self.name()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        if frames.iter().any(|f| f.open) {
            return Ok(ValueMeta::Dataset(DatasetMeta::open(
                frames[0].columns.clone(),
            )));
        }
        let first = &frames[0];
        let mut cols = Vec::with_capacity(first.columns.len());
        for (i, (name, dt0)) in first.columns.iter().enumerate() {
            let mut dt = *dt0;
            for f in &frames[1..] {
                if f.columns.len() != first.columns.len() {
                    return Err(MetaError::new(
                        MetaCode::TypeMismatch,
                        format!(
                            "{}: frames have {} vs {} columns",
                            self.name(),
                            first.columns.len(),
                            f.columns.len()
                        ),
                    ));
                }
                let (n2, dt2) = &f.columns[i];
                if n2 != name {
                    return Err(MetaError::new(
                        MetaCode::TypeMismatch,
                        format!(
                            "{}: column {i} is named {name:?} in one frame and {n2:?} in another",
                            self.name()
                        ),
                    ));
                }
                // Runtime requires equal dtypes per position; statically
                // unknown sides inherit the known one (valid iff it runs).
                match (dt, dt2) {
                    (Some(a), Some(b)) if a != *b => {
                        return Err(MetaError::type_mismatch(self.name(), name, a.name(), *b))
                    }
                    (None, Some(b)) => dt = Some(*b),
                    _ => {}
                }
            }
            cols.push((name.clone(), dt));
        }
        Ok(ValueMeta::Dataset(DatasetMeta::closed(cols)))
    }
}

/// The paper's alignment operation (§7.2), re-implemented as two
/// single-output operations: `side = 0` returns the left frame restricted
/// to the common columns, `side = 1` the right frame. Each output's cost
/// and size can then be measured independently — exactly the workaround
/// the paper describes for multi-output operations.
pub struct AlignOp {
    /// 0 = left output, 1 = right output.
    pub side: usize,
}

impl Operation for AlignOp {
    fn name(&self) -> &str {
        "align"
    }
    fn params_digest(&self) -> String {
        self.side.to_string()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 2)?;
        let a = dataset_input(self.name(), inputs, 0)?;
        let b = dataset_input(self.name(), inputs, 1)?;
        let (left, right) = df_ops::align(a, b).map_err(|e| df_err(self.name(), e))?;
        Ok(Value::dataset(if self.side == 0 { left } else { right }))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        meta::expect_arity(self.name(), inputs, 2)?;
        let l = inputs[0].expect_dataset(self.name())?;
        let r = inputs[1].expect_dataset(self.name())?;
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: align_columns(&l.columns, &r.columns, self.side != 0),
            open: l.open || r.open,
        }))
    }
}

/// Group-by aggregation.
pub struct GroupByOp {
    /// Key column.
    pub key: String,
    /// `(column, aggregate)` pairs.
    pub aggs: Vec<(String, AggFn)>,
}

impl Operation for GroupByOp {
    fn name(&self) -> &str {
        "groupby"
    }
    fn params_digest(&self) -> String {
        let aggs: Vec<String> = self
            .aggs
            .iter()
            .map(|(c, f)| format!("{c}:{}", f.name()))
            .collect();
        format!("{}|{}", self.key, aggs.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let aggs: Vec<(&str, AggFn)> = self.aggs.iter().map(|(c, f)| (c.as_str(), *f)).collect();
        Ok(Value::dataset(
            df_ops::groupby_agg(df, &self.key, &aggs).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if self.aggs.is_empty() {
            return Err(MetaError::new(
                MetaCode::EmptySelection,
                format!("{}: no aggregations requested", self.name()),
            ));
        }
        ds.require_dtype(self.name(), &self.key, "int or str", |dt| {
            dt == DType::Int || dt == DType::Str
        })?;
        for (col, _) in &self.aggs {
            ds.require_dtype(self.name(), col, "numeric", DType::is_numeric)?;
        }
        let mut cols = vec![(self.key.clone(), ds.lookup(&self.key).flatten())];
        for (col, f) in &self.aggs {
            cols.push((format!("{col}_{}", f.name()), Some(DType::Float)));
        }
        let out = DatasetMeta::closed(cols);
        out.ensure_unique(self.name())?;
        Ok(ValueMeta::Dataset(out))
    }
}

/// One-hot encode a string column.
pub struct OneHotOp {
    /// Column to encode.
    pub column: String,
    /// Keep this many categories.
    pub max_categories: usize,
}

impl Operation for OneHotOp {
    fn name(&self) -> &str {
        "one_hot"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}", self.column, self.max_categories)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::one_hot(df, &self.column, self.max_categories)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if self.max_categories == 0 {
            return Err(MetaError::new(
                MetaCode::BadParams,
                format!("{}: max_categories must be positive", self.name()),
            ));
        }
        ds.require_dtype(self.name(), &self.column, "str", |dt| dt == DType::Str)?;
        // The encoded column is dropped; the indicator columns that replace
        // it are named after runtime categories, so the schema becomes open.
        let cols = ds
            .columns
            .iter()
            .filter(|(n, _)| n != &self.column)
            .cloned()
            .collect();
        Ok(ValueMeta::Dataset(DatasetMeta::open(cols)))
    }
}

/// Label-encode a string column.
pub struct LabelEncodeOp {
    /// Column to encode.
    pub column: String,
}

impl Operation for LabelEncodeOp {
    fn name(&self) -> &str {
        "label_encode"
    }
    fn params_digest(&self) -> String {
        self.column.clone()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::label_encode(df, &self.column).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        ds.require_dtype(self.name(), &self.column, "str", |dt| dt == DType::Str)?;
        let mut cols = ds.columns.clone();
        replace_column(&mut cols, &self.column, Some(DType::Int));
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: ds.open,
        }))
    }
}

/// Seeded row sample (the paper's Listing 2 example).
pub struct SampleOp {
    /// Rows to draw.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Operation for SampleOp {
    fn name(&self) -> &str {
        "sample"
    }
    fn params_digest(&self) -> String {
        format!("n={},seed={}", self.n, self.seed)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::sample(df, self.n, self.seed).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        Ok(ValueMeta::Dataset(infer_dataset_input(
            self.name(),
            inputs,
        )?))
    }
}

/// Sort rows by a column.
pub struct SortOp {
    /// Sort key column.
    pub column: String,
    /// Ascending order?
    pub ascending: bool,
}

impl Operation for SortOp {
    fn name(&self) -> &str {
        "sort"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}", self.column, self.ascending)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::sort_by(df, &self.column, self.ascending)
                .map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        ds.require(self.name(), &self.column)?;
        Ok(ValueMeta::Dataset(ds))
    }
}

/// Scale numeric columns.
pub struct ScaleOp {
    /// Standard or min-max.
    pub kind: ScaleKind,
    /// Columns to scale.
    pub columns: Vec<String>,
}

impl Operation for ScaleOp {
    fn name(&self) -> &str {
        "scale"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.kind.name(), self.columns.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            feature::scale(df, self.kind, &cols).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        let mut cols = ds.columns.clone();
        for c in &self.columns {
            ds.require_dtype(self.name(), c, "numeric", DType::is_numeric)?;
            replace_column(&mut cols, c, Some(DType::Float));
        }
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: ds.open,
        }))
    }
}

/// Impute missing values.
pub struct ImputeOp {
    /// Fill strategy.
    pub strategy: ImputeStrategy,
    /// Columns to fill.
    pub columns: Vec<String>,
}

impl Operation for ImputeOp {
    fn name(&self) -> &str {
        "impute"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.strategy.digest(), self.columns.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            feature::impute(df, self.strategy, &cols).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        let mut cols = ds.columns.clone();
        for c in &self.columns {
            ds.require_dtype(self.name(), c, "numeric", DType::is_numeric)?;
            replace_column(&mut cols, c, Some(DType::Float));
        }
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: ds.open,
        }))
    }
}

/// Bag-of-words vectorisation of a text column.
pub struct CountVectorizeOp {
    /// Text column.
    pub column: String,
    /// Vocabulary parameters.
    pub params: VectorizerParams,
}

impl Operation for CountVectorizeOp {
    fn name(&self) -> &str {
        "count_vectorize"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.column, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            feature::count_vectorize(df, &self.column, &self.params)
                .map_err(|e| ml_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if self.params.max_features == 0 {
            return Err(MetaError::new(
                MetaCode::BadParams,
                format!("{}: max_features must be positive", self.name()),
            ));
        }
        ds.require_dtype(self.name(), &self.column, "str", |dt| dt == DType::Str)?;
        // Output columns are `{col}#{token}` for runtime vocabulary tokens.
        Ok(ValueMeta::Dataset(DatasetMeta::open(Vec::new())))
    }
}

/// TF-IDF vectorisation of a text column.
pub struct TfidfVectorizeOp {
    /// Text column.
    pub column: String,
    /// Vocabulary parameters.
    pub params: VectorizerParams,
}

impl Operation for TfidfVectorizeOp {
    fn name(&self) -> &str {
        "tfidf_vectorize"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.column, self.params.digest())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            feature::tfidf_vectorize(df, &self.column, &self.params)
                .map_err(|e| ml_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if self.params.max_features == 0 {
            return Err(MetaError::new(
                MetaCode::BadParams,
                format!("{}: max_features must be positive", self.name()),
            ));
        }
        ds.require_dtype(self.name(), &self.column, "str", |dt| dt == DType::Str)?;
        Ok(ValueMeta::Dataset(DatasetMeta::open(Vec::new())))
    }
}

/// Univariate feature selection.
pub struct SelectKBestOp {
    /// Label column (excluded from the output).
    pub label: String,
    /// Number of features to keep.
    pub k: usize,
}

impl Operation for SelectKBestOp {
    fn name(&self) -> &str {
        "select_k_best"
    }
    fn params_digest(&self) -> String {
        format!("{}|k={}", self.label, self.k)
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            feature::select_k_best(df, &self.label, self.k).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if self.k == 0 {
            return Err(MetaError::new(
                MetaCode::BadParams,
                format!("{}: k must be positive", self.name()),
            ));
        }
        ds.require_dtype(self.name(), &self.label, "numeric", DType::is_numeric)?;
        if !ds.open && ds.numeric_columns(&[self.label.as_str()]).is_empty() {
            return Err(MetaError::new(
                MetaCode::EmptySelection,
                format!("{}: input has no numeric feature columns", self.name()),
            ));
        }
        // The surviving feature subset is score-dependent.
        Ok(ValueMeta::Dataset(DatasetMeta::open(Vec::new())))
    }
}

/// PCA projection of numeric columns.
pub struct PcaOp {
    /// Input columns.
    pub columns: Vec<String>,
    /// PCA parameters.
    pub params: PcaParams,
}

impl Operation for PcaOp {
    fn name(&self) -> &str {
        "pca"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.params.digest(), self.columns.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            feature::pca(df, &cols, &self.params).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        let k = self.params.n_components;
        if k == 0 || k > self.columns.len() {
            return Err(MetaError::new(
                MetaCode::BadParams,
                format!(
                    "{}: n_components must be in 1..={}, got {k}",
                    self.name(),
                    self.columns.len()
                ),
            ));
        }
        for c in &self.columns {
            ds.require_dtype(self.name(), c, "numeric", DType::is_numeric)?;
        }
        Ok(ValueMeta::Dataset(DatasetMeta::closed(
            (0..k)
                .map(|i| (format!("pc{i}"), Some(DType::Float)))
                .collect(),
        )))
    }
}

/// K-means cluster-distance features: fit k-means on the named numeric
/// columns and append one `Float` distance column per centroid
/// (`cluster_d0..`). Like [`PcaOp`], a feature-engineering *model* in the
/// paper's sense, wrapped as a data operation over its training input.
pub struct ClusterFeaturesOp {
    /// Input columns.
    pub columns: Vec<String>,
    /// K-means hyperparameters.
    pub params: co_ml::cluster::KMeansParams,
}

impl Operation for ClusterFeaturesOp {
    fn name(&self) -> &str {
        "cluster_features"
    }
    fn params_digest(&self) -> String {
        format!("{}|{}", self.params.digest(), self.columns.join(","))
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let sub = df.select(&cols).map_err(|e| df_err(self.name(), e))?;
        let x = co_ml::dataset::features_only(&sub).map_err(|e| ml_err(self.name(), e))?;
        let model = co_ml::cluster::KMeans::new(self.params.clone())
            .fit(&x)
            .map_err(|e| ml_err(self.name(), e))?;
        let distances = model.transform(&x);
        let base = co_dataframe::ColumnId::derive_many(&sub.column_ids(), self.op_hash());
        let mut out = df.clone();
        for c in 0..distances.cols() {
            let id = base.derive(co_dataframe::hash::fnv1a_parts(&[
                "cluster",
                &c.to_string(),
            ]));
            out = out
                .with_column(co_dataframe::Column::derived(
                    &format!("cluster_d{c}"),
                    id,
                    co_dataframe::ColumnData::Float(distances.column(c)),
                ))
                .map_err(|e| df_err(self.name(), e))?;
        }
        Ok(Value::dataset(out))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if self.columns.is_empty() {
            return Err(MetaError::new(
                MetaCode::EmptySelection,
                format!("{}: no input columns", self.name()),
            ));
        }
        // `features_only` keeps the numeric subset, so a statically
        // all-string selection can never produce features.
        let mut maybe_numeric = false;
        for c in &self.columns {
            match ds.require(self.name(), c)? {
                Some(dt) if !dt.is_numeric() => {}
                _ => maybe_numeric = true,
            }
        }
        if !maybe_numeric {
            return Err(MetaError::new(
                MetaCode::EmptySelection,
                format!("{}: none of the named columns is numeric", self.name()),
            ));
        }
        let mut cols = ds.columns.clone();
        for c in 0..self.params.k {
            replace_column(&mut cols, &format!("cluster_d{c}"), Some(DType::Float));
        }
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: ds.open,
        }))
    }
}

/// Degree-2 polynomial feature expansion.
pub struct PolyOp {
    /// Input columns.
    pub columns: Vec<String>,
}

impl Operation for PolyOp {
    fn name(&self) -> &str {
        "poly2"
    }
    fn params_digest(&self) -> String {
        self.columns.join(",")
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        Ok(Value::dataset(
            feature::polynomial_features(df, &cols).map_err(|e| ml_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if self.columns.is_empty() {
            return Err(MetaError::new(
                MetaCode::EmptySelection,
                format!("{}: no input columns", self.name()),
            ));
        }
        let mut cols = ds.columns.clone();
        for c in &self.columns {
            ds.require_dtype(self.name(), c, "numeric", DType::is_numeric)?;
            replace_column(&mut cols, &format!("{c}^2"), Some(DType::Float));
        }
        for (i, a) in self.columns.iter().enumerate() {
            for b in &self.columns[i + 1..] {
                replace_column(&mut cols, &format!("{a}*{b}"), Some(DType::Float));
            }
        }
        Ok(ValueMeta::Dataset(DatasetMeta {
            columns: cols,
            open: ds.open,
        }))
    }
}

/// Whole-column aggregate producing an `Aggregate` artifact.
pub struct AggOp {
    /// Column to aggregate.
    pub column: String,
    /// Aggregate function.
    pub f: AggFn,
}

impl Operation for AggOp {
    fn name(&self) -> &str {
        "agg"
    }
    fn params_digest(&self) -> String {
        format!("{}:{}", self.column, self.f.name())
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Aggregate
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::Aggregate(
            df_ops::agg_column(df, &self.column, self.f).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        ds.require_dtype(self.name(), &self.column, "numeric", DType::is_numeric)?;
        Ok(ValueMeta::Aggregate)
    }
}

/// Frequency table of a column.
pub struct ValueCountsOp {
    /// Column to count.
    pub column: String,
}

impl Operation for ValueCountsOp {
    fn name(&self) -> &str {
        "value_counts"
    }
    fn params_digest(&self) -> String {
        self.column.clone()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::value_counts(df, &self.column).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        ds.require_dtype(self.name(), &self.column, "str or int", |dt| {
            dt == DType::Str || dt == DType::Int
        })?;
        let out = DatasetMeta::closed(vec![
            (self.column.clone(), Some(DType::Str)),
            ("count".to_owned(), Some(DType::Int)),
        ]);
        out.ensure_unique(self.name())?;
        Ok(ValueMeta::Dataset(out))
    }
}

/// Summary statistics (a typical visualization terminal).
pub struct DescribeOp;

impl Operation for DescribeOp {
    fn name(&self) -> &str {
        "describe"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::describe(df).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if !ds.open && ds.numeric_columns(&[]).is_empty() {
            return Err(MetaError::new(
                MetaCode::EmptySelection,
                format!("{}: input has no numeric columns", self.name()),
            ));
        }
        Ok(ValueMeta::Dataset(DatasetMeta::closed(vec![
            ("column".to_owned(), Some(DType::Str)),
            ("mean".to_owned(), Some(DType::Float)),
            ("std".to_owned(), Some(DType::Float)),
            ("min".to_owned(), Some(DType::Float)),
            ("max".to_owned(), Some(DType::Float)),
            ("count".to_owned(), Some(DType::Float)),
        ])))
    }
}

/// Pearson correlation matrix (a typical visualization terminal).
pub struct CorrOp;

impl Operation for CorrOp {
    fn name(&self) -> &str {
        "corr"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> Result<Value> {
        arity(self.name(), inputs, 1)?;
        let df = dataset_input(self.name(), inputs, 0)?;
        Ok(Value::dataset(
            df_ops::corr_matrix(df).map_err(|e| df_err(self.name(), e))?,
        ))
    }
    fn infer(&self, inputs: &[&ValueMeta]) -> MetaResult {
        let ds = infer_dataset_input(self.name(), inputs)?;
        if !ds.open && ds.numeric_columns(&[]).is_empty() {
            return Err(MetaError::new(
                MetaCode::EmptySelection,
                format!("{}: input has no numeric columns", self.name()),
            ));
        }
        // The numeric subset (and thus the output columns) is only known
        // when every dtype is; otherwise fall back to an open schema.
        if ds.open || ds.columns.iter().any(|(_, dt)| dt.is_none()) {
            return Ok(ValueMeta::Dataset(DatasetMeta::open(vec![(
                "column".to_owned(),
                Some(DType::Str),
            )])));
        }
        let mut cols = vec![("column".to_owned(), Some(DType::Str))];
        cols.extend(
            ds.numeric_columns(&[])
                .into_iter()
                .map(|n| (n, Some(DType::Float))),
        );
        let out = DatasetMeta::closed(cols);
        out.ensure_unique(self.name())?;
        Ok(ValueMeta::Dataset(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::{Column, ColumnData, DataFrame};

    fn dataset() -> Value {
        Value::dataset(
            DataFrame::new(vec![
                Column::source("t", "x", ColumnData::Float(vec![1.0, 2.0, 3.0])),
                Column::source("t", "k", ColumnData::Int(vec![1, 1, 2])),
                Column::source(
                    "t",
                    "s",
                    ColumnData::Str(vec!["a".into(), "b".into(), "a".into()]),
                ),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn single_input_ops_run() {
        let v = dataset();
        let inputs = [&v];
        let out = SelectOp {
            columns: vec!["x".into()],
        }
        .run(&inputs)
        .unwrap();
        assert_eq!(out.as_dataset().unwrap().n_cols(), 1);
        let out = FilterOp {
            predicate: Predicate::gt_f("x", 1.5),
        }
        .run(&inputs)
        .unwrap();
        assert_eq!(out.as_dataset().unwrap().n_rows(), 2);
        let out = MapOp {
            column: "x".into(),
            f: MapFn::Abs,
            out: "ax".into(),
        }
        .run(&inputs)
        .unwrap();
        assert!(out.as_dataset().unwrap().has_column("ax"));
        let out = GroupByOp {
            key: "k".into(),
            aggs: vec![("x".into(), AggFn::Sum)],
        }
        .run(&inputs)
        .unwrap();
        assert_eq!(out.as_dataset().unwrap().n_rows(), 2);
        let out = OneHotOp {
            column: "s".into(),
            max_categories: 2,
        }
        .run(&inputs)
        .unwrap();
        assert!(out.as_dataset().unwrap().has_column("s=a"));
        let out = AggOp {
            column: "x".into(),
            f: AggFn::Mean,
        }
        .run(&inputs)
        .unwrap();
        assert_eq!(out.as_aggregate().unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn multi_input_ops_validate_arity() {
        let v = dataset();
        let op = JoinOp {
            on: "k".into(),
            how: JoinHow::Inner,
        };
        assert!(op.run(&[&v]).is_err());
        let out = op.run(&[&v, &v]).unwrap();
        assert!(out.as_dataset().unwrap().n_rows() > 0);
        let align = AlignOp { side: 0 };
        assert!(align.run(&[&v]).is_err());
        let out = align.run(&[&v, &v]).unwrap();
        assert_eq!(out.as_dataset().unwrap().n_cols(), 3);
    }

    #[test]
    fn cluster_features_append_distances() {
        let v = dataset();
        let op = ClusterFeaturesOp {
            columns: vec!["x".into(), "k".into()],
            params: co_ml::cluster::KMeansParams {
                k: 2,
                ..Default::default()
            },
        };
        let out = op.run(&[&v]).unwrap();
        let df = out.as_dataset().unwrap();
        assert!(df.has_column("cluster_d0"));
        assert!(df.has_column("cluster_d1"));
        assert_eq!(df.n_cols(), 5); // originals + 2 distance columns
                                    // Original columns untouched (ids preserved).
        assert_eq!(
            df.column("s").unwrap().id(),
            v.as_dataset().unwrap().column("s").unwrap().id()
        );
        // Deterministic lineage.
        let again = op.run(&[&v]).unwrap();
        assert_eq!(
            again
                .as_dataset()
                .unwrap()
                .column("cluster_d0")
                .unwrap()
                .id(),
            df.column("cluster_d0").unwrap().id()
        );
    }

    #[test]
    fn op_hashes_distinguish_params() {
        let a = SelectOp {
            columns: vec!["x".into()],
        };
        let b = SelectOp {
            columns: vec!["k".into()],
        };
        assert_ne!(a.op_hash(), b.op_hash());
        let f1 = FilterOp {
            predicate: Predicate::gt_f("x", 1.0),
        };
        let f2 = FilterOp {
            predicate: Predicate::gt_f("x", 2.0),
        };
        assert_ne!(f1.op_hash(), f2.op_hash());
        // Different op types never collide on the same digest.
        assert_ne!(
            a.op_hash(),
            DropColumnsOp {
                columns: vec!["x".into()]
            }
            .op_hash()
        );
    }

    #[test]
    fn wrong_input_kind_is_reported() {
        let agg = Value::Aggregate(co_dataframe::Scalar::Int(1));
        let err = SelectOp { columns: vec![] }.run(&[&agg]).unwrap_err();
        assert!(matches!(err, GraphError::BadOperationInput { .. }));
    }
}
