//! The standard operation library: implementations of
//! [`co_graph::Operation`] wrapping the dataframe and ML substrates.
//!
//! These are the operations the paper's wrapper-pandas / wrapper-sklearn
//! parser emits (Listing 1); user-defined operations implement the same
//! trait (Listing 2).

mod data;
mod train;

pub use data::{
    AggOp, AlignOp, BinaryOp, ClusterFeaturesOp, CorrOp, CountVectorizeOp, DescribeOp,
    DropColumnsOp, DropNaOp, FilterOp, GroupByOp, HConcatOp, ImputeOp, JoinHow, JoinOp,
    LabelEncodeOp, MapOp, OneHotOp, PcaOp, PolyOp, RenameOp, SampleOp, ScaleOp, SelectKBestOp,
    SelectOp, SortOp, StrFeatureOp, TfidfVectorizeOp, VConcatOp, ValueCountsOp,
};
pub use train::{
    EvalMetric, EvaluateOp, PredictOp, TrainForestOp, TrainGbtOp, TrainLogisticOp, TrainRidgeOp,
    TrainSvmOp, TrainTreeOp,
};

use co_dataframe::DataFrame;
use co_graph::{GraphError, Value};

/// Extract the `idx`-th input as a dataset, with a contextual error.
pub(crate) fn dataset_input<'a>(
    op: &str,
    inputs: &[&'a Value],
    idx: usize,
) -> co_graph::Result<&'a DataFrame> {
    inputs
        .get(idx)
        .and_then(|v| v.as_dataset())
        .ok_or_else(|| GraphError::BadOperationInput {
            op: op.to_owned(),
            message: format!(
                "input {idx} must be a dataset ({} inputs given)",
                inputs.len()
            ),
        })
}

/// Require an exact input arity.
pub(crate) fn arity(op: &str, inputs: &[&Value], n: usize) -> co_graph::Result<()> {
    if inputs.len() == n {
        Ok(())
    } else {
        Err(GraphError::BadOperationInput {
            op: op.to_owned(),
            message: format!("expected {n} inputs, got {}", inputs.len()),
        })
    }
}
