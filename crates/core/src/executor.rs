//! The client-side executor (paper §3.1, step 4).
//!
//! Runs the optimized DAG in topological order: loads planned artifacts
//! from the Experiment Graph (charging the modelled load cost), executes
//! the remaining operations while measuring wall-clock compute time, and
//! annotates every produced vertex with ⟨compute-time, size⟩ for the
//! updater. Training operations are warmstarted from the best candidate
//! model when the session enables it (§6.2).
//!
//! Execution is split in two halves (DESIGN.md §9): `snapshot` captures
//! everything the run needs from the graph (planned loads, warmstart
//! candidates, the fault injector) and is the only half that reads the
//! Experiment Graph — the server calls it under the EG read lock;
//! `execute_snapshot` / `execute_snapshot_parallel` then run every
//! `Operation::run` against the snapshot alone, entirely lock-free. The
//! public [`execute`] / [`execute_parallel`] entry points compose the two
//! for callers that already hold a graph reference.
//!
//! ## Failure semantics
//!
//! The executor degrades rather than aborts (see DESIGN.md, "Failure
//! semantics"):
//!
//! * a planned **load that misses** the store falls back to recomputing
//!   the artifact's subtree (counted in
//!   [`ExecutionReport::load_misses_recovered`]); only artifacts with no
//!   producer are unrecoverable, and their error names the workload node;
//! * **transient operation failures** are retried under the configured
//!   [`RetryPolicy`] with capped exponential backoff;
//! * **panics** inside `Operation::run` are caught and isolated as
//!   [`GraphError::OperationPanicked`];
//! * a terminal failure **taints** the failing node and everything
//!   downstream of it; untainted nodes still execute, and the returned
//!   [`WorkloadError`] carries the report, the completed vertices, and
//!   the taint mask so the server can salvage the progress.

use crate::cost::CostModel;
use crate::failure::{Quarantine, RetryPolicy, WorkloadError};
use crate::optimizer::ReusePlan;
use crate::report::ExecutionReport;
use crate::warmstart;
use co_graph::operation::OpRef;
use co_graph::{FaultInjector, GraphError, GraphQuery, NodeId, NodeKind, Value, WorkloadDag};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Executor configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecutorConfig {
    /// Load-cost model for reused artifacts.
    pub cost: CostModel,
    /// Warmstart model training operations when a candidate exists
    /// (the paper only warmstarts "when users explicitly request it").
    pub warmstart: bool,
    /// Retry policy applied to transient operation failures.
    pub retry: RetryPolicy,
    /// Shared quarantine registry (usually the server's); quarantined
    /// operations fast-fail without running.
    pub quarantine: Option<Arc<Quarantine>>,
}

/// Executor result: a report on success, a partial-progress error
/// otherwise.
pub type ExecResult = Result<ExecutionReport, WorkloadError>;

#[derive(Clone, Copy, PartialEq)]
enum Action {
    Skip,
    Load,
    Compute,
}

/// Outcome of the backward pass: per-node actions, with planned loads
/// already fetched (so each fetch happens exactly once) and load misses
/// degraded to recomputation where a producer exists.
struct Prepared {
    action: Vec<Action>,
    loaded: Vec<Option<Value>>,
    load_misses_recovered: usize,
}

fn prepare(dag: &WorkloadDag, plan: &ReusePlan, eg: &dyn GraphQuery) -> co_graph::Result<Prepared> {
    let n = dag.n_nodes();
    if plan.load.len() != n {
        return Err(GraphError::InvalidStructure(format!(
            "plan covers {} nodes, workload has {n}",
            plan.load.len()
        )));
    }
    let mut action = vec![Action::Skip; n];
    let mut loaded: Vec<Option<Value>> = vec![None; n];
    let mut load_misses_recovered = 0;
    let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
    if stack.is_empty() {
        return Err(GraphError::NoTerminals);
    }
    let mut visited = vec![false; n];
    while let Some(i) = stack.pop() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        if dag.node(NodeId(i))?.computed.is_some() {
            continue; // already in client memory
        }
        if plan.load[i] {
            let artifact = dag.node(NodeId(i))?.artifact;
            if let Some(value) = eg.load_content(artifact) {
                action[i] = Action::Load;
                loaded[i] = Some(value);
                continue;
            }
            // Planned load missed the store (evicted, corrupted, or
            // fault-injected). With a producer we degrade to recomputing
            // the subtree; without one the node is unrecoverable and the
            // forward pass reports it.
            if dag.producer(NodeId(i)).is_none() {
                action[i] = Action::Load;
                continue;
            }
            load_misses_recovered += 1;
        }
        action[i] = Action::Compute;
        stack.extend(dag.parents(NodeId(i)).iter().map(|p| p.0));
    }
    Ok(Prepared {
        action,
        loaded,
        load_misses_recovered,
    })
}

/// Everything execution needs from the Experiment Graph, captured up
/// front: per-node actions, planned loads (Arc clones of stored content,
/// so the fetch is cheap), warmstart candidates, and the store's fault
/// injector. Once a snapshot exists, execution never touches the graph —
/// the server's planning stage builds one under the EG read lock and
/// releases the lock before any `Operation::run` starts.
///
/// Snapshot semantics: loads reflect the store at planning time. A
/// concurrent eviction after the snapshot cannot fail this execution
/// (the content is already held via `Arc`); a concurrent publication is
/// simply not seen until the next workload plans.
pub(crate) struct ExecutionSnapshot {
    action: Vec<Action>,
    loaded: Vec<Option<Value>>,
    warm: Vec<Option<co_ml::TrainedModel>>,
    faults: Option<Arc<FaultInjector>>,
    load_misses_recovered: usize,
}

/// Build the execution snapshot for a planned workload: the `prepare`
/// backward pass (planned loads fetched exactly once, misses degraded to
/// recomputation) plus warmstart-candidate prefetch for every node that
/// will compute.
pub(crate) fn snapshot(
    dag: &WorkloadDag,
    plan: &ReusePlan,
    eg: &dyn GraphQuery,
    config: &ExecutorConfig,
) -> co_graph::Result<ExecutionSnapshot> {
    let Prepared {
        action,
        loaded,
        load_misses_recovered,
    } = prepare(dag, plan, eg)?;
    let n = dag.n_nodes();
    let mut warm: Vec<Option<co_ml::TrainedModel>> = vec![None; n];
    if config.warmstart {
        for i in 0..n {
            if action[i] != Action::Compute {
                continue;
            }
            let Some(edge) = dag.producer(NodeId(i)) else {
                continue;
            };
            if !edge.op.warmstartable() {
                continue;
            }
            warm[i] = edge.op.model_kind().and_then(|kind| {
                // A trainer with no inputs is malformed (the validator
                // rejects it); don't panic if one slips through here.
                let train_input = dag.nodes()[edge.inputs.first()?.0].artifact;
                let own = dag.nodes()[i].artifact;
                warmstart::find_candidate(eg, train_input, kind, own)
            });
        }
    }
    Ok(ExecutionSnapshot {
        action,
        loaded,
        warm,
        faults: eg.fault_injector(),
        load_misses_recovered,
    })
}

/// The detailed error for a load miss that cannot be recomputed.
fn unrecoverable_load(dag: &WorkloadDag, i: usize) -> GraphError {
    let node = &dag.nodes()[i];
    let what = node.name.as_deref().map_or_else(
        || "no producer".to_owned(),
        |name| format!("source {name:?}"),
    );
    GraphError::NotMaterialized {
        artifact: node.artifact.0,
        detail: format!("workload node {i}, {what}"),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

struct OpOutcome {
    result: co_graph::Result<Value>,
    /// Wall-clock across all attempts (the resource cost).
    compute_seconds: f64,
    /// Wall-clock of the successful attempt (the annotation value).
    last_attempt_seconds: f64,
    retries: usize,
    panics_caught: usize,
}

/// Run one operation under the full failure discipline: quarantine
/// fast-fail, fault injection, panic isolation, per-attempt and
/// per-workload deadlines, and retry with capped exponential backoff
/// for transient errors.
fn run_op_with_retry(
    op: &OpRef,
    inputs: &[&Value],
    warm: Option<&co_ml::TrainedModel>,
    faults: Option<&FaultInjector>,
    policy: &RetryPolicy,
    quarantine: Option<&Quarantine>,
    workload_start: Instant,
) -> OpOutcome {
    let name = op.name().to_owned();
    let hash = op.op_hash();
    let mut outcome = OpOutcome {
        result: Err(GraphError::NoTerminals), // overwritten below
        compute_seconds: 0.0,
        last_attempt_seconds: 0.0,
        retries: 0,
        panics_caught: 0,
    };
    if let Some(q) = quarantine {
        if let Some(err) = q.check(hash) {
            outcome.result = Err(err);
            return outcome;
        }
    }
    let mut attempt = 1;
    loop {
        if let Some(deadline) = policy.workload_deadline {
            if workload_start.elapsed() >= deadline {
                outcome.result = Err(GraphError::DeadlineExceeded {
                    what: "workload".to_owned(),
                    seconds: deadline.as_secs_f64(),
                });
                return outcome;
            }
        }
        let start = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| {
            if let Some(f) = faults {
                f.before_run(&name)?;
            }
            op.run_warm(inputs, warm)
        }));
        let elapsed = start.elapsed().as_secs_f64();
        outcome.compute_seconds += elapsed;
        outcome.last_attempt_seconds = elapsed;
        let mut result = match run {
            Ok(r) => r,
            Err(payload) => {
                outcome.panics_caught += 1;
                Err(GraphError::OperationPanicked {
                    op: name.clone(),
                    message: panic_message(payload),
                })
            }
        };
        if result.is_ok() {
            if let Some(deadline) = policy.op_deadline {
                if elapsed > deadline.as_secs_f64() {
                    result = Err(GraphError::DeadlineExceeded {
                        what: format!("operation {name:?}"),
                        seconds: deadline.as_secs_f64(),
                    });
                }
            }
        }
        match result {
            Ok(value) => {
                if let Some(q) = quarantine {
                    q.record_success(hash);
                }
                outcome.result = Ok(value);
                return outcome;
            }
            Err(e) if e.is_transient() && attempt < policy.max_attempts => {
                outcome.retries += 1;
                std::thread::sleep(policy.backoff(outcome.retries));
                attempt += 1;
            }
            Err(e) => {
                // Terminal for this node. Failed runs (not deadline
                // overruns, which may be the environment's fault) feed
                // the quarantine streak.
                if let Some(q) = quarantine {
                    if matches!(
                        e,
                        GraphError::OperationFailed { .. } | GraphError::OperationPanicked { .. }
                    ) {
                        q.record_failure(hash, &name);
                    }
                }
                outcome.result = Err(e);
                return outcome;
            }
        }
    }
}

/// Taint must cover everything downstream of a failure so the untainted
/// set stays ancestor-closed (a salvage-merge requirement). Index order
/// is topological, so one forward sweep closes it transitively.
fn close_taint(dag: &WorkloadDag, tainted: &mut [bool]) {
    for i in 0..tainted.len() {
        if !tainted[i] && dag.parents(NodeId(i)).iter().any(|p| tainted[p.0]) {
            tainted[i] = true;
        }
    }
}

/// Execute an optimized workload DAG against the Experiment Graph.
///
/// On success every terminal node of `dag` holds its value
/// (`node.computed`), and executed nodes carry fresh
/// ⟨compute-time, size⟩ annotations. On failure, untainted nodes have
/// still executed and the [`WorkloadError`] describes the salvageable
/// progress.
pub fn execute(
    dag: &mut WorkloadDag,
    plan: &ReusePlan,
    eg: &dyn GraphQuery,
    config: &ExecutorConfig,
) -> ExecResult {
    let snap = snapshot(dag, plan, eg, config)?;
    execute_snapshot(dag, snap, config)
}

/// Execute a workload against a previously captured [`ExecutionSnapshot`]
/// — the lock-free half of [`execute`]. Requires no access to the
/// Experiment Graph at all; every operation runs against values held by
/// the snapshot or produced earlier in this pass.
pub(crate) fn execute_snapshot(
    dag: &mut WorkloadDag,
    snap: ExecutionSnapshot,
    config: &ExecutorConfig,
) -> ExecResult {
    let workload_start = Instant::now();
    let ExecutionSnapshot {
        action,
        mut loaded,
        mut warm,
        faults,
        load_misses_recovered,
    } = snap;
    let n = dag.n_nodes();
    let quarantine = config.quarantine.as_deref();

    let mut report = ExecutionReport {
        load_misses_recovered,
        ..ExecutionReport::default()
    };
    let mut tainted = vec![false; n];
    let mut first_error: Option<GraphError> = None;
    let mut completed: Vec<NodeId> = Vec::new();

    // Forward pass in topological (index) order.
    for i in 0..n {
        if dag.parents(NodeId(i)).iter().any(|p| tainted[p.0]) {
            tainted[i] = true;
            continue;
        }
        match action[i] {
            Action::Skip => {
                if dag.node(NodeId(i))?.computed.is_none() {
                    report.nodes_skipped += 1;
                }
            }
            Action::Load => match loaded[i].take() {
                Some(value) => {
                    report.load_seconds += config.cost.load_cost(value.nbytes() as u64);
                    report.artifacts_loaded += 1;
                    if let Value::Model(m) = &value {
                        dag.node_mut(NodeId(i))?.quality = m.quality;
                        report.best_model_quality = report.best_model_quality.max(m.quality);
                    }
                    dag.set_computed(NodeId(i), value)?;
                    completed.push(NodeId(i));
                }
                None => {
                    tainted[i] = true;
                    if first_error.is_none() {
                        first_error = Some(unrecoverable_load(dag, i));
                    }
                }
            },
            Action::Compute => {
                let edge = dag.producer(NodeId(i)).ok_or_else(|| {
                    GraphError::InvalidStructure(format!(
                        "node {i} must be computed but has no producer"
                    ))
                })?;
                let op = Arc::clone(&edge.op);
                let input_ids = edge.inputs.clone();

                // Warmstart candidates were prefetched into the snapshot
                // under the planning lock.
                let warm_model = warm[i].take();
                if warm_model.is_some() {
                    report.warmstarts += 1;
                }

                let inputs: Vec<&Value> = input_ids
                    .iter()
                    .map(|p| {
                        dag.nodes()[p.0].computed.as_ref().ok_or_else(|| {
                            GraphError::InvalidStructure(format!(
                                "input node {} of node {i} has no value",
                                p.0
                            ))
                        })
                    })
                    .collect::<co_graph::Result<_>>()?;

                let outcome = run_op_with_retry(
                    &op,
                    &inputs,
                    warm_model.as_ref(),
                    faults.as_deref(),
                    &config.retry,
                    quarantine,
                    workload_start,
                );
                report.compute_seconds += outcome.compute_seconds;
                report.retries += outcome.retries;
                report.panics_caught += outcome.panics_caught;
                match outcome.result {
                    Ok(value) => {
                        report.ops_executed += 1;
                        if let Value::Model(m) = &value {
                            dag.node_mut(NodeId(i))?.quality = m.quality;
                            report.best_model_quality = report.best_model_quality.max(m.quality);
                        }
                        // Evaluation feedback: refine the input model's
                        // quality.
                        if op.is_evaluation() {
                            if let Some(score) = value.as_aggregate().and_then(|s| s.as_f64()) {
                                for p in &input_ids {
                                    if dag.nodes()[p.0].kind == NodeKind::Model {
                                        let node = dag.node_mut(*p)?;
                                        node.quality = score.clamp(0.0, 1.0);
                                        report.best_model_quality =
                                            report.best_model_quality.max(node.quality);
                                    }
                                }
                            }
                        }
                        let size = value.nbytes() as u64;
                        dag.set_computed(NodeId(i), value)?;
                        dag.annotate(NodeId(i), outcome.last_attempt_seconds, size)?;
                        completed.push(NodeId(i));
                    }
                    Err(e) => {
                        tainted[i] = true;
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        }
    }
    match first_error {
        None => Ok(report),
        Some(error) => {
            close_taint(dag, &mut tainted);
            Err(WorkloadError {
                error,
                report: Box::new(report),
                completed,
                tainted,
            })
        }
    }
}

/// Execute an optimized workload DAG with **level-parallel** operation
/// execution: operations whose inputs are all available run concurrently
/// on scoped threads (e.g. the three model trainings of the paper's
/// Workload 1 proceed at once).
///
/// Semantics match [`execute`] exactly — same values, same annotations,
/// same report fields, same failure semantics (taint, retry, panic
/// isolation). `compute_seconds` remains the *sum* of per-op times (the
/// resource cost); wall-clock time can be lower. Warmstart candidate
/// lookup happens before each level is dispatched, so two same-level
/// trainings never observe each other (deterministic).
pub fn execute_parallel(
    dag: &mut WorkloadDag,
    plan: &ReusePlan,
    eg: &dyn GraphQuery,
    config: &ExecutorConfig,
) -> ExecResult {
    let snap = snapshot(dag, plan, eg, config)?;
    execute_snapshot_parallel(dag, snap, config)
}

/// Level-parallel execution against a captured snapshot; the lock-free
/// half of [`execute_parallel`], mirroring [`execute_snapshot`].
pub(crate) fn execute_snapshot_parallel(
    dag: &mut WorkloadDag,
    snap: ExecutionSnapshot,
    config: &ExecutorConfig,
) -> ExecResult {
    let workload_start = Instant::now();
    let ExecutionSnapshot {
        action,
        mut loaded,
        warm: mut warm_candidates,
        faults,
        load_misses_recovered,
    } = snap;
    let n = dag.n_nodes();
    let faults_ref = faults.as_deref();
    let quarantine = config.quarantine.as_deref();
    let retry = config.retry;

    let mut report = ExecutionReport {
        load_misses_recovered,
        ..ExecutionReport::default()
    };
    let mut tainted = vec![false; n];
    let mut first_error: Option<GraphError> = None;
    let mut completed: Vec<NodeId> = Vec::new();

    // Resolve loads and count skips up front (loads are already-fetched
    // values plus a charged cost — not worth a thread).
    #[allow(clippy::needless_range_loop)] // lint:reason parallel arrays indexed by node id
    for i in 0..n {
        match action[i] {
            Action::Skip => {
                if dag.node(NodeId(i))?.computed.is_none() {
                    report.nodes_skipped += 1;
                }
            }
            Action::Load => match loaded[i].take() {
                Some(value) => {
                    report.load_seconds += config.cost.load_cost(value.nbytes() as u64);
                    report.artifacts_loaded += 1;
                    if let Value::Model(m) = &value {
                        dag.node_mut(NodeId(i))?.quality = m.quality;
                        report.best_model_quality = report.best_model_quality.max(m.quality);
                    }
                    dag.set_computed(NodeId(i), value)?;
                    completed.push(NodeId(i));
                }
                None => {
                    tainted[i] = true;
                    if first_error.is_none() {
                        first_error = Some(unrecoverable_load(dag, i));
                    }
                }
            },
            Action::Compute => {}
        }
    }

    // Level assignment among compute nodes: level = 1 + max(parent
    // compute levels); available inputs are level 0.
    let mut level = vec![0usize; n];
    let mut pending: Vec<usize> = Vec::new();
    for i in 0..n {
        if action[i] == Action::Compute {
            let l = dag
                .parents(NodeId(i))
                .iter()
                .map(|p| {
                    if action[p.0] == Action::Compute {
                        level[p.0] + 1
                    } else {
                        1
                    }
                })
                .max()
                .unwrap_or(1);
            level[i] = l;
            pending.push(i);
        }
    }
    pending.sort_by_key(|&i| level[i]);

    // Execute level by level.
    let mut idx = 0;
    while idx < pending.len() {
        let current_level = level[pending[idx]];
        let mut batch = Vec::new();
        while idx < pending.len() && level[pending[idx]] == current_level {
            batch.push(pending[idx]);
            idx += 1;
        }
        // Gather per-node work before spawning (warmstarts included);
        // nodes downstream of a failure are tainted instead of run.
        struct Work {
            node: usize,
            op: OpRef,
            inputs: Vec<Value>,
            warm: Option<co_ml::TrainedModel>,
        }
        let mut work = Vec::with_capacity(batch.len());
        for &i in &batch {
            if dag.parents(NodeId(i)).iter().any(|p| tainted[p.0]) {
                tainted[i] = true;
                continue;
            }
            let edge = dag.producer(NodeId(i)).ok_or_else(|| {
                GraphError::InvalidStructure(format!(
                    "node {i} must be computed but has no producer"
                ))
            })?;
            let op = Arc::clone(&edge.op);
            let input_ids = edge.inputs.clone();
            let warm = warm_candidates[i].take();
            if warm.is_some() {
                report.warmstarts += 1;
            }
            let inputs: Vec<Value> = input_ids
                .iter()
                .map(|p| {
                    dag.nodes()[p.0].computed.clone().ok_or_else(|| {
                        GraphError::InvalidStructure(format!(
                            "input node {} of node {i} has no value",
                            p.0
                        ))
                    })
                })
                .collect::<co_graph::Result<_>>()?;
            work.push(Work {
                node: i,
                op,
                inputs,
                warm,
            });
        }

        // Run the batch on scoped threads. Operation panics are caught
        // *inside* each thread by `run_op_with_retry`, so a panicking
        // user operation cannot tear down the executor; a failed join
        // (which would mean a panic outside that guard) degrades to a
        // structured error instead of propagating.
        let results: Vec<(usize, OpOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .iter()
                .map(|w| {
                    scope.spawn(move || {
                        let refs: Vec<&Value> = w.inputs.iter().collect();
                        let outcome = run_op_with_retry(
                            &w.op,
                            &refs,
                            w.warm.as_ref(),
                            faults_ref,
                            &retry,
                            quarantine,
                            workload_start,
                        );
                        (w.node, outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(k, h)| {
                    h.join().unwrap_or_else(|payload| {
                        (
                            work[k].node,
                            OpOutcome {
                                result: Err(GraphError::OperationPanicked {
                                    op: work[k].op.name().to_owned(),
                                    message: panic_message(payload),
                                }),
                                compute_seconds: 0.0,
                                last_attempt_seconds: 0.0,
                                retries: 0,
                                panics_caught: 1,
                            },
                        )
                    })
                })
                .collect()
        });

        for (i, outcome) in results {
            report.compute_seconds += outcome.compute_seconds;
            report.retries += outcome.retries;
            report.panics_caught += outcome.panics_caught;
            match outcome.result {
                Ok(value) => {
                    report.ops_executed += 1;
                    if let Value::Model(m) = &value {
                        dag.node_mut(NodeId(i))?.quality = m.quality;
                        report.best_model_quality = report.best_model_quality.max(m.quality);
                    }
                    let producer = dag.producer(NodeId(i)).ok_or(GraphError::UnknownNode(i))?;
                    let op = Arc::clone(&producer.op);
                    let input_ids = producer.inputs.clone();
                    if op.is_evaluation() {
                        if let Some(score) = value.as_aggregate().and_then(|s| s.as_f64()) {
                            for p in &input_ids {
                                if dag.nodes()[p.0].kind == NodeKind::Model {
                                    let node = dag.node_mut(*p)?;
                                    node.quality = score.clamp(0.0, 1.0);
                                    report.best_model_quality =
                                        report.best_model_quality.max(node.quality);
                                }
                            }
                        }
                    }
                    let size = value.nbytes() as u64;
                    dag.set_computed(NodeId(i), value)?;
                    dag.annotate(NodeId(i), outcome.last_attempt_seconds, size)?;
                    completed.push(NodeId(i));
                }
                Err(e) => {
                    tainted[i] = true;
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    }
    match first_error {
        None => Ok(report),
        Some(error) => {
            close_taint(dag, &mut tainted);
            Err(WorkloadError {
                error,
                report: Box::new(report),
                completed,
                tainted,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AggOp, FilterOp, MapOp, SelectOp};
    use co_dataframe::ops::{AggFn, MapFn, Predicate};
    use co_dataframe::{Column, ColumnData, DataFrame};
    use co_graph::{ExperimentGraph, FaultKind};
    use std::sync::Arc;
    use std::time::Duration;

    fn source_frame() -> DataFrame {
        DataFrame::new(vec![
            Column::source(
                "t",
                "x",
                ColumnData::Float((0..100).map(f64::from).collect()),
            ),
            Column::source(
                "t",
                "y",
                ColumnData::Int((0..100).map(|i| i64::from(i % 2)).collect()),
            ),
        ])
        .unwrap()
    }

    fn pipeline() -> (WorkloadDag, NodeId, NodeId) {
        let mut dag = WorkloadDag::new();
        let src = dag.add_source("t", Value::dataset(source_frame()));
        let filtered = dag
            .add_op(
                Arc::new(FilterOp {
                    predicate: Predicate::gt_f("x", 10.0),
                }),
                &[src],
            )
            .unwrap();
        let mapped = dag
            .add_op(
                Arc::new(MapOp {
                    column: "x".into(),
                    f: MapFn::Log1p,
                    out: "lx".into(),
                }),
                &[filtered],
            )
            .unwrap();
        let result = dag
            .add_op(
                Arc::new(AggOp {
                    column: "lx".into(),
                    f: AggFn::Mean,
                }),
                &[mapped],
            )
            .unwrap();
        dag.mark_terminal(result).unwrap();
        (dag, mapped, result)
    }

    #[test]
    fn executes_full_pipeline_and_annotates() {
        let (mut dag, mapped, result) = pipeline();
        let plan = ReusePlan::compute_everything(&dag);
        let eg = ExperimentGraph::new(true);
        let report = execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.ops_executed, 3);
        assert_eq!(report.artifacts_loaded, 0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.panics_caught, 0);
        assert_eq!(report.load_misses_recovered, 0);
        let value = dag.node(result).unwrap().computed.as_ref().unwrap();
        assert!(value.as_aggregate().unwrap().as_f64().unwrap() > 0.0);
        assert!(dag.node(mapped).unwrap().compute_time.is_some());
        assert!(dag.node(mapped).unwrap().size.unwrap() > 0);
    }

    #[test]
    fn loads_skip_upstream_work() {
        // First run populates EG; materialize the mapped artifact; second
        // run with a plan loading it must execute only the aggregate.
        let (mut dag1, mapped, _) = pipeline();
        let plan = ReusePlan::compute_everything(&dag1);
        let mut eg = ExperimentGraph::new(true);
        execute(&mut dag1, &plan, &eg, &ExecutorConfig::default()).unwrap();
        eg.update_with_workload(&dag1).unwrap();
        let mapped_artifact = dag1.nodes()[mapped.0].artifact;
        let content = dag1.node(mapped).unwrap().computed.clone().unwrap();
        eg.storage_mut().store(mapped_artifact, &content);

        let (mut dag2, mapped2, result2) = pipeline();
        let mut load = vec![false; dag2.n_nodes()];
        load[mapped2.0] = true;
        let plan = ReusePlan {
            load,
            estimated_cost: 0.0,
        };
        let report = execute(&mut dag2, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.ops_executed, 1); // only the aggregate
        assert_eq!(report.artifacts_loaded, 1);
        assert!(report.load_seconds > 0.0);
        assert_eq!(report.nodes_skipped, 1); // the filter node
        let v1 = dag1.node(result2).unwrap().computed.as_ref().unwrap();
        let v2 = dag2.node(result2).unwrap().computed.as_ref().unwrap();
        assert_eq!(v1.as_aggregate(), v2.as_aggregate());
    }

    #[test]
    fn load_miss_degrades_to_recompute() {
        // The plan says Load but the store has nothing: the executor
        // falls back to recomputing the subtree instead of erroring.
        let (mut dag, mapped, result) = pipeline();
        let mut load = vec![false; dag.n_nodes()];
        load[mapped.0] = true;
        let plan = ReusePlan {
            load,
            estimated_cost: 0.0,
        };
        let eg = ExperimentGraph::new(true);
        let report = execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.load_misses_recovered, 1);
        assert_eq!(report.artifacts_loaded, 0);
        assert_eq!(report.ops_executed, 3); // the whole subtree recomputed
        assert!(dag.node(result).unwrap().computed.is_some());
    }

    #[test]
    fn unrecoverable_load_miss_names_the_node() {
        // A load miss with no producer cannot degrade; the error names
        // the workload node and its source.
        let (mut dag, _, _) = pipeline();
        dag.node_mut(NodeId(0)).unwrap().computed = None; // drop source content
        let mut load = vec![false; dag.n_nodes()];
        load[0] = true;
        let plan = ReusePlan {
            load,
            estimated_cost: 0.0,
        };
        let eg = ExperimentGraph::new(true);
        let err = execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap_err();
        assert!(matches!(err.error, GraphError::NotMaterialized { .. }));
        let msg = err.error.to_string();
        assert!(msg.contains("workload node 0"), "{msg}");
        assert!(msg.contains("\"t\""), "{msg}");
        // Everything downstream of the missing source is tainted.
        assert!(err.tainted.iter().all(|t| *t));
    }

    #[test]
    fn transient_failures_are_retried() {
        let (mut dag, _, result) = pipeline();
        let mut eg = ExperimentGraph::new(true);
        let faults = Arc::new(FaultInjector::new());
        faults.fail_op("map", FaultKind::Transient, 2);
        eg.storage_mut().set_fault_injector(Arc::clone(&faults));
        let plan = ReusePlan::compute_everything(&dag);
        let config = ExecutorConfig {
            retry: RetryPolicy {
                initial_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            ..ExecutorConfig::default()
        };
        let report = execute(&mut dag, &plan, &eg, &config).unwrap();
        assert_eq!(report.retries, 2);
        assert_eq!(report.ops_executed, 3);
        assert!(dag.node(result).unwrap().computed.is_some());
    }

    #[test]
    fn retry_exhaustion_fails_with_partial_progress() {
        let (mut dag, _, _) = pipeline();
        let mut eg = ExperimentGraph::new(true);
        let faults = Arc::new(FaultInjector::new());
        faults.fail_op_forever("map", FaultKind::Transient);
        eg.storage_mut().set_fault_injector(Arc::clone(&faults));
        let plan = ReusePlan::compute_everything(&dag);
        let config = ExecutorConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                initial_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            ..ExecutorConfig::default()
        };
        let err = execute(&mut dag, &plan, &eg, &config).unwrap_err();
        assert!(err.error.is_transient());
        assert_eq!(err.report.retries, 1); // one retry, then give up
        assert_eq!(err.report.ops_executed, 1); // the filter succeeded
                                                // Filter (node 1) survives; map and agg are tainted.
        assert_eq!(err.tainted, vec![false, false, true, true]);
        assert_eq!(err.untainted(), 2);
    }

    #[test]
    fn panics_are_isolated_as_errors() {
        let (mut dag, _, _) = pipeline();
        let mut eg = ExperimentGraph::new(true);
        let faults = Arc::new(FaultInjector::new());
        faults.fail_op("agg", FaultKind::Panic, 1);
        eg.storage_mut().set_fault_injector(Arc::clone(&faults));
        let plan = ReusePlan::compute_everything(&dag);
        let err = execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap_err();
        assert!(
            matches!(err.error, GraphError::OperationPanicked { .. }),
            "{}",
            err.error
        );
        assert_eq!(err.report.panics_caught, 1);
        assert_eq!(err.report.ops_executed, 2); // filter and map completed
        assert_eq!(err.untainted(), 3);
    }

    #[test]
    fn quarantined_ops_fast_fail() {
        let quarantine = Arc::new(Quarantine::new(1));
        let (mut dag, _, _) = pipeline();
        let mut eg = ExperimentGraph::new(true);
        let faults = Arc::new(FaultInjector::new());
        faults.fail_op("agg", FaultKind::Permanent, 1);
        eg.storage_mut().set_fault_injector(Arc::clone(&faults));
        let plan = ReusePlan::compute_everything(&dag);
        let config = ExecutorConfig {
            quarantine: Some(Arc::clone(&quarantine)),
            ..ExecutorConfig::default()
        };
        let err = execute(&mut dag, &plan, &eg, &config).unwrap_err();
        assert!(matches!(err.error, GraphError::OperationFailed { .. }));

        // Second run: the op would succeed (fault budget spent), but the
        // quarantine fast-fails it without running.
        let (mut dag2, _, _) = pipeline();
        let plan2 = ReusePlan::compute_everything(&dag2);
        let err2 = execute(&mut dag2, &plan2, &eg, &config).unwrap_err();
        assert!(
            matches!(err2.error, GraphError::Quarantined { failures: 1, .. }),
            "{}",
            err2.error
        );

        // Releasing it restores service.
        let hash = dag2.producer(NodeId(3)).unwrap().op.op_hash();
        quarantine.release(hash);
        let (mut dag3, _, _) = pipeline();
        let plan3 = ReusePlan::compute_everything(&dag3);
        assert!(execute(&mut dag3, &plan3, &eg, &config).is_ok());
    }

    #[test]
    fn workload_deadline_cuts_execution_short() {
        let (mut dag, _, _) = pipeline();
        let mut eg = ExperimentGraph::new(true);
        let faults = Arc::new(FaultInjector::new());
        faults.inject_latency("filter", Duration::from_millis(30));
        eg.storage_mut().set_fault_injector(Arc::clone(&faults));
        let plan = ReusePlan::compute_everything(&dag);
        let config = ExecutorConfig {
            retry: RetryPolicy {
                workload_deadline: Some(Duration::from_millis(5)),
                ..RetryPolicy::default()
            },
            ..ExecutorConfig::default()
        };
        let err = execute(&mut dag, &plan, &eg, &config).unwrap_err();
        assert!(
            matches!(err.error, GraphError::DeadlineExceeded { .. }),
            "{}",
            err.error
        );
    }

    #[test]
    fn off_path_nodes_are_skipped() {
        let (mut dag, _, _) = pipeline();
        // A dangling projection nobody asked for.
        let src = NodeId(0);
        dag.add_op(
            Arc::new(SelectOp {
                columns: vec!["x".into()],
            }),
            &[src],
        )
        .unwrap();
        let plan = ReusePlan::compute_everything(&dag);
        let eg = ExperimentGraph::new(true);
        let report = execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.ops_executed, 3);
        assert_eq!(report.nodes_skipped, 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        // A diamond with two independent mid-branches: both executors
        // produce identical values and annotations.
        let mut sequential = WorkloadDag::new();
        let mut parallel = WorkloadDag::new();
        for dag in [&mut sequential, &mut parallel] {
            let src = dag.add_source("t", Value::dataset(source_frame()));
            let a = dag
                .add_op(
                    Arc::new(FilterOp {
                        predicate: Predicate::gt_f("x", 10.0),
                    }),
                    &[src],
                )
                .unwrap();
            let b = dag
                .add_op(
                    Arc::new(FilterOp {
                        predicate: Predicate::lt_f("x", 90.0),
                    }),
                    &[src],
                )
                .unwrap();
            let ma = dag
                .add_op(
                    Arc::new(AggOp {
                        column: "x".into(),
                        f: AggFn::Mean,
                    }),
                    &[a],
                )
                .unwrap();
            let mb = dag
                .add_op(
                    Arc::new(AggOp {
                        column: "x".into(),
                        f: AggFn::Mean,
                    }),
                    &[b],
                )
                .unwrap();
            dag.mark_terminal(ma).unwrap();
            dag.mark_terminal(mb).unwrap();
        }
        let eg = ExperimentGraph::new(true);
        let plan_seq = ReusePlan::compute_everything(&sequential);
        let plan_par = ReusePlan::compute_everything(&parallel);
        let r1 = execute(&mut sequential, &plan_seq, &eg, &ExecutorConfig::default()).unwrap();
        let r2 =
            execute_parallel(&mut parallel, &plan_par, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(r1.ops_executed, r2.ops_executed);
        assert_eq!(r1.nodes_skipped, r2.nodes_skipped);
        for (a, b) in sequential.nodes().iter().zip(parallel.nodes()) {
            assert_eq!(a.artifact, b.artifact);
            match (&a.computed, &b.computed) {
                (Some(Value::Aggregate(x)), Some(Value::Aggregate(y))) => assert_eq!(x, y),
                (Some(Value::Dataset(x)), Some(Value::Dataset(y))) => {
                    assert_eq!(x.column_ids(), y.column_ids())
                }
                (x, y) => assert_eq!(x.is_some(), y.is_some()),
            }
        }
    }

    #[test]
    fn parallel_respects_loads_and_dependencies() {
        let (mut dag1, mapped, _) = pipeline();
        let plan = ReusePlan::compute_everything(&dag1);
        let mut eg = ExperimentGraph::new(true);
        execute(&mut dag1, &plan, &eg, &ExecutorConfig::default()).unwrap();
        eg.update_with_workload(&dag1).unwrap();
        let mapped_artifact = dag1.nodes()[mapped.0].artifact;
        let content = dag1.node(mapped).unwrap().computed.clone().unwrap();
        eg.storage_mut().store(mapped_artifact, &content);

        let (mut dag2, mapped2, result2) = pipeline();
        let mut load = vec![false; dag2.n_nodes()];
        load[mapped2.0] = true;
        let plan = ReusePlan {
            load,
            estimated_cost: 0.0,
        };
        let report = execute_parallel(&mut dag2, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.ops_executed, 1);
        assert_eq!(report.artifacts_loaded, 1);
        let v1 = dag1.node(result2).unwrap().computed.as_ref().unwrap();
        let v2 = dag2.node(result2).unwrap().computed.as_ref().unwrap();
        assert_eq!(v1.as_aggregate(), v2.as_aggregate());
    }

    #[test]
    fn parallel_isolates_panics_and_taints_downstream() {
        let (mut dag, _, _) = pipeline();
        let mut eg = ExperimentGraph::new(true);
        let faults = Arc::new(FaultInjector::new());
        faults.fail_op("map", FaultKind::Panic, 1);
        eg.storage_mut().set_fault_injector(Arc::clone(&faults));
        let plan = ReusePlan::compute_everything(&dag);
        let err = execute_parallel(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap_err();
        assert!(
            matches!(err.error, GraphError::OperationPanicked { .. }),
            "{}",
            err.error
        );
        assert_eq!(err.report.panics_caught, 1);
        assert_eq!(err.tainted, vec![false, false, true, true]);
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let (mut dag, _, _) = pipeline();
        let plan = ReusePlan {
            load: vec![false],
            estimated_cost: 0.0,
        };
        let eg = ExperimentGraph::new(true);
        assert!(execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).is_err());
    }
}
