//! The client-side executor (paper §3.1, step 4).
//!
//! Runs the optimized DAG in topological order: loads planned artifacts
//! from the Experiment Graph (charging the modelled load cost), executes
//! the remaining operations while measuring wall-clock compute time, and
//! annotates every produced vertex with ⟨compute-time, size⟩ for the
//! updater. Training operations are warmstarted from the best candidate
//! model when the session enables it (§6.2).

use crate::cost::CostModel;
use crate::optimizer::ReusePlan;
use crate::report::ExecutionReport;
use crate::warmstart;
use co_graph::{ExperimentGraph, GraphError, NodeId, NodeKind, Result, Value, WorkloadDag};
use std::time::Instant;

/// Executor configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutorConfig {
    /// Load-cost model for reused artifacts.
    pub cost: CostModel,
    /// Warmstart model training operations when a candidate exists
    /// (the paper only warmstarts "when users explicitly request it").
    pub warmstart: bool,
}

/// Execute an optimized workload DAG against the Experiment Graph.
///
/// On success every terminal node of `dag` holds its value
/// (`node.computed`), and executed nodes carry fresh
/// ⟨compute-time, size⟩ annotations.
pub fn execute(
    dag: &mut WorkloadDag,
    plan: &ReusePlan,
    eg: &ExperimentGraph,
    config: &ExecutorConfig,
) -> Result<ExecutionReport> {
    let n = dag.n_nodes();
    if plan.load.len() != n {
        return Err(GraphError::InvalidStructure(format!(
            "plan covers {} nodes, workload has {n}",
            plan.load.len()
        )));
    }

    // Backward pass: which nodes must be produced, and how.
    #[derive(Clone, Copy, PartialEq)]
    enum Action {
        Skip,
        Load,
        Compute,
    }
    let mut action = vec![Action::Skip; n];
    let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
    if stack.is_empty() {
        return Err(GraphError::NoTerminals);
    }
    let mut visited = vec![false; n];
    while let Some(i) = stack.pop() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        if dag.node(NodeId(i))?.computed.is_some() {
            continue; // already in client memory
        }
        if plan.load[i] {
            action[i] = Action::Load;
            continue;
        }
        action[i] = Action::Compute;
        stack.extend(dag.parents(NodeId(i)).iter().map(|p| p.0));
    }

    let mut report = ExecutionReport::default();

    // Forward pass in topological (index) order.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed by node id
    for i in 0..n {
        match action[i] {
            Action::Skip => {
                if dag.node(NodeId(i))?.computed.is_none() {
                    report.nodes_skipped += 1;
                }
            }
            Action::Load => {
                let artifact = dag.node(NodeId(i))?.artifact;
                let value = eg
                    .storage()
                    .get(artifact)
                    .ok_or(GraphError::NotMaterialized(artifact.0))?;
                report.load_seconds += config.cost.load_cost(value.nbytes() as u64);
                report.artifacts_loaded += 1;
                if let Value::Model(m) = &value {
                    dag.node_mut(NodeId(i))?.quality = m.quality;
                    report.best_model_quality = report.best_model_quality.max(m.quality);
                }
                dag.set_computed(NodeId(i), value)?;
            }
            Action::Compute => {
                let edge = dag.producer(NodeId(i)).ok_or_else(|| {
                    GraphError::InvalidStructure(format!("node {i} must be computed but has no producer"))
                })?;
                let op = std::sync::Arc::clone(&edge.op);
                let input_ids = edge.inputs.clone();

                // Warmstart lookup happens before borrowing input values.
                let warm_model = if config.warmstart && op.warmstartable() {
                    op.model_kind().and_then(|kind| {
                        let train_input = dag.nodes()[input_ids[0].0].artifact;
                        let own = dag.nodes()[i].artifact;
                        warmstart::find_candidate(eg, train_input, kind, own)
                    })
                } else {
                    None
                };
                if warm_model.is_some() {
                    report.warmstarts += 1;
                }

                let inputs: Vec<&Value> = input_ids
                    .iter()
                    .map(|p| {
                        dag.nodes()[p.0].computed.as_ref().ok_or_else(|| {
                            GraphError::InvalidStructure(format!(
                                "input node {} of node {i} has no value",
                                p.0
                            ))
                        })
                    })
                    .collect::<Result<_>>()?;

                let start = Instant::now();
                let value = op.run_warm(&inputs, warm_model.as_ref())?;
                let elapsed = start.elapsed().as_secs_f64();
                report.compute_seconds += elapsed;
                report.ops_executed += 1;

                if let Value::Model(m) = &value {
                    dag.node_mut(NodeId(i))?.quality = m.quality;
                    report.best_model_quality = report.best_model_quality.max(m.quality);
                }
                // Evaluation feedback: refine the input model's quality.
                if op.is_evaluation() {
                    if let Some(score) = value.as_aggregate().and_then(|s| s.as_f64()) {
                        for p in &input_ids {
                            if dag.nodes()[p.0].kind == NodeKind::Model {
                                let node = dag.node_mut(*p)?;
                                node.quality = score.clamp(0.0, 1.0);
                                report.best_model_quality =
                                    report.best_model_quality.max(node.quality);
                            }
                        }
                    }
                }
                let size = value.nbytes() as u64;
                dag.set_computed(NodeId(i), value)?;
                dag.annotate(NodeId(i), elapsed, size)?;
            }
        }
    }
    Ok(report)
}

/// Execute an optimized workload DAG with **level-parallel** operation
/// execution: operations whose inputs are all available run concurrently
/// on scoped threads (e.g. the three model trainings of the paper's
/// Workload 1 proceed at once).
///
/// Semantics match [`execute`] exactly — same values, same annotations,
/// same report fields. `compute_seconds` remains the *sum* of per-op
/// times (the resource cost); wall-clock time can be lower. Warmstart
/// candidate lookup happens before each level is dispatched, so two
/// same-level trainings never observe each other (deterministic).
pub fn execute_parallel(
    dag: &mut WorkloadDag,
    plan: &ReusePlan,
    eg: &ExperimentGraph,
    config: &ExecutorConfig,
) -> Result<ExecutionReport> {
    let n = dag.n_nodes();
    if plan.load.len() != n {
        return Err(GraphError::InvalidStructure(format!(
            "plan covers {} nodes, workload has {n}",
            plan.load.len()
        )));
    }
    // Backward pass, identical to the sequential executor.
    #[derive(Clone, Copy, PartialEq)]
    enum Action {
        Skip,
        Load,
        Compute,
    }
    let mut action = vec![Action::Skip; n];
    let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
    if stack.is_empty() {
        return Err(GraphError::NoTerminals);
    }
    let mut visited = vec![false; n];
    while let Some(i) = stack.pop() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        if dag.node(NodeId(i))?.computed.is_some() {
            continue;
        }
        if plan.load[i] {
            action[i] = Action::Load;
            continue;
        }
        action[i] = Action::Compute;
        stack.extend(dag.parents(NodeId(i)).iter().map(|p| p.0));
    }

    let mut report = ExecutionReport::default();

    // Resolve loads and count skips up front (loads are Arc clones plus a
    // charged cost — not worth a thread).
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed by node id
    for i in 0..n {
        match action[i] {
            Action::Skip => {
                if dag.node(NodeId(i))?.computed.is_none() {
                    report.nodes_skipped += 1;
                }
            }
            Action::Load => {
                let artifact = dag.node(NodeId(i))?.artifact;
                let value = eg
                    .storage()
                    .get(artifact)
                    .ok_or(GraphError::NotMaterialized(artifact.0))?;
                report.load_seconds += config.cost.load_cost(value.nbytes() as u64);
                report.artifacts_loaded += 1;
                if let Value::Model(m) = &value {
                    dag.node_mut(NodeId(i))?.quality = m.quality;
                    report.best_model_quality = report.best_model_quality.max(m.quality);
                }
                dag.set_computed(NodeId(i), value)?;
            }
            Action::Compute => {}
        }
    }

    // Level assignment among compute nodes: level = 1 + max(parent
    // compute levels); available inputs are level 0.
    let mut level = vec![0usize; n];
    let mut pending: Vec<usize> = Vec::new();
    for i in 0..n {
        if action[i] == Action::Compute {
            let l = dag
                .parents(NodeId(i))
                .iter()
                .map(|p| if action[p.0] == Action::Compute { level[p.0] + 1 } else { 1 })
                .max()
                .unwrap_or(1);
            level[i] = l;
            pending.push(i);
        }
    }
    pending.sort_by_key(|&i| level[i]);

    // Execute level by level.
    let mut idx = 0;
    while idx < pending.len() {
        let current_level = level[pending[idx]];
        let mut batch = Vec::new();
        while idx < pending.len() && level[pending[idx]] == current_level {
            batch.push(pending[idx]);
            idx += 1;
        }
        // Gather per-node work before spawning (warmstarts included).
        struct Work {
            node: usize,
            op: co_graph::operation::OpRef,
            inputs: Vec<Value>,
            warm: Option<co_ml::TrainedModel>,
        }
        let mut work = Vec::with_capacity(batch.len());
        for &i in &batch {
            let edge = dag.producer(NodeId(i)).ok_or_else(|| {
                GraphError::InvalidStructure(format!("node {i} must be computed but has no producer"))
            })?;
            let op = std::sync::Arc::clone(&edge.op);
            let input_ids = edge.inputs.clone();
            let warm = if config.warmstart && op.warmstartable() {
                op.model_kind().and_then(|kind| {
                    let train_input = dag.nodes()[input_ids[0].0].artifact;
                    let own = dag.nodes()[i].artifact;
                    warmstart::find_candidate(eg, train_input, kind, own)
                })
            } else {
                None
            };
            if warm.is_some() {
                report.warmstarts += 1;
            }
            let inputs: Vec<Value> = input_ids
                .iter()
                .map(|p| {
                    dag.nodes()[p.0].computed.clone().ok_or_else(|| {
                        GraphError::InvalidStructure(format!(
                            "input node {} of node {i} has no value",
                            p.0
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            work.push(Work { node: i, op, inputs, warm });
        }

        // Run the batch on scoped threads.
        type Outcome = (usize, Result<Value>, f64);
        let results: Vec<Outcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .iter()
                .map(|w| {
                    scope.spawn(move || {
                        let refs: Vec<&Value> = w.inputs.iter().collect();
                        let start = Instant::now();
                        let out = w.op.run_warm(&refs, w.warm.as_ref());
                        (w.node, out, start.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("operation thread panicked")).collect()
        });

        for (i, outcome, elapsed) in results {
            let value = outcome?;
            report.compute_seconds += elapsed;
            report.ops_executed += 1;
            if let Value::Model(m) = &value {
                dag.node_mut(NodeId(i))?.quality = m.quality;
                report.best_model_quality = report.best_model_quality.max(m.quality);
            }
            let op = std::sync::Arc::clone(&dag.producer(NodeId(i)).expect("checked").op);
            let input_ids = dag.producer(NodeId(i)).expect("checked").inputs.clone();
            if op.is_evaluation() {
                if let Some(score) = value.as_aggregate().and_then(|s| s.as_f64()) {
                    for p in &input_ids {
                        if dag.nodes()[p.0].kind == NodeKind::Model {
                            let node = dag.node_mut(*p)?;
                            node.quality = score.clamp(0.0, 1.0);
                            report.best_model_quality =
                                report.best_model_quality.max(node.quality);
                        }
                    }
                }
            }
            let size = value.nbytes() as u64;
            dag.set_computed(NodeId(i), value)?;
            dag.annotate(NodeId(i), elapsed, size)?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AggOp, FilterOp, MapOp, SelectOp};
    use co_dataframe::ops::{AggFn, MapFn, Predicate};
    use co_dataframe::{Column, ColumnData, DataFrame};
    use std::sync::Arc;

    fn source_frame() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float((0..100).map(f64::from).collect())),
            Column::source("t", "y", ColumnData::Int((0..100).map(|i| i64::from(i % 2)).collect())),
        ])
        .unwrap()
    }

    fn pipeline() -> (WorkloadDag, NodeId, NodeId) {
        let mut dag = WorkloadDag::new();
        let src = dag.add_source("t", Value::Dataset(source_frame()));
        let filtered = dag
            .add_op(Arc::new(FilterOp { predicate: Predicate::gt_f("x", 10.0) }), &[src])
            .unwrap();
        let mapped = dag
            .add_op(
                Arc::new(MapOp { column: "x".into(), f: MapFn::Log1p, out: "lx".into() }),
                &[filtered],
            )
            .unwrap();
        let result = dag
            .add_op(Arc::new(AggOp { column: "lx".into(), f: AggFn::Mean }), &[mapped])
            .unwrap();
        dag.mark_terminal(result).unwrap();
        (dag, mapped, result)
    }

    #[test]
    fn executes_full_pipeline_and_annotates() {
        let (mut dag, mapped, result) = pipeline();
        let plan = ReusePlan::compute_everything(&dag);
        let eg = ExperimentGraph::new(true);
        let report = execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.ops_executed, 3);
        assert_eq!(report.artifacts_loaded, 0);
        let value = dag.node(result).unwrap().computed.as_ref().unwrap();
        assert!(value.as_aggregate().unwrap().as_f64().unwrap() > 0.0);
        assert!(dag.node(mapped).unwrap().compute_time.is_some());
        assert!(dag.node(mapped).unwrap().size.unwrap() > 0);
    }

    #[test]
    fn loads_skip_upstream_work() {
        // First run populates EG; materialize the mapped artifact; second
        // run with a plan loading it must execute only the aggregate.
        let (mut dag1, mapped, _) = pipeline();
        let plan = ReusePlan::compute_everything(&dag1);
        let mut eg = ExperimentGraph::new(true);
        execute(&mut dag1, &plan, &eg, &ExecutorConfig::default()).unwrap();
        eg.update_with_workload(&dag1).unwrap();
        let mapped_artifact = dag1.nodes()[mapped.0].artifact;
        let content = dag1.node(mapped).unwrap().computed.clone().unwrap();
        eg.storage_mut().store(mapped_artifact, &content);

        let (mut dag2, mapped2, result2) = pipeline();
        let mut load = vec![false; dag2.n_nodes()];
        load[mapped2.0] = true;
        let plan = ReusePlan { load, estimated_cost: 0.0 };
        let report = execute(&mut dag2, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.ops_executed, 1); // only the aggregate
        assert_eq!(report.artifacts_loaded, 1);
        assert!(report.load_seconds > 0.0);
        assert_eq!(report.nodes_skipped, 1); // the filter node
        let v1 = dag1.node(result2).unwrap().computed.as_ref().unwrap();
        let v2 = dag2.node(result2).unwrap().computed.as_ref().unwrap();
        assert_eq!(v1.as_aggregate(), v2.as_aggregate());
    }

    #[test]
    fn loading_unmaterialized_artifact_fails() {
        let (mut dag, mapped, _) = pipeline();
        let mut load = vec![false; dag.n_nodes()];
        load[mapped.0] = true;
        let plan = ReusePlan { load, estimated_cost: 0.0 };
        let eg = ExperimentGraph::new(true);
        let err = execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap_err();
        assert!(matches!(err, GraphError::NotMaterialized(_)));
    }

    #[test]
    fn off_path_nodes_are_skipped() {
        let (mut dag, _, _) = pipeline();
        // A dangling projection nobody asked for.
        let src = NodeId(0);
        dag.add_op(Arc::new(SelectOp { columns: vec!["x".into()] }), &[src]).unwrap();
        let plan = ReusePlan::compute_everything(&dag);
        let eg = ExperimentGraph::new(true);
        let report = execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.ops_executed, 3);
        assert_eq!(report.nodes_skipped, 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        // A diamond with two independent mid-branches: both executors
        // produce identical values and annotations.
        let mut sequential = WorkloadDag::new();
        let mut parallel = WorkloadDag::new();
        for dag in [&mut sequential, &mut parallel] {
            let src = dag.add_source("t", Value::Dataset(source_frame()));
            let a = dag
                .add_op(Arc::new(FilterOp { predicate: Predicate::gt_f("x", 10.0) }), &[src])
                .unwrap();
            let b = dag
                .add_op(Arc::new(FilterOp { predicate: Predicate::lt_f("x", 90.0) }), &[src])
                .unwrap();
            let ma = dag
                .add_op(Arc::new(AggOp { column: "x".into(), f: AggFn::Mean }), &[a])
                .unwrap();
            let mb = dag
                .add_op(Arc::new(AggOp { column: "x".into(), f: AggFn::Mean }), &[b])
                .unwrap();
            dag.mark_terminal(ma).unwrap();
            dag.mark_terminal(mb).unwrap();
        }
        let eg = ExperimentGraph::new(true);
        let plan_seq = ReusePlan::compute_everything(&sequential);
        let plan_par = ReusePlan::compute_everything(&parallel);
        let r1 = execute(&mut sequential, &plan_seq, &eg, &ExecutorConfig::default()).unwrap();
        let r2 =
            execute_parallel(&mut parallel, &plan_par, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(r1.ops_executed, r2.ops_executed);
        assert_eq!(r1.nodes_skipped, r2.nodes_skipped);
        for (a, b) in sequential.nodes().iter().zip(parallel.nodes()) {
            assert_eq!(a.artifact, b.artifact);
            match (&a.computed, &b.computed) {
                (Some(Value::Aggregate(x)), Some(Value::Aggregate(y))) => assert_eq!(x, y),
                (Some(Value::Dataset(x)), Some(Value::Dataset(y))) => {
                    assert_eq!(x.column_ids(), y.column_ids())
                }
                (x, y) => assert_eq!(x.is_some(), y.is_some()),
            }
        }
    }

    #[test]
    fn parallel_respects_loads_and_dependencies() {
        let (mut dag1, mapped, _) = pipeline();
        let plan = ReusePlan::compute_everything(&dag1);
        let mut eg = ExperimentGraph::new(true);
        execute(&mut dag1, &plan, &eg, &ExecutorConfig::default()).unwrap();
        eg.update_with_workload(&dag1).unwrap();
        let mapped_artifact = dag1.nodes()[mapped.0].artifact;
        let content = dag1.node(mapped).unwrap().computed.clone().unwrap();
        eg.storage_mut().store(mapped_artifact, &content);

        let (mut dag2, mapped2, result2) = pipeline();
        let mut load = vec![false; dag2.n_nodes()];
        load[mapped2.0] = true;
        let plan = ReusePlan { load, estimated_cost: 0.0 };
        let report =
            execute_parallel(&mut dag2, &plan, &eg, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.ops_executed, 1);
        assert_eq!(report.artifacts_loaded, 1);
        let v1 = dag1.node(result2).unwrap().computed.as_ref().unwrap();
        let v2 = dag2.node(result2).unwrap().computed.as_ref().unwrap();
        assert_eq!(v1.as_aggregate(), v2.as_aggregate());
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let (mut dag, _, _) = pipeline();
        let plan = ReusePlan { load: vec![false], estimated_cost: 0.0 };
        let eg = ExperimentGraph::new(true);
        assert!(execute(&mut dag, &plan, &eg, &ExecutorConfig::default()).is_err());
    }
}
