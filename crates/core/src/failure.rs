//! Fault tolerance: retry policies, the operation quarantine, and the
//! partial-progress workload error.
//!
//! A collaborative server is long-lived and multi-tenant: one user's
//! flaky operation must not cost every other user their shared
//! Experiment Graph, and a 40-minute pipeline that dies on its last
//! step should leave its 39 good artifacts behind. Three mechanisms
//! cover this:
//!
//! * [`RetryPolicy`] — the executor retries failures classified
//!   transient by [`GraphError::is_transient`], with capped exponential
//!   backoff and optional per-operation / per-workload deadlines;
//! * [`Quarantine`] — operations that keep failing permanently are
//!   fast-failed (by `op_hash`, so the same logical operation submitted
//!   by any session is caught) instead of re-running;
//! * [`WorkloadError`] — a terminal failure still returns the
//!   [`ExecutionReport`] and the set of successfully computed vertices,
//!   so the server can salvage the completed prefix into the Experiment
//!   Graph and a resubmission reuses it.

use crate::report::ExecutionReport;
use co_graph::{GraphError, NodeId, OpHash};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Retry configuration applied by the executor to transient failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (1 = no retry).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// If set, an operation attempt whose wall-clock time exceeds this
    /// fails with [`GraphError::DeadlineExceeded`] (permanent).
    pub op_deadline: Option<Duration>,
    /// If set, once total execution time exceeds this the remaining
    /// operations fail with [`GraphError::DeadlineExceeded`].
    pub workload_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            op_deadline: None,
            workload_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never imposes deadlines.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (1-based): capped exponential.
    #[must_use]
    pub fn backoff(&self, retry: usize) -> Duration {
        let exp = retry.saturating_sub(1).min(32) as u32;
        let raw = self
            .initial_backoff
            .saturating_mul(2u32.saturating_pow(exp));
        raw.min(self.max_backoff)
    }
}

/// Registry of operations that failed permanently `threshold` times in a
/// row, fast-failed with [`GraphError::Quarantined`] until a success (or
/// [`Quarantine::release`]) clears them. Keyed by `op_hash`, so the same
/// logical operation is caught across sessions and workloads.
#[derive(Debug)]
pub struct Quarantine {
    threshold: usize,
    /// Consecutive terminal failures per operation.
    counts: Mutex<HashMap<OpHash, (String, usize)>>,
}

impl Quarantine {
    /// Quarantine after `threshold` consecutive permanent failures.
    /// A threshold of 0 disables quarantining.
    #[must_use]
    pub fn new(threshold: usize) -> Self {
        Quarantine {
            threshold,
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// If the operation is quarantined, the error to fast-fail with.
    #[must_use]
    pub fn check(&self, op: OpHash) -> Option<GraphError> {
        if self.threshold == 0 {
            return None;
        }
        let counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        counts.get(&op).and_then(|(name, failures)| {
            (*failures >= self.threshold).then(|| GraphError::Quarantined {
                op: name.clone(),
                failures: *failures,
            })
        })
    }

    /// Record a terminal (non-retryable or retry-exhausted) failure.
    /// Returns the consecutive-failure count.
    pub fn record_failure(&self, op: OpHash, name: &str) -> usize {
        let mut counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = counts.entry(op).or_insert_with(|| (name.to_owned(), 0));
        entry.1 += 1;
        entry.1
    }

    /// Record a success, clearing the operation's failure streak.
    pub fn record_success(&self, op: OpHash) {
        self.counts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&op);
    }

    /// Manually release an operation from quarantine.
    pub fn release(&self, op: OpHash) {
        self.record_success(op);
    }

    /// Operations currently quarantined, as (op_hash, name, failures) —
    /// the persistence view (see `co_graph::journal::QuarantineEntry`).
    #[must_use]
    pub fn entries(&self) -> Vec<(OpHash, String, usize)> {
        if self.threshold == 0 {
            return Vec::new();
        }
        self.counts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|(_, (_, failures))| *failures >= self.threshold)
            .map(|(op, (name, failures))| (*op, name.clone(), *failures))
            .collect()
    }

    /// Re-install a persisted quarantine entry during startup recovery,
    /// so a poisoned operation stays fast-failed across restarts.
    pub fn restore(&self, op: OpHash, name: &str, failures: usize) {
        self.counts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(op, (name.to_owned(), failures));
    }

    /// Operations currently quarantined, as (name, failures).
    #[must_use]
    pub fn quarantined(&self) -> Vec<(String, usize)> {
        if self.threshold == 0 {
            return Vec::new();
        }
        self.counts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|(_, failures)| *failures >= self.threshold)
            .cloned()
            .collect()
    }
}

/// A workload execution failure that preserves partial progress.
///
/// `tainted[i]` is true for workload node `i` iff it failed or sits
/// downstream of a failure; everything untainted executed (or was
/// already available) normally and is safe to merge into the Experiment
/// Graph. `completed` lists the nodes whose values this run produced.
#[derive(Debug)]
pub struct WorkloadError {
    /// The first terminal error encountered.
    pub error: GraphError,
    /// Costs and counters accumulated up to (and through) the failure.
    /// Boxed to keep the `Err` variant small on the happy path.
    pub report: Box<ExecutionReport>,
    /// Nodes whose values were produced by this run (loaded or computed).
    pub completed: Vec<NodeId>,
    /// Per-node taint mask; same length as the workload's node list.
    /// Empty when the failure predates execution (e.g. a bad plan).
    pub tainted: Vec<bool>,
}

impl WorkloadError {
    /// Number of untainted nodes (the salvageable prefix). Zero when no
    /// execution happened.
    #[must_use]
    pub fn untainted(&self) -> usize {
        self.tainted.iter().filter(|t| !**t).count()
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload failed ({} vertices salvageable): {}",
            self.untainted(),
            self.error
        )
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<GraphError> for WorkloadError {
    fn from(error: GraphError) -> Self {
        WorkloadError {
            error,
            report: Box::default(),
            completed: Vec::new(),
            tainted: Vec::new(),
        }
    }
}

impl From<WorkloadError> for GraphError {
    fn from(e: WorkloadError) -> Self {
        e.error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(65),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(65)); // capped
        assert_eq!(p.backoff(100), Duration::from_millis(65)); // no overflow
    }

    #[test]
    fn quarantine_trips_at_threshold_and_clears_on_success() {
        let q = Quarantine::new(2);
        let op = 42u64;
        assert!(q.check(op).is_none());
        q.record_failure(op, "train");
        assert!(q.check(op).is_none());
        q.record_failure(op, "train");
        let err = q.check(op).unwrap();
        assert!(matches!(err, GraphError::Quarantined { failures: 2, .. }));
        assert_eq!(q.quarantined(), vec![("train".to_owned(), 2)]);
        assert_eq!(q.entries(), vec![(op, "train".to_owned(), 2)]);
        q.record_success(op);
        assert!(q.check(op).is_none());
        assert!(q.quarantined().is_empty());
    }

    #[test]
    fn zero_threshold_disables_quarantine() {
        let q = Quarantine::new(0);
        for _ in 0..10 {
            q.record_failure(1, "op");
        }
        assert!(q.check(1).is_none());
        assert!(q.quarantined().is_empty());
    }

    #[test]
    fn restore_reinstalls_persisted_entries() {
        let q = Quarantine::new(2);
        q.restore(7, "udf", 3);
        assert!(matches!(
            q.check(7),
            Some(GraphError::Quarantined { failures: 3, .. })
        ));
        // A restored entry clears like any other.
        q.record_success(7);
        assert!(q.check(7).is_none());
    }

    #[test]
    fn workload_error_round_trips_through_graph_error() {
        let we = WorkloadError::from(GraphError::NoTerminals);
        assert_eq!(we.untainted(), 0);
        assert!(we.to_string().contains("salvageable"));
        let back: GraphError = we.into();
        assert_eq!(back, GraphError::NoTerminals);
    }
}
