//! Property tests for the materialization algorithms over randomly
//! generated Experiment Graphs with real (deduplicable) dataframe
//! content.

use co_core::materialize::{
    AllMaterializer, GreedyMaterializer, HelixMaterializer, Materializer, NoneMaterializer,
    StorageAwareMaterializer,
};
use co_core::CostModel;
use co_dataframe::ops::{self, MapFn};
use co_dataframe::{Column, ColumnData, DataFrame};
use co_graph::{ArtifactId, ExperimentGraph, NodeKind, Operation, Value, WorkloadDag};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A map op over the base column, producing one extra derived column.
struct Derive(String);
impl Operation for Derive {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> co_graph::Result<Value> {
        let df = inputs[0].as_dataset().expect("dataset input");
        Ok(Value::dataset(
            ops::map_column(df, "base", &MapFn::AddConst(1.0), &self.0)
                .expect("base column exists"),
        ))
    }
}

/// Build an EG from chains of deriving ops; `branchiness` seeds where
/// chains restart from the source (fresh content = no dedup sharing).
fn build_eg(
    spec: &[(u8, u16)], // (branch seed, compute time)
    rows: usize,
    dedup: bool,
) -> (ExperimentGraph, HashMap<ArtifactId, Value>) {
    let base = DataFrame::new(vec![Column::source(
        "src",
        "base",
        ColumnData::Float((0..rows).map(|i| i as f64).collect()),
    )])
    .expect("one column");
    let mut dag = WorkloadDag::new();
    let src = dag.add_source("src", Value::dataset(base));
    let mut prev = src;
    let mut nodes = Vec::new();
    for (i, (branch, _)) in spec.iter().enumerate() {
        let from = if branch % 4 == 0 { src } else { prev };
        let node = dag
            .add_op(Arc::new(Derive(format!("d{i}"))), &[from])
            .unwrap();
        nodes.push(node);
        prev = node;
    }
    dag.mark_terminal(prev).unwrap();

    // Execute by hand.
    for n in &nodes {
        let parents = dag.parents(*n);
        let input = dag.nodes()[parents[0].0]
            .computed
            .clone()
            .expect("parent executed");
        let op = Arc::clone(&dag.producer(*n).unwrap().op);
        let out = op.run(&[&input]).unwrap();
        let size = out.nbytes() as u64;
        dag.set_computed(*n, out).unwrap();
        dag.annotate(*n, 1.0, size).unwrap();
    }
    // Re-apply compute times from the spec.
    for (n, (_, t)) in nodes.iter().zip(spec) {
        dag.node_mut(*n).unwrap().compute_time = Some(f64::from(*t) / 8.0 + 0.1);
    }
    let mut eg = ExperimentGraph::new(dedup);
    eg.update_with_workload(&dag).unwrap();
    let available: HashMap<ArtifactId, Value> = dag
        .nodes()
        .iter()
        .filter_map(|n| n.computed.as_ref().map(|v| (n.artifact, v.clone())))
        .collect();
    (eg, available)
}

/// Cost model where loads are always cheaper than recomputation, so
/// every vertex is a materialization candidate.
fn cheap_loads() -> CostModel {
    CostModel {
        latency_s: 0.0,
        bandwidth_bytes_per_s: 1e12,
    }
}

fn source_bytes(eg: &ExperimentGraph) -> u64 {
    eg.sources()
        .iter()
        .filter_map(|id| eg.vertex(*id).ok().map(|v| v.size))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn budgets_are_hard_caps(
        spec in proptest::collection::vec((0u8..8, 0u16..32), 1..20),
        budget_kb in 1u64..200,
    ) {
        let budget = budget_kb * 1024;
        let cost = cheap_loads();
        // SA: unique bytes capped (sources exempt as the floor).
        let (mut eg, available) = build_eg(&spec, 500, true);
        let floor = eg.storage().unique_bytes();
        StorageAwareMaterializer::new(budget).run(&mut eg, &available, &cost);
        prop_assert!(eg.storage().unique_bytes() <= budget.max(floor));

        // HM: logical bytes capped.
        let (mut eg, available) = build_eg(&spec, 500, false);
        let floor = eg.storage().logical_bytes();
        GreedyMaterializer::new(budget).run(&mut eg, &available, &cost);
        prop_assert!(eg.storage().logical_bytes() <= budget.max(floor));

        // HL: logical bytes capped modulo late-arriving sources (none
        // here: single workload).
        let (mut eg, available) = build_eg(&spec, 500, false);
        let floor = eg.storage().logical_bytes();
        HelixMaterializer { budget }.run(&mut eg, &available, &cost);
        prop_assert!(eg.storage().logical_bytes() <= budget.max(floor));
    }

    #[test]
    fn sa_stores_at_least_as_many_artifacts_as_hm(
        spec in proptest::collection::vec((0u8..8, 0u16..32), 1..20),
        budget_kb in 4u64..100,
    ) {
        // With identical budgets, deduplication can only help: SA
        // materializes at least as many artifacts as HM.
        let budget = budget_kb * 1024;
        let cost = cheap_loads();
        let (mut eg_sa, available) = build_eg(&spec, 500, true);
        StorageAwareMaterializer::new(budget).run(&mut eg_sa, &available, &cost);
        let (mut eg_hm, available) = build_eg(&spec, 500, false);
        GreedyMaterializer::new(budget).run(&mut eg_hm, &available, &cost);
        prop_assert!(
            eg_sa.storage().n_artifacts() >= eg_hm.storage().n_artifacts(),
            "SA {} < HM {}", eg_sa.storage().n_artifacts(), eg_hm.storage().n_artifacts()
        );
    }

    #[test]
    fn sa_without_dedup_degrades_to_hm(
        spec in proptest::collection::vec((0u8..8, 0u16..32), 1..20),
        budget_kb in 4u64..100,
    ) {
        // The DESIGN.md ablation: on a plain (non-deduplicating) store,
        // marginal bytes equal nominal bytes, so the storage-aware
        // selection coincides with the greedy one.
        let budget = budget_kb * 1024;
        let cost = cheap_loads();
        let (mut eg_sa, available) = build_eg(&spec, 500, false);
        StorageAwareMaterializer::new(budget).run(&mut eg_sa, &available, &cost);
        let (mut eg_hm, available) = build_eg(&spec, 500, false);
        GreedyMaterializer::new(budget).run(&mut eg_hm, &available, &cost);
        let mut sa_set = eg_sa.storage().materialized_ids();
        let mut hm_set = eg_hm.storage().materialized_ids();
        sa_set.sort();
        hm_set.sort();
        prop_assert_eq!(sa_set, hm_set);
    }

    #[test]
    fn all_and_none_are_the_extremes(
        spec in proptest::collection::vec((0u8..8, 0u16..32), 1..15),
    ) {
        let cost = cheap_loads();
        let (mut eg, available) = build_eg(&spec, 200, true);
        let n_sources = eg.sources().len();
        NoneMaterializer.run(&mut eg, &available, &cost);
        prop_assert_eq!(eg.storage().n_artifacts(), n_sources);
        AllMaterializer.run(&mut eg, &available, &cost);
        prop_assert_eq!(eg.storage().n_artifacts(), eg.n_vertices());
        // Every stored artifact round-trips.
        for id in eg.storage().materialized_ids() {
            prop_assert!(eg.storage().get(id).is_some());
        }
    }

    #[test]
    fn materializers_are_idempotent(
        spec in proptest::collection::vec((0u8..8, 0u16..32), 1..15),
        budget_kb in 4u64..100,
    ) {
        // Running the same materializer twice on an unchanged graph must
        // not change the stored set.
        let budget = budget_kb * 1024;
        let cost = cheap_loads();
        let (mut eg, available) = build_eg(&spec, 300, true);
        let sa = StorageAwareMaterializer::new(budget);
        sa.run(&mut eg, &available, &cost);
        let mut first: Vec<_> = eg.storage().materialized_ids();
        first.sort();
        let first_bytes = eg.storage().unique_bytes();
        sa.run(&mut eg, &available, &cost);
        let mut second: Vec<_> = eg.storage().materialized_ids();
        second.sort();
        prop_assert_eq!(first, second);
        prop_assert_eq!(first_bytes, eg.storage().unique_bytes());
    }

    #[test]
    fn sources_always_survive(
        spec in proptest::collection::vec((0u8..8, 0u16..32), 1..15),
        budget_kb in 0u64..50,
    ) {
        let cost = cheap_loads();
        for dedup in [true, false] {
            let (mut eg, available) = build_eg(&spec, 300, dedup);
            let mats: Vec<Box<dyn Materializer>> = vec![
                Box::new(StorageAwareMaterializer::new(budget_kb * 1024)),
                Box::new(GreedyMaterializer::new(budget_kb * 1024)),
                Box::new(HelixMaterializer { budget: budget_kb * 1024 }),
                Box::new(NoneMaterializer),
            ];
            for m in mats {
                m.run(&mut eg, &available, &cost);
                for src in eg.sources() {
                    prop_assert!(eg.is_materialized(*src), "{} evicted a source", m.name());
                }
            }
            prop_assert!(source_bytes(&eg) > 0);
        }
    }
}
