//! Failure injection: operations that fail mid-workload must surface a
//! clean error, leave the Experiment Graph consistent, salvage the
//! completed prefix, and not poison later submissions.

use co_core::{OptimizerServer, ServerConfig};
use co_dataframe::Scalar;
use co_graph::{FaultInjector, FaultKind, GraphError, NodeKind, Operation, Value, WorkloadDag};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Succeeds `good_runs` times, then fails forever. Uses shared state to
/// emulate a flaky external resource (not operation parameters, so the
/// artifact identity stays fixed).
struct Flaky {
    label: String,
    remaining_good: Arc<AtomicUsize>,
}

impl Operation for Flaky {
    fn name(&self) -> &str {
        &self.label
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        // Real compute cost, so the artifact is worth materializing.
        std::thread::sleep(std::time::Duration::from_millis(2));
        if self
            .remaining_good
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
        {
            Ok(Value::Aggregate(Scalar::Float(1.0)))
        } else {
            Err(GraphError::OperationFailed {
                op: self.label.clone(),
                message: "injected failure".to_owned(),
                transient: false,
            })
        }
    }
}

struct Ok1(String);
impl Operation for Ok1 {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(std::time::Duration::from_millis(2));
        Ok(Value::Aggregate(Scalar::Float(2.0)))
    }
}

/// Panics unconditionally, the way buggy user code does.
struct Panicky;
impl Operation for Panicky {
    fn name(&self) -> &str {
        "panicky_step"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        panic!("user code exploded");
    }
}

/// src → stable_step → flaky_step → tail_step (terminal).
fn workload(budget: &Arc<AtomicUsize>) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let ok = dag
        .add_op(Arc::new(Ok1("stable_step".into())), &[s])
        .unwrap();
    let flaky = dag
        .add_op(
            Arc::new(Flaky {
                label: "flaky_step".into(),
                remaining_good: Arc::clone(budget),
            }),
            &[ok],
        )
        .unwrap();
    let tail = dag
        .add_op(Arc::new(Ok1("tail_step".into())), &[flaky])
        .unwrap();
    dag.mark_terminal(tail).unwrap();
    dag
}

#[test]
fn failed_workloads_salvage_their_prefix_without_corrupting_the_graph() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let budget = Arc::new(AtomicUsize::new(1));

    // First run succeeds end to end and populates the graph.
    let (_, report) = server.run_workload(workload(&budget)).unwrap();
    assert_eq!(report.ops_executed, 3);
    let vertices_after_success = server.eg().n_vertices();
    let stats_after_success = server.stats();

    // Exhaust the flaky op's budget and force a recompute of the flaky
    // node by a *modified* downstream workload (the stored artifacts
    // would otherwise serve the repeat).
    let mut dag = workload(&budget);
    let flaky_node = co_graph::NodeId(2);
    let extra = dag
        .add_op(Arc::new(Ok1("new_tail".into())), &[flaky_node])
        .unwrap();
    dag.mark_terminal(extra).unwrap();
    {
        // A fresh server with no materialization: guaranteed recompute.
        let kg = OptimizerServer::new(ServerConfig::baseline());
        let err = kg.run_workload(dag).unwrap_err();
        assert!(
            matches!(err.error, GraphError::OperationFailed { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("injected failure"));
        // The failure is isolated to the flaky node and its descendants;
        // the computed prefix (src, stable_step) is salvaged into the EG.
        assert_eq!(err.untainted(), 2, "tainted: {:?}", err.tainted);
        assert_eq!(err.completed.len(), 1); // stable_step (src was free)
        assert_eq!(err.report.salvaged_artifacts, 1);
        let eg = kg.eg();
        assert_eq!(eg.n_vertices(), 2, "only the untainted prefix may merge");
        let stats = kg.stats();
        assert_eq!(stats.workloads, 0);
        assert_eq!(stats.failed_workloads, 1);
        assert_eq!(stats.salvaged_artifacts, 1);
    }

    // The original server is untouched by any of this.
    assert_eq!(server.eg().n_vertices(), vertices_after_success);
    assert_eq!(server.stats(), stats_after_success);

    // And it still serves the (materialized) original workload — the
    // flaky op never needs to run again.
    let (_, repeat) = server.run_workload(workload(&budget)).unwrap();
    assert_eq!(repeat.ops_executed, 0);
    assert!(repeat.artifacts_loaded >= 1);
}

#[test]
fn workload_without_terminals_is_rejected_cleanly() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let mut dag = WorkloadDag::new();
    dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let err = server.run_workload(dag).unwrap_err();
    assert!(matches!(err.error, GraphError::NoTerminals));
    // Failure predates execution: nothing to salvage, nothing merged.
    assert!(err.tainted.is_empty());
    assert_eq!(server.eg().n_vertices(), 0);
    assert_eq!(server.stats().salvaged_artifacts, 0);
}

#[test]
fn type_mismatches_surface_as_operation_errors() {
    // Feed an Aggregate into a dataset-expecting op via a custom source.
    // The static validator catches this before anything executes.
    let server = OptimizerServer::new(ServerConfig::baseline());
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("scalar_src", Value::Aggregate(Scalar::Float(1.0)));
    let bad = dag
        .add_op(
            Arc::new(co_core::ops::SelectOp {
                columns: vec!["x".into()],
            }),
            &[s],
        )
        .unwrap();
    dag.mark_terminal(bad).unwrap();
    let err = server.run_workload(dag).unwrap_err();
    match &err.error {
        GraphError::InvalidWorkload { diagnostics } => {
            assert_eq!(diagnostics.len(), 1, "{err}");
            assert!(diagnostics[0].contains("bad-input-kind"), "{err}");
            assert!(diagnostics[0].contains("scalar_src"), "{err}");
        }
        other => panic!("expected InvalidWorkload, got {other}"),
    }
    // Rejection predates execution: no retries were burned on it.
    assert_eq!(err.report.retries, 0);
}

#[test]
fn recovery_after_failure_is_complete() {
    // A server that sees a failing workload keeps serving others.
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let exhausted = Arc::new(AtomicUsize::new(0)); // fails immediately
    let err = server.run_workload(workload(&exhausted)).unwrap_err();
    assert!(matches!(err.error, GraphError::OperationFailed { .. }));

    // A healthy variant of the same pipeline succeeds afterwards; the
    // salvaged prefix may be reused, so at most the flaky node and its
    // descendants recompute.
    let healthy = Arc::new(AtomicUsize::new(usize::MAX));
    let (_, report) = server.run_workload(workload(&healthy)).unwrap();
    assert!(
        report.ops_executed >= 2 && report.ops_executed <= 3,
        "{report:?}"
    );
    assert!(server.eg().n_vertices() > 0);
}

#[test]
fn transient_failures_are_retried_to_success() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let faults = Arc::new(FaultInjector::new());
    // Two transient failures, then clean: default policy (3 attempts)
    // absorbs them without the client ever seeing an error.
    faults.fail_op("stable_step", FaultKind::Transient, 2);
    server.set_fault_injector(Arc::clone(&faults));

    let healthy = Arc::new(AtomicUsize::new(usize::MAX));
    let (_, report) = server.run_workload(workload(&healthy)).unwrap();
    assert_eq!(report.retries, 2);
    assert_eq!(report.ops_executed, 3);
    let stats = server.stats();
    assert_eq!(stats.workloads, 1);
    assert_eq!(stats.failed_workloads, 0);
}

#[test]
fn permanent_failure_salvages_prefix_for_resubmission() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let exhausted = Arc::new(AtomicUsize::new(0));
    let err = server.run_workload(workload(&exhausted)).unwrap_err();
    assert_eq!(err.untainted(), 2); // src + stable_step survive
    assert_eq!(server.stats().salvaged_artifacts, 1);
    assert_eq!(server.eg().n_vertices(), 2);

    // Resubmitting with the fault fixed reuses the salvaged prefix:
    // stable_step never runs again.
    let healthy = Arc::new(AtomicUsize::new(usize::MAX));
    let (_, report) = server.run_workload(workload(&healthy)).unwrap();
    assert_eq!(report.ops_executed, 2, "{report:?}"); // flaky + tail only
    assert!(report.artifacts_loaded >= 1);
}

#[test]
fn panics_in_user_operations_are_isolated() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let ok = dag
        .add_op(Arc::new(Ok1("stable_step".into())), &[s])
        .unwrap();
    let boom = dag.add_op(Arc::new(Panicky), &[ok]).unwrap();
    dag.mark_terminal(boom).unwrap();

    let err = server.run_workload(dag).unwrap_err();
    assert!(
        matches!(err.error, GraphError::OperationPanicked { .. }),
        "{err}"
    );
    assert!(err.to_string().contains("user code exploded"));
    assert_eq!(err.report.panics_caught, 1);

    // The server survives: no poisoned locks, later workloads succeed.
    let healthy = Arc::new(AtomicUsize::new(usize::MAX));
    let (_, report) = server.run_workload(workload(&healthy)).unwrap();
    assert!(report.ops_executed >= 2);
}

#[test]
fn load_misses_fall_back_to_recompute() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let healthy = Arc::new(AtomicUsize::new(usize::MAX));
    server.run_workload(workload(&healthy)).unwrap();

    // Sanity: the repeat is served purely from the store.
    let (_, repeat) = server.run_workload(workload(&healthy)).unwrap();
    assert_eq!(repeat.ops_executed, 0);

    // Now every load silently misses (a store that lost its contents
    // after the plan was drawn). The executor degrades the plan to
    // recomputation instead of erroring.
    let faults = Arc::new(FaultInjector::new());
    for n in 0..64 {
        faults.fail_nth_load(n);
    }
    server.set_fault_injector(Arc::clone(&faults));
    let (_, degraded) = server.run_workload(workload(&healthy)).unwrap();
    assert!(degraded.load_misses_recovered >= 1, "{degraded:?}");
    assert!(degraded.ops_executed >= 1);
    assert!(faults.loads_failed() >= 1);
}

#[test]
fn evicted_artifacts_recompute_instead_of_erroring() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let healthy = Arc::new(AtomicUsize::new(usize::MAX));
    let (dag, first) = server.run_workload(workload(&healthy)).unwrap();
    assert_eq!(first.ops_executed, 3);

    // Evict everything the run materialized.
    let ids: Vec<_> = {
        let eg = server.eg();
        eg.storage().materialized_ids()
    };
    assert!(!ids.is_empty());
    let mut freed = 0;
    for id in ids {
        freed += server.evict_artifact(id);
    }
    assert!(freed > 0);
    drop(dag);

    // The resubmission cannot load anything, so it recomputes — cleanly.
    let (_, report) = server.run_workload(workload(&healthy)).unwrap();
    assert_eq!(report.ops_executed, 3, "{report:?}");
}
