//! Failure injection: operations that fail mid-workload must surface a
//! clean error, leave the Experiment Graph uncorrupted, and not poison
//! later submissions.

use co_core::{OptimizerServer, ServerConfig};
use co_dataframe::Scalar;
use co_graph::{GraphError, NodeKind, Operation, Value, WorkloadDag};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Succeeds `good_runs` times, then fails forever. Uses shared state to
/// emulate a flaky external resource (not operation parameters, so the
/// artifact identity stays fixed).
struct Flaky {
    label: String,
    remaining_good: Arc<AtomicUsize>,
}

impl Operation for Flaky {
    fn name(&self) -> &str {
        &self.label
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        // Real compute cost, so the artifact is worth materializing.
        std::thread::sleep(std::time::Duration::from_millis(2));
        if self.remaining_good.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1)).is_ok()
        {
            Ok(Value::Aggregate(Scalar::Float(1.0)))
        } else {
            Err(GraphError::OperationFailed {
                op: self.label.clone(),
                message: "injected failure".to_owned(),
            })
        }
    }
}

struct Ok1(String);
impl Operation for Ok1 {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(std::time::Duration::from_millis(2));
        Ok(Value::Aggregate(Scalar::Float(2.0)))
    }
}

fn workload(budget: &Arc<AtomicUsize>) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let ok = dag.add_op(Arc::new(Ok1("stable_step".into())), &[s]).unwrap();
    let flaky = dag
        .add_op(
            Arc::new(Flaky { label: "flaky_step".into(), remaining_good: Arc::clone(budget) }),
            &[ok],
        )
        .unwrap();
    let tail = dag.add_op(Arc::new(Ok1("tail_step".into())), &[flaky]).unwrap();
    dag.mark_terminal(tail).unwrap();
    dag
}

#[test]
fn failed_workloads_do_not_corrupt_the_graph() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let budget = Arc::new(AtomicUsize::new(1));

    // First run succeeds end to end and populates the graph.
    let (_, report) = server.run_workload(workload(&budget)).unwrap();
    assert_eq!(report.ops_executed, 3);
    let vertices_after_success = server.eg().n_vertices();
    let stats_after_success = server.stats();

    // Exhaust the flaky op's budget and force a recompute of the flaky
    // node by a *modified* downstream workload (the stored artifacts
    // would otherwise serve the repeat).
    let mut dag = workload(&budget);
    let flaky_node = co_graph::NodeId(2);
    let extra = dag
        .add_op(Arc::new(Ok1("new_tail".into())), &[flaky_node])
        .unwrap();
    dag.mark_terminal(extra).unwrap();
    // Evict everything so the flaky op must actually run.
    {
        // A fresh server with no materialization: guaranteed recompute.
        let kg = OptimizerServer::new(ServerConfig::baseline());
        let err = kg.run_workload(dag).unwrap_err();
        assert!(matches!(err, GraphError::OperationFailed { .. }), "{err}");
        assert!(err.to_string().contains("injected failure"));
        // The failed workload must not have been merged.
        let eg = kg.eg();
        assert_eq!(eg.n_vertices(), 0, "failed run leaked vertices into EG");
        assert_eq!(kg.stats().workloads, 0);
    }

    // The original server is untouched by any of this.
    assert_eq!(server.eg().n_vertices(), vertices_after_success);
    assert_eq!(server.stats(), stats_after_success);

    // And it still serves the (materialized) original workload — the
    // flaky op never needs to run again.
    let (_, repeat) = server.run_workload(workload(&budget)).unwrap();
    assert_eq!(repeat.ops_executed, 0);
    assert!(repeat.artifacts_loaded >= 1);
}

#[test]
fn workload_without_terminals_is_rejected_cleanly() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let mut dag = WorkloadDag::new();
    dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let err = server.run_workload(dag).unwrap_err();
    assert!(matches!(err, GraphError::NoTerminals));
    assert_eq!(server.eg().n_vertices(), 0);
}

#[test]
fn type_mismatches_surface_as_operation_errors() {
    // Feed an Aggregate into a dataset-expecting op via a custom source.
    let server = OptimizerServer::new(ServerConfig::baseline());
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("scalar_src", Value::Aggregate(Scalar::Float(1.0)));
    let bad = dag
        .add_op(
            Arc::new(co_core::ops::SelectOp { columns: vec!["x".into()] }),
            &[s],
        )
        .unwrap();
    dag.mark_terminal(bad).unwrap();
    let err = server.run_workload(dag).unwrap_err();
    assert!(matches!(err, GraphError::BadOperationInput { .. }), "{err}");
}

#[test]
fn recovery_after_failure_is_complete() {
    // A server that sees a failing workload keeps serving others.
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let exhausted = Arc::new(AtomicUsize::new(0)); // fails immediately
    let err = server.run_workload(workload(&exhausted)).unwrap_err();
    assert!(matches!(err, GraphError::OperationFailed { .. }));

    // A healthy variant of the same pipeline succeeds afterwards.
    let healthy = Arc::new(AtomicUsize::new(usize::MAX));
    let (_, report) = server.run_workload(workload(&healthy)).unwrap();
    assert_eq!(report.ops_executed, 3);
    assert!(server.eg().n_vertices() > 0);
}
