//! Crash matrix: kill persistence at every injected crash point and
//! assert a restarted server recovers exactly the committed-workload
//! prefix — same vertex ids, frequencies, materialization flags, and
//! quarantine set. Runs against both durability layouts: the classic
//! single-journal server and the sharded one (per-shard journals sealed
//! by a cross-shard commit record, DESIGN.md §14).

use co_core::{DurabilityConfig, OptimizerServer, ServerConfig};
use co_dataframe::Scalar;
use co_graph::journal::QuarantineEntry;
use co_graph::{shard_of, ArtifactId, WorkloadDag};
use co_graph::{CrashPoint, FaultInjector, FaultKind, GraphError, NodeKind, Operation, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

struct Step(String);
impl Operation for Step {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        // Real compute cost, so artifacts are worth materializing.
        std::thread::sleep(std::time::Duration::from_millis(2));
        Ok(Value::Aggregate(Scalar::Float(1.0)))
    }
}

fn step(name: impl Into<String>) -> Arc<Step> {
    Arc::new(Step(name.into()))
}

/// src → prep_step → <tail> (terminal).
fn workload(tail: &'static str) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let prep = dag.add_op(step("prep_step"), &[s]).unwrap();
    let t = dag.add_op(step(tail), &[prep]).unwrap();
    dag.mark_terminal(t).unwrap();
    dag
}

/// A three-op chain whose artifacts provably land on at least two
/// different shards of an `n`-way partition (op names are salted until
/// the hash-based routing spreads them), so a crash injected *between*
/// two per-shard journal appends is actually reachable.
fn cross_shard_workload(n: usize, salt: u64) -> WorkloadDag {
    for attempt in 0.. {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
        let mut prev = s;
        for i in 0..3 {
            prev = dag
                .add_op(step(format!("x{salt}_{attempt}_{i}")), &[prev])
                .unwrap();
        }
        dag.mark_terminal(prev).unwrap();
        let shards: BTreeSet<usize> = dag
            .nodes()
            .iter()
            .map(|node| shard_of(node.artifact, n))
            .collect();
        if shards.len() >= 2 {
            return dag;
        }
    }
    unreachable!()
}

/// Everything durability must preserve across a restart.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// id → (frequency, compute_time bits, size, quality bits).
    vertices: BTreeMap<u64, (u64, u64, u64, u64)>,
    /// Artifacts whose mat flag is set (content or restored flag).
    mat: BTreeSet<u64>,
    /// Quarantined operations as (op_hash, failures).
    quarantine: BTreeSet<(u64, usize)>,
}

fn fingerprint(server: &OptimizerServer) -> Fingerprint {
    // read_all works at every shard count (one guard at shards = 1).
    let guards = server.shards().read_all();
    let vertices = guards
        .iter()
        .flat_map(|eg| {
            eg.vertices().map(|v| {
                (
                    v.id.0,
                    (
                        v.frequency,
                        v.compute_time.to_bits(),
                        v.size,
                        v.quality.to_bits(),
                    ),
                )
            })
        })
        .collect();
    let mat = guards
        .iter()
        .flat_map(|eg| {
            eg.vertices()
                .filter(|v| eg.was_materialized(v.id))
                .map(|v| v.id.0)
        })
        .collect();
    let quarantine = server
        .quarantine()
        .map(|q| {
            q.entries()
                .into_iter()
                .map(|(op, _, failures)| (op, failures))
                .collect()
        })
        .unwrap_or_default();
    Fingerprint {
        vertices,
        mat,
        quarantine,
    }
}

/// A fresh per-test data directory under `target/tmp` (covered by the
/// CI stray-tmp-file leak check).
fn data_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(config: ServerConfig, dir: &PathBuf) -> (OptimizerServer, co_core::RecoveryReport) {
    OptimizerServer::open(config, DurabilityConfig::new(dir)).unwrap()
}

/// After any crash-and-recover sequence, the live graph and an offline
/// replay of the data directory must both satisfy every egfsck
/// invariant — cross-shard invariants included when sharded.
fn assert_fsck_clean(server: &OptimizerServer, dir: &std::path::Path) {
    let guards = server.shards().read_all();
    let live = if guards.len() == 1 {
        co_graph::fsck::check_graph(&guards[0])
    } else {
        let refs: Vec<&co_graph::ExperimentGraph> = guards.iter().map(|g| &**g).collect();
        let quarantine: Vec<QuarantineEntry> = server
            .quarantine()
            .map(|q| {
                q.entries()
                    .into_iter()
                    .map(|(op_hash, name, failures)| QuarantineEntry {
                        op_hash,
                        name,
                        failures,
                    })
                    .collect()
            })
            .unwrap_or_default();
        co_graph::fsck::check_shards(&refs, &quarantine)
    };
    assert!(live.is_clean(), "live graph: {live}");
    drop(guards);
    let offline = match co_graph::fsck::detect_shard_layout(dir) {
        Some(n) => co_graph::fsck::check_sharded_data_dir(dir, n, true).unwrap(),
        None => co_graph::fsck::check_data_dir(dir, true).unwrap(),
    };
    assert!(offline.is_clean(), "data dir: {offline}");
}

#[test]
fn journal_crash_points_recover_the_committed_prefix() {
    for point in [CrashPoint::JournalMidAppend, CrashPoint::JournalPreFsync] {
        let dir = data_dir(&format!("crash_{}", point.name()));
        let config = ServerConfig::collaborative(u64::MAX);
        let (server, recovery) = open(config, &dir);
        assert!(!recovery.snapshot_loaded);

        let faults = Arc::new(FaultInjector::new());
        server.set_fault_injector(Arc::clone(&faults));
        server.run_workload(workload("tail_one")).unwrap();
        let committed = fingerprint(&server);

        // The crash fires while the second workload's delta is being
        // journaled: the run is reported failed (its effects would not
        // survive a restart) …
        faults.arm_crash(point);
        let err = server.run_workload(workload("tail_two")).unwrap_err();
        assert!(err.to_string().contains(point.name()), "{err}");
        assert_eq!(faults.crashes_fired(), 1);
        assert_eq!(server.stats().failed_workloads, 1);

        // … and the durability layer wedges: later publishes refuse
        // rather than journal records recovery could never replay.
        let wedged = server.run_workload(workload("tail_three")).unwrap_err();
        assert!(wedged.to_string().contains("wedged"), "{wedged}");

        // "Reboot": a server opened from the same directory holds
        // exactly the committed prefix.
        drop(server);
        let (reopened, recovery) = open(config, &dir);
        assert_eq!(fingerprint(&reopened), committed, "{point:?}");
        assert_eq!(
            recovery.torn_tail_truncated,
            point == CrashPoint::JournalMidAppend,
            "mid-append leaves a torn record, pre-fsync loses it whole"
        );

        // The reopened server serves and persists workloads normally.
        reopened.run_workload(workload("tail_two")).unwrap();
        let after = fingerprint(&reopened);
        drop(reopened);
        let (third, _) = open(config, &dir);
        assert_eq!(fingerprint(&third), after);
        assert_fsck_clean(&third, &dir);
    }
}

#[test]
fn snapshot_crash_points_never_damage_the_live_snapshot() {
    for point in [
        CrashPoint::SnapshotMidWrite,
        CrashPoint::SnapshotPreFsync,
        CrashPoint::SnapshotPreRename,
    ] {
        let dir = data_dir(&format!("crash_{}", point.name()));
        let config = ServerConfig::collaborative(u64::MAX);
        let (server, _) = open(config, &dir);
        let faults = Arc::new(FaultInjector::new());
        server.set_fault_injector(Arc::clone(&faults));

        // One compacted workload (lives in the snapshot) plus one
        // journaled workload, so recovery must stitch both sources.
        server.run_workload(workload("tail_one")).unwrap();
        server.compact().unwrap();
        server.run_workload(workload("tail_two")).unwrap();
        let committed = fingerprint(&server);

        faults.arm_crash(point);
        let err = server.compact().unwrap_err();
        assert!(err.to_string().contains(point.name()), "{err}");
        assert_eq!(faults.crashes_fired(), 1);

        // The interrupted save left (at most) a temp file behind; the
        // live snapshot + journal still recover everything committed.
        drop(server);
        let (reopened, recovery) = open(config, &dir);
        assert_eq!(fingerprint(&reopened), committed, "{point:?}");
        assert_eq!(recovery.stray_tmp_removed, 1, "{point:?}");
        assert!(recovery.snapshot_loaded);

        // Compaction itself still works after the "crash".
        reopened.compact().unwrap();
        assert_eq!(reopened.stats().snapshots_compacted, 1);
        drop(reopened);
        let (third, recovery) = open(config, &dir);
        assert_eq!(fingerprint(&third), committed);
        assert_eq!(recovery.journal_records_replayed, 0, "journal compacted");
        assert_fsck_clean(&third, &dir);
    }
}

#[test]
fn torn_tail_is_truncated_and_reported() {
    let dir = data_dir("torn_tail");
    let config = ServerConfig::collaborative(u64::MAX);
    let (server, _) = open(config, &dir);
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));
    server.run_workload(workload("tail_one")).unwrap();
    faults.arm_crash(CrashPoint::JournalMidAppend);
    server.run_workload(workload("tail_two")).unwrap_err();
    drop(server);

    let (reopened, recovery) = open(config, &dir);
    assert!(recovery.torn_tail_truncated);
    assert!(recovery.torn_bytes_discarded > 0);
    assert_eq!(recovery.journal_records_replayed, 1);
    let stats = reopened.stats();
    assert_eq!(stats.journal_records_replayed, 1);
    assert_eq!(stats.torn_tail_truncated, 1);
    assert!(
        recovery.render().contains("torn tail"),
        "{}",
        recovery.render()
    );

    // The truncated journal accepts appends again; a third open sees a
    // clean file with both workloads.
    reopened.run_workload(workload("tail_two")).unwrap();
    drop(reopened);
    let (third, recovery) = open(config, &dir);
    assert!(!recovery.torn_tail_truncated);
    assert_eq!(recovery.journal_records_replayed, 2);
    assert_eq!(third.stats().torn_tail_truncated, 0);
    assert_fsck_clean(&third, &dir);
}

#[test]
fn quarantine_survives_restart() {
    let dir = data_dir("quarantine_restart");
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.quarantine_after = Some(2);
    let (server, _) = open(config, &dir);
    let faults = Arc::new(FaultInjector::new());
    faults.fail_op_forever("tail_one", FaultKind::Permanent);
    server.set_fault_injector(Arc::clone(&faults));

    // Two consecutive permanent failures trip the quarantine; the
    // second run's delta journals the Q+ entry.
    server.run_workload(workload("tail_one")).unwrap_err();
    server.run_workload(workload("tail_one")).unwrap_err();
    let committed = fingerprint(&server);
    assert_eq!(committed.quarantine.len(), 1);

    // Restart WITHOUT the fault injector: the operation would succeed
    // if re-run, but the restored quarantine fast-fails it instead of
    // letting the poisoned op at the server again.
    drop(server);
    let (reopened, recovery) = open(config, &dir);
    assert_eq!(recovery.quarantine_restored, 1);
    assert_eq!(fingerprint(&reopened), committed);
    let err = reopened.run_workload(workload("tail_one")).unwrap_err();
    assert!(
        matches!(err.error, GraphError::Quarantined { failures: 2, .. }),
        "{err}"
    );

    // Releasing and succeeding clears the entry durably (Q- journaled).
    {
        let quarantine = reopened.quarantine().unwrap();
        let (op, ..) = quarantine.entries()[0];
        quarantine.release(op);
    }
    reopened.run_workload(workload("tail_one")).unwrap();
    drop(reopened);
    let (third, recovery) = open(config, &dir);
    assert_eq!(recovery.quarantine_restored, 0);
    assert!(fingerprint(&third).quarantine.is_empty());
    third.run_workload(workload("tail_one")).unwrap();
    assert_fsck_clean(&third, &dir);
}

#[test]
fn journal_threshold_triggers_auto_compaction() {
    let dir = data_dir("auto_compact");
    let config = ServerConfig::collaborative(u64::MAX);
    let mut durability = DurabilityConfig::new(&dir);
    durability.compact_journal_bytes = 1; // every publish crosses it
    let (server, _) = OptimizerServer::open(config, durability).unwrap();
    server.run_workload(workload("tail_one")).unwrap();
    server.run_workload(workload("tail_two")).unwrap();
    assert!(server.stats().snapshots_compacted >= 2);
    let committed = fingerprint(&server);
    drop(server);

    // Everything lives in the snapshot; the journal replays nothing.
    let (reopened, recovery) = open(config, &dir);
    assert!(recovery.snapshot_loaded);
    assert_eq!(recovery.journal_records_replayed, 0);
    assert_eq!(fingerprint(&reopened), committed);
    assert_fsck_clean(&reopened, &dir);
}

#[test]
fn eviction_is_durable() {
    let dir = data_dir("evict_durable");
    let config = ServerConfig::collaborative(u64::MAX);
    let (server, _) = open(config, &dir);
    server.run_workload(workload("tail_one")).unwrap();
    let evict: Vec<ArtifactId> = {
        let eg = server.eg();
        eg.storage().materialized_ids()
    };
    assert!(!evict.is_empty());
    for id in &evict {
        server.evict_artifact(*id);
    }
    let committed = fingerprint(&server);
    for id in &evict {
        assert!(!committed.mat.contains(&id.0));
    }
    drop(server);

    let (reopened, _) = open(config, &dir);
    assert_eq!(
        fingerprint(&reopened),
        committed,
        "eviction survives restart"
    );
    assert_fsck_clean(&reopened, &dir);
}

// ---- sharded layout (shards = 8) ------------------------------------

/// The crash matrix against the sharded durability layout: every
/// journal-side crash point — including one fired *between* two shards'
/// journal appends of a single cross-shard publish — must roll the
/// whole publish back on reopen. The commit record decides atomicity:
/// per-shard records whose sequence number never reached `eg.commit`
/// are skipped by recovery.
#[test]
fn sharded_crash_matrix_recovers_the_committed_prefix() {
    for point in [
        CrashPoint::JournalMidAppend,
        CrashPoint::JournalPreFsync,
        CrashPoint::ShardGapAppend,
        CrashPoint::CommitPreAppend,
    ] {
        let dir = data_dir(&format!("shard_crash_{}", point.name()));
        let mut config = ServerConfig::collaborative(u64::MAX);
        config.shards = 8;
        let (server, recovery) = open(config, &dir);
        assert!(!recovery.snapshot_loaded);
        let faults = Arc::new(FaultInjector::new());
        server.set_fault_injector(Arc::clone(&faults));

        server.run_workload(cross_shard_workload(8, 1)).unwrap();
        let committed = fingerprint(&server);

        // The crash fires while the second (cross-shard) publish is
        // being journaled: the run reports failed …
        faults.arm_crash(point);
        let err = server
            .run_workload(cross_shard_workload(8, 100))
            .unwrap_err();
        assert!(err.to_string().contains(point.name()), "{point:?}: {err}");
        assert_eq!(faults.crashes_fired(), 1, "{point:?}");
        assert_eq!(server.stats().failed_workloads, 1);

        // … and durability wedges exactly like the single-shard layout.
        let wedged = server
            .run_workload(cross_shard_workload(8, 200))
            .unwrap_err();
        assert!(wedged.to_string().contains("wedged"), "{wedged}");
        assert!(server.is_wedged());

        drop(server);
        let (reopened, recovery) = open(config, &dir);
        assert_eq!(fingerprint(&reopened), committed, "{point:?}");
        if matches!(
            point,
            CrashPoint::ShardGapAppend | CrashPoint::CommitPreAppend
        ) {
            // Some shard journals hold fully written records for the
            // crashed publish; without its commit record they are
            // uncommitted and recovery must skip them.
            assert!(
                recovery.journal_records_skipped > 0,
                "{point:?} leaves uncommitted records to skip: {recovery:?}"
            );
            assert!(recovery.render().contains("skipped"));
        }

        // The reopened server serves and persists normally again.
        reopened.run_workload(cross_shard_workload(8, 100)).unwrap();
        let after = fingerprint(&reopened);
        drop(reopened);
        let (third, _) = open(config, &dir);
        assert_eq!(fingerprint(&third), after, "{point:?}");
        assert_fsck_clean(&third, &dir);
    }
}

/// Snapshot crash points during a sharded compaction: an interrupted
/// per-shard snapshot save leaves (at most) a temp file; the live
/// snapshots, journals, and commit log still recover everything
/// committed.
#[test]
fn sharded_compaction_crash_points_never_damage_live_snapshots() {
    for point in [
        CrashPoint::SnapshotMidWrite,
        CrashPoint::SnapshotPreFsync,
        CrashPoint::SnapshotPreRename,
    ] {
        let dir = data_dir(&format!("shard_crash_{}", point.name()));
        let mut config = ServerConfig::collaborative(u64::MAX);
        config.shards = 8;
        let (server, _) = open(config, &dir);
        let faults = Arc::new(FaultInjector::new());
        server.set_fault_injector(Arc::clone(&faults));

        // One compacted publish (lives in the shard snapshots) plus one
        // journaled publish, so recovery must stitch both sources.
        server.run_workload(cross_shard_workload(8, 1)).unwrap();
        server.compact().unwrap();
        server.run_workload(cross_shard_workload(8, 50)).unwrap();
        let committed = fingerprint(&server);

        faults.arm_crash(point);
        let err = server.compact().unwrap_err();
        assert!(err.to_string().contains(point.name()), "{err}");

        drop(server);
        let (reopened, recovery) = open(config, &dir);
        assert_eq!(fingerprint(&reopened), committed, "{point:?}");
        assert_eq!(recovery.stray_tmp_removed, 1, "{point:?}");
        assert!(recovery.snapshot_loaded);

        // Compaction itself still works after the "crash"; afterwards
        // the journals replay nothing.
        reopened.compact().unwrap();
        drop(reopened);
        let (third, recovery) = open(config, &dir);
        assert_eq!(fingerprint(&third), committed, "{point:?}");
        assert_eq!(recovery.journal_records_replayed, 0, "journals compacted");
        assert_fsck_clean(&third, &dir);
    }
}

/// The quarantine set survives a sharded restart: Q± records are
/// confined to shard 0's journal and committed like any other publish.
#[test]
fn sharded_quarantine_survives_restart() {
    let dir = data_dir("shard_quarantine_restart");
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.shards = 8;
    config.quarantine_after = Some(2);
    let (server, _) = open(config, &dir);
    let faults = Arc::new(FaultInjector::new());
    faults.fail_op_forever("tail_one", FaultKind::Permanent);
    server.set_fault_injector(Arc::clone(&faults));

    server.run_workload(workload("tail_one")).unwrap_err();
    server.run_workload(workload("tail_one")).unwrap_err();
    let committed = fingerprint(&server);
    assert_eq!(committed.quarantine.len(), 1);

    drop(server);
    let (reopened, recovery) = open(config, &dir);
    assert_eq!(recovery.quarantine_restored, 1);
    assert_eq!(fingerprint(&reopened), committed);
    let err = reopened.run_workload(workload("tail_one")).unwrap_err();
    assert!(
        matches!(err.error, GraphError::Quarantined { failures: 2, .. }),
        "{err}"
    );

    // Releasing and succeeding clears the entry durably (Q- journaled
    // through shard 0 and committed).
    {
        let quarantine = reopened.quarantine().unwrap();
        let (op, ..) = quarantine.entries()[0];
        quarantine.release(op);
    }
    reopened.run_workload(workload("tail_one")).unwrap();
    drop(reopened);
    let (third, recovery) = open(config, &dir);
    assert_eq!(recovery.quarantine_restored, 0);
    assert!(fingerprint(&third).quarantine.is_empty());
    third.run_workload(workload("tail_one")).unwrap();
    assert_fsck_clean(&third, &dir);
}

/// A sharded data directory refuses to open under the wrong shard
/// count — and a single-journal directory refuses a sharded config.
#[test]
fn shard_count_mismatch_is_rejected_at_open() {
    let dir = data_dir("shard_mismatch");
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.shards = 8;
    let (server, _) = open(config, &dir);
    server.run_workload(workload("tail_one")).unwrap();
    drop(server);

    let mut wrong = config;
    wrong.shards = 4;
    let err = OptimizerServer::open(wrong, DurabilityConfig::new(&dir))
        .err()
        .unwrap();
    assert!(err.to_string().contains("8"), "{err}");

    wrong.shards = 1;
    let err = OptimizerServer::open(wrong, DurabilityConfig::new(&dir))
        .err()
        .unwrap();
    assert!(err.to_string().contains("sharded layout"), "{err}");

    // And the reverse: a legacy directory opened with shards > 1.
    let legacy_dir = data_dir("shard_mismatch_legacy");
    let single = ServerConfig::collaborative(u64::MAX);
    let (server, _) = open(single, &legacy_dir);
    server.run_workload(workload("tail_one")).unwrap();
    drop(server);
    let err = OptimizerServer::open(config, DurabilityConfig::new(&legacy_dir))
        .err()
        .unwrap();
    assert!(err.to_string().contains("single-graph layout"), "{err}");
}
