//! Property-based comparison of the reuse planners.
//!
//! The paper's claims under test:
//! * the linear-time algorithm produces optimal plans on its workloads
//!   ("the polynomial-time reuse algorithm of Helix generates the same
//!   plan as our linear-time reuse") — we verify exact cost equality on
//!   *tree-shaped* DAGs, where the parent-sum never double-counts;
//! * on arbitrary DAGs the max-flow plan is never worse (LN's diamond
//!   approximation can only overestimate the compute side);
//! * every plan is executable: loads only materialized vertices, and the
//!   plan's cost model matches an independent evaluation.

use co_core::optimizer::{
    plan_execution_cost, AllMaterializedReuse, HelixReuse, LinearReuse, NoReuse, ReusePlanner,
};
use co_core::CostModel;
use co_dataframe::Scalar;
use co_graph::{ExperimentGraph, NodeKind, Operation, Value, WorkloadDag};
use proptest::prelude::*;
use std::sync::Arc;

struct Tag(String);
impl Operation for Tag {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        Ok(Value::Aggregate(Scalar::Float(0.0)))
    }
}

fn agg() -> Value {
    Value::Aggregate(Scalar::Float(0.0))
}

/// Unit cost model: `Cl(v) = size(v)` seconds.
fn unit_cost() -> CostModel {
    CostModel {
        latency_s: 0.0,
        bandwidth_bytes_per_s: 1.0,
    }
}

/// Node spec: (parent choice seed, compute time, size, materialized).
type NodeSpec = (usize, u16, u16, bool);

/// Build a workload DAG + EG from specs. `tree` restricts every node to
/// one parent (LN's optimality domain); otherwise ~1/4 of nodes get two
/// parents.
fn build(specs: &[NodeSpec], tree: bool) -> (WorkloadDag, ExperimentGraph) {
    let mut dag = WorkloadDag::new();
    let src = dag.add_source("s", agg());
    let mut nodes = vec![src];
    for (i, (pseed, _, _, _)) in specs.iter().enumerate() {
        let op = Arc::new(Tag(format!("op{i}")));
        let p1 = nodes[pseed % nodes.len()];
        let node = if !tree && i % 4 == 3 && nodes.len() > 1 {
            let p2 = nodes[(pseed / 7) % nodes.len()];
            if p1 == p2 {
                dag.add_op(op, &[p1]).unwrap()
            } else {
                dag.add_op(op, &[p1, p2]).unwrap()
            }
        } else {
            dag.add_op(op, &[p1]).unwrap()
        };
        nodes.push(node);
    }
    dag.mark_terminal(*nodes.last().unwrap()).unwrap();

    let mut annotated = dag.clone();
    for (node, (_, t, s, _)) in nodes[1..].iter().zip(specs) {
        annotated
            .annotate(*node, f64::from(*t) / 16.0, u64::from(*s))
            .unwrap();
    }
    let mut eg = ExperimentGraph::new(false);
    eg.update_with_workload(&annotated).unwrap();
    for (node, (_, _, _, mat)) in nodes[1..].iter().zip(specs) {
        if *mat {
            let id = annotated.nodes()[node.0].artifact;
            eg.storage_mut().store(id, &agg());
        }
    }
    (dag, eg)
}

fn arb_specs(max: usize) -> impl Strategy<Value = Vec<NodeSpec>> {
    proptest::collection::vec(
        (0usize..1000, 0u16..64, 0u16..64, proptest::bool::ANY),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linear_is_optimal_on_trees(specs in arb_specs(40)) {
        let (dag, eg) = build(&specs, true);
        let cost = unit_cost();
        let ln = LinearReuse.plan(&dag, &eg, &cost);
        let hl = HelixReuse.plan(&dag, &eg, &cost);
        let ln_cost = plan_execution_cost(&dag, &eg, &cost, &ln);
        let hl_cost = plan_execution_cost(&dag, &eg, &cost, &hl);
        prop_assert!((ln_cost - hl_cost).abs() < 1e-9,
            "tree DAG: LN {ln_cost} != HL {hl_cost}");
    }

    #[test]
    fn maxflow_never_loses_on_dags(specs in arb_specs(40)) {
        let (dag, eg) = build(&specs, false);
        let cost = unit_cost();
        let ln = LinearReuse.plan(&dag, &eg, &cost);
        let hl = HelixReuse.plan(&dag, &eg, &cost);
        let ln_cost = plan_execution_cost(&dag, &eg, &cost, &ln);
        let hl_cost = plan_execution_cost(&dag, &eg, &cost, &hl);
        prop_assert!(hl_cost <= ln_cost + 1e-9, "HL {hl_cost} > LN {ln_cost}");
    }

    #[test]
    fn plans_only_load_materialized_vertices(specs in arb_specs(40)) {
        let (dag, eg) = build(&specs, false);
        let cost = unit_cost();
        for planner in [&LinearReuse as &dyn ReusePlanner, &HelixReuse, &AllMaterializedReuse, &NoReuse] {
            let plan = planner.plan(&dag, &eg, &cost);
            for (i, load) in plan.load.iter().enumerate() {
                if *load {
                    prop_assert!(
                        eg.is_materialized(dag.nodes()[i].artifact),
                        "{} loads unmaterialized node {i}", planner.name()
                    );
                }
            }
        }
    }

    #[test]
    fn reuse_never_exceeds_recompute_cost_on_trees(specs in arb_specs(40)) {
        // On trees LN is exact, so its plan can never lose to plain
        // recomputation. (On diamond DAGs this property genuinely FAILS
        // for LN — the paper's linear algorithm double-counts shared
        // ancestors and can over-commit to loads; see
        // `optimizer::helix::tests::diamond_exactness`.)
        let (dag, eg) = build(&specs, true);
        let cost = unit_cost();
        let ln = LinearReuse.plan(&dag, &eg, &cost);
        let none = NoReuse.plan(&dag, &eg, &cost);
        let ln_cost = plan_execution_cost(&dag, &eg, &cost, &ln);
        let none_cost = plan_execution_cost(&dag, &eg, &cost, &none);
        prop_assert!(ln_cost <= none_cost + 1e-9,
            "reuse plan ({ln_cost}) worse than recompute ({none_cost})");
    }

    #[test]
    fn maxflow_reuse_never_exceeds_recompute_cost(specs in arb_specs(40)) {
        // The exact planner's plan is optimal on any DAG, so recomputing
        // everything is always an upper bound.
        let (dag, eg) = build(&specs, false);
        let cost = unit_cost();
        let hl = HelixReuse.plan(&dag, &eg, &cost);
        let none = NoReuse.plan(&dag, &eg, &cost);
        let hl_cost = plan_execution_cost(&dag, &eg, &cost, &hl);
        let none_cost = plan_execution_cost(&dag, &eg, &cost, &none);
        prop_assert!(hl_cost <= none_cost + 1e-9,
            "optimal plan ({hl_cost}) worse than recompute ({none_cost})");
    }

    #[test]
    fn more_materialization_never_hurts_the_exact_planner(specs in arb_specs(30)) {
        // Extra materialized vertices only widen the exact planner's
        // choice set. (For LN on diamond DAGs an extra materialized
        // vertex can genuinely lure it into a worse load.)
        let (dag, eg_some) = build(&specs, false);
        let all_specs: Vec<NodeSpec> =
            specs.iter().map(|(p, t, s, _)| (*p, *t, *s, true)).collect();
        let (_, eg_all) = build(&all_specs, false);
        let cost = unit_cost();
        let some = HelixReuse.plan(&dag, &eg_some, &cost);
        let all = HelixReuse.plan(&dag, &eg_all, &cost);
        let some_cost = plan_execution_cost(&dag, &eg_some, &cost, &some);
        let all_cost = plan_execution_cost(&dag, &eg_all, &cost, &all);
        prop_assert!(all_cost <= some_cost + 1e-9,
            "full materialization ({all_cost}) worse than partial ({some_cost})");
    }

    #[test]
    fn more_materialization_never_hurts_ln_on_trees(specs in arb_specs(30)) {
        let (dag, eg_some) = build(&specs, true);
        let all_specs: Vec<NodeSpec> =
            specs.iter().map(|(p, t, s, _)| (*p, *t, *s, true)).collect();
        let (_, eg_all) = build(&all_specs, true);
        let cost = unit_cost();
        let some = LinearReuse.plan(&dag, &eg_some, &cost);
        let all = LinearReuse.plan(&dag, &eg_all, &cost);
        let some_cost = plan_execution_cost(&dag, &eg_some, &cost, &some);
        let all_cost = plan_execution_cost(&dag, &eg_all, &cost, &all);
        prop_assert!(all_cost <= some_cost + 1e-9,
            "full materialization ({all_cost}) worse than partial ({some_cost})");
    }

    #[test]
    fn backward_pass_loads_are_minimal(specs in arb_specs(40)) {
        // No loaded vertex may be an ancestor of another loaded vertex
        // along a path with no intermediate load (it would be hidden).
        let (dag, eg) = build(&specs, false);
        let cost = unit_cost();
        let plan = LinearReuse.plan(&dag, &eg, &cost);
        // Walk down from each loaded node: its loaded descendants must be
        // separated by... simpler check: walking the executor's needed
        // set, every loaded node must be reachable from a terminal
        // without crossing another loaded node.
        let mut needed = vec![false; dag.n_nodes()];
        let mut stack: Vec<usize> = dag.terminals().iter().map(|t| t.0).collect();
        while let Some(i) = stack.pop() {
            if needed[i] {
                continue;
            }
            needed[i] = true;
            if dag.nodes()[i].computed.is_some() || plan.load[i] {
                continue;
            }
            stack.extend(dag.parents(co_graph::NodeId(i)).iter().map(|p| p.0));
        }
        for (i, load) in plan.load.iter().enumerate() {
            prop_assert!(!*load || needed[i], "node {i} loaded but not needed");
        }
    }
}
