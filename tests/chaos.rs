//! Chaos harness: concurrent publishers against a durable server while
//! a bounded storage-fault window (ENOSPC / failed fsyncs) opens and
//! closes, at both durability layouts (shards = 1 and shards = 8), and
//! a serve-level run composing I/O faults with network faults. After
//! every scenario: the server returns to `Healthy` once the faults
//! clear, a reopened data directory holds exactly what the live server
//! held, egfsck is clean, and no client is left stuck.

use co_core::{DurabilityConfig, DurabilityHealth, OptimizerServer, ServerConfig};
use co_dataframe::{ColumnData, Scalar};
use co_graph::{FaultInjector, IoFault, NetFault, NodeKind, Operation, Value, WorkloadDag};
use co_serve::{
    start, AggSpec, Client, Response, RetryConfig, ServeConfig, SpecStep, WorkloadSpec,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Step(String);
impl Operation for Step {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(Duration::from_millis(1));
        Ok(Value::Aggregate(Scalar::Float(1.0)))
    }
}

/// src → <name>_prep → <name> (terminal); unique names defeat reuse so
/// every submission actually publishes.
fn workload(name: &str) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let prep = dag
        .add_op(Arc::new(Step(format!("{name}_prep"))), &[s])
        .unwrap();
    let t = dag
        .add_op(Arc::new(Step(name.to_owned())), &[prep])
        .unwrap();
    dag.mark_terminal(t).unwrap();
    dag
}

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    vertices: BTreeMap<u64, (u64, u64, u64, u64)>,
    mat: BTreeSet<u64>,
}

fn fingerprint(server: &OptimizerServer) -> Fingerprint {
    let guards = server.shards().read_all();
    let vertices = guards
        .iter()
        .flat_map(|eg| {
            eg.vertices().map(|v| {
                (
                    v.id.0,
                    (
                        v.frequency,
                        v.compute_time.to_bits(),
                        v.size,
                        v.quality.to_bits(),
                    ),
                )
            })
        })
        .collect();
    let mat = guards
        .iter()
        .flat_map(|eg| {
            eg.vertices()
                .filter(|v| eg.was_materialized(v.id))
                .map(|v| v.id.0)
        })
        .collect();
    Fingerprint { vertices, mat }
}

fn data_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_fsck_clean(dir: &std::path::Path) {
    let report = match co_graph::fsck::detect_shard_layout(dir) {
        Some(n) => co_graph::fsck::check_sharded_data_dir(dir, n, true).unwrap(),
        None => co_graph::fsck::check_data_dir(dir, true).unwrap(),
    };
    assert!(report.is_clean(), "data dir: {report}");
}

/// The core chaos scenario at a given shard count: 4 concurrent
/// publishers, a fault window that opens mid-run and closes before the
/// end, every failure transient, full convergence afterwards.
fn storage_chaos(shards: usize, fault: IoFault) {
    let dir = data_dir(&format!("chaos_s{shards}_{}", fault.name()));
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.shards = shards;
    let (server, _) = OptimizerServer::open(config, DurabilityConfig::new(&dir)).unwrap();
    let server = Arc::new(server);
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));

    const PUBLISHERS: usize = 4;
    const ROUNDS: usize = 30;
    let handles: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut succeeded = 0usize;
                for r in 0..ROUNDS {
                    match server.run_workload(workload(&format!("chaos_p{p}_r{r}"))) {
                        Ok(_) => succeeded += 1,
                        Err(e) => {
                            // Inside the window every refusal must be
                            // the retriable read-only kind — a chaos
                            // drill must never wedge a healthy server.
                            assert!(
                                e.error.is_transient(),
                                "publisher {p} round {r}: non-transient {e}"
                            );
                        }
                    }
                }
                succeeded
            })
        })
        .collect();

    // Open the fault window mid-run, keep it open briefly, close it.
    std::thread::sleep(Duration::from_millis(30));
    faults.arm_io_fault(fault, usize::MAX);
    std::thread::sleep(Duration::from_millis(80));
    faults.clear_io_faults();

    let succeeded: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(succeeded > 0, "some publishes must land around the window");

    // Faults are gone: the server must return to Healthy (repair may
    // already have happened opportunistically on a late publish).
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.durability_health() != DurabilityHealth::Healthy {
        assert!(Instant::now() < deadline, "server never healed");
        let _ = server.try_repair();
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!server.is_wedged());
    assert_eq!(server.backlog_len(), 0);
    server.run_workload(workload("chaos_after")).unwrap();
    server.flush_durable().unwrap();

    // Reopen: the directory holds exactly what the live server held —
    // committed publishes plus the healed backlog, nothing torn.
    let live = fingerprint(&server);
    let stats = server.stats();
    assert_eq!(stats.durability_health, 0);
    drop(server);
    let (reopened, _) = OptimizerServer::open(config, DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(fingerprint(&reopened), live, "shards={shards} {fault:?}");
    drop(reopened);
    assert_fsck_clean(&dir);
}

#[test]
fn chaos_enospc_window_single_shard() {
    storage_chaos(1, IoFault::Enospc);
}

#[test]
fn chaos_fsync_window_single_shard() {
    storage_chaos(1, IoFault::FsyncFail);
}

#[test]
fn chaos_enospc_window_sharded() {
    storage_chaos(8, IoFault::Enospc);
}

#[test]
fn chaos_fsync_window_sharded() {
    storage_chaos(8, IoFault::FsyncFail);
}

// ---------------------------------------------------------------------
// Serve-level chaos: I/O faults × network faults, no stuck client
// ---------------------------------------------------------------------

fn columns() -> Vec<(String, ColumnData)> {
    let f0: Vec<f64> = (0..32).map(|i| f64::from(i) / 32.0).collect();
    vec![("f0".to_owned(), ColumnData::Float(f0))]
}

/// Load → map(+salt) → mean; the salt defeats reuse.
fn spec(salt: f64) -> WorkloadSpec {
    WorkloadSpec {
        steps: vec![
            SpecStep::Load {
                dataset: "d".to_owned(),
            },
            SpecStep::Map {
                input: 0,
                column: "f0".to_owned(),
                f: co_serve::MapFnSpec::AddConst(salt),
                out: "salted".to_owned(),
            },
            SpecStep::Agg {
                input: 1,
                column: "salted".to_owned(),
                f: AggSpec::Mean,
            },
        ],
        outputs: vec![2],
    }
}

#[test]
fn chaos_serve_clients_ride_out_a_disk_outage() {
    let dir = data_dir("chaos_serve");
    let (server, _) = OptimizerServer::open(
        ServerConfig::collaborative(u64::MAX),
        DurabilityConfig::new(&dir),
    )
    .unwrap();
    let server = Arc::new(server);
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));

    let mut config = ServeConfig::new("127.0.0.1:0");
    config.faults = Some(Arc::clone(&faults));
    let mut handle = start(Arc::clone(&server), config).expect("bind");
    let addr = handle.local_addr();

    let client_faults = Arc::clone(&faults);
    let client = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(30);
        let retry = RetryConfig::default();
        let mut done = 0usize;
        let mut salt = 0usize;
        let mut conn: Option<Client> = None;
        while done < 12 {
            assert!(
                Instant::now() < deadline,
                "client stuck: {done} workloads served before the deadline"
            );
            let c = match &mut conn {
                Some(c) => c,
                None => {
                    // (Re)connect and (re)register the session dataset;
                    // network faults may kill connections at any time.
                    let Ok(mut c) = Client::connect(addr, "chaos") else {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    if c.register_dataset("d", columns()).is_err() {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                    conn.insert(c)
                }
            };
            salt += 1;
            #[allow(clippy::cast_precision_loss)]
            match c.submit_with_retry(&spec(salt as f64), None, &retry) {
                Ok(Response::Done(_)) => done += 1,
                Ok(other) => panic!("unexpected terminal response: {other:?}"),
                // Transport failure (torn frame, disconnect): reconnect.
                Err(_) => conn = None,
            }
        }
        client_faults.net_faults_fired()
    });

    // Let a few workloads land, then open a combined fault window:
    // the disk rejects fsyncs while the network tears some frames.
    std::thread::sleep(Duration::from_millis(150));
    faults.arm_io_fault(IoFault::FsyncFail, usize::MAX);
    faults.arm_net_fault(NetFault::MidFrameDisconnect, 2);
    std::thread::sleep(Duration::from_millis(250));
    faults.clear_io_faults();

    // The client finishes all its workloads despite the outage — the
    // serve layer's background repair loop heals the durability layer
    // even between submissions.
    let _net_fired = client.join().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.durability_health, 0, "healed before the drain");
    assert!(stats.served >= 12);
    assert_fsck_clean(&dir);
}
