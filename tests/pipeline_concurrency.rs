//! The staged pipeline under contention (DESIGN.md §9): execution holds
//! no Experiment Graph lock, so a slow workload cannot block another
//! session's planning or publication, and concurrent evictions degrade
//! plans to recomputation instead of failing them.

use co_core::{OptimizerServer, Script, ServerConfig};
use co_dataframe::ops::{MapFn, Predicate};
use co_graph::{FaultInjector, WorkloadDag};
use co_ml::linear::LogisticParams;
use co_workloads::data::{creditg, CreditG};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared prefix (map over `a0`), distinct training hyperparameters.
fn map_train(data: &CreditG, lr: f64) -> WorkloadDag {
    let mut s = Script::new();
    let train = s.load("creditg_train", data.train.clone());
    let m = s.map(train, "a0", MapFn::Abs, "a0_abs").unwrap();
    let model = s
        .train_logistic(
            m,
            "class",
            LogisticParams {
                lr,
                ..Default::default()
            },
        )
        .unwrap();
    s.output(model).unwrap();
    s.into_dag()
}

/// A workload whose only non-training op is `filter` — the op the
/// non-blocking test injects latency into.
fn filter_train(data: &CreditG) -> WorkloadDag {
    let mut s = Script::new();
    let train = s.load("creditg_train", data.train.clone());
    let f = s.filter(train, Predicate::gt_f("a1", -1000.0)).unwrap();
    let model = s
        .train_logistic(f, "class", LogisticParams::default())
        .unwrap();
    s.output(model).unwrap();
    s.into_dag()
}

/// N submitters race overlapping-but-distinct workloads while an evictor
/// thread continuously drops artifact contents. Every run must succeed
/// (planned loads that miss degrade to recomputation), and the lifetime
/// stats must equal the sum of the per-run reports.
#[test]
fn contended_submissions_with_evictions_all_succeed() {
    let data = creditg(200, 0);
    let server = Arc::new(OptimizerServer::new(ServerConfig::collaborative(u64::MAX)));
    let stop = AtomicBool::new(false);
    let reports = parking_lot::Mutex::new(Vec::new());

    crossbeam::thread::scope(|scope| {
        let evictor = {
            let server = Arc::clone(&server);
            let stop = &stop;
            scope.spawn(move |_| {
                while !stop.load(Ordering::Relaxed) {
                    let ids = server.eg().storage().materialized_ids();
                    for id in ids {
                        server.evict_artifact(id);
                    }
                    std::thread::yield_now();
                }
            })
        };
        let submitters: Vec<_> = (0..4)
            .map(|t| {
                let server = Arc::clone(&server);
                let data = data.clone();
                let reports = &reports;
                scope.spawn(move |_| {
                    for r in 0..3 {
                        let lr = 0.05 + 0.05 * f64::from(t * 3 + r);
                        let (_, report) = server
                            .run_workload(map_train(&data, lr))
                            .expect("evictions must degrade, not fail");
                        reports.lock().push(report);
                    }
                })
            })
            .collect();
        for h in submitters {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        evictor.join().unwrap();
    })
    .unwrap();

    let reports = reports.into_inner();
    let stats = server.stats();
    assert_eq!(reports.len(), 12);
    assert_eq!(stats.workloads, 12);
    assert_eq!(stats.failed_workloads, 0);
    assert_eq!(
        stats.ops_executed,
        reports.iter().map(|r| r.ops_executed).sum::<usize>()
    );
    assert_eq!(
        stats.artifacts_loaded,
        reports.iter().map(|r| r.artifacts_loaded).sum::<usize>()
    );
    assert_eq!(
        stats.warmstarts,
        reports.iter().map(|r| r.warmstarts).sum::<usize>()
    );
    let run_sum: f64 = reports
        .iter()
        .map(co_core::ExecutionReport::run_seconds)
        .sum();
    assert!((stats.run_seconds - run_sum).abs() < 1e-9);
    // Every distinct model landed in the shared graph despite evictions.
    let eg = server.eg();
    for t in 0..4u32 {
        for r in 0..3u32 {
            let lr = 0.05 + 0.05 * f64::from(t * 3 + r);
            let dag = map_train(&data, lr);
            for node in dag.nodes() {
                assert!(eg.contains(node.artifact), "lr={lr} artifact missing");
            }
        }
    }
}

/// The acceptance demonstration that no EG lock is held during
/// `Operation::run`: a workload stuck in an injected 800 ms `filter`
/// latency must not block a concurrent workload's plan, execution, or
/// (write-locked) update+materialize phase. Before the staged pipeline,
/// the slow run's read lock made the fast run's publication wait out the
/// whole latency.
#[test]
fn slow_execution_does_not_block_concurrent_publication() {
    let data = creditg(200, 0);
    let server = Arc::new(OptimizerServer::new(ServerConfig::collaborative(u64::MAX)));
    let faults = Arc::new(FaultInjector::new());
    faults.inject_latency("filter", Duration::from_millis(800));
    server.set_fault_injector(faults);

    crossbeam::thread::scope(|scope| {
        let slow = {
            let server = Arc::clone(&server);
            let data = data.clone();
            scope.spawn(move |_| {
                let (_, report) = server.run_workload(filter_train(&data)).unwrap();
                report
            })
        };
        // Give the slow workload time to pass planning and enter the
        // latency-injected filter execution.
        std::thread::sleep(Duration::from_millis(150));

        let start = Instant::now();
        let (_, fast) = server.run_workload(map_train(&data, 0.3)).unwrap();
        let elapsed = start.elapsed();
        assert!(fast.ops_executed > 0);
        assert!(
            elapsed < Duration::from_millis(400),
            "fast workload took {elapsed:?}; it must not wait out the slow \
             workload's injected latency"
        );

        let slow_report = slow.join().unwrap();
        assert!(slow_report.ops_executed > 0);
    })
    .unwrap();

    // Both publications landed.
    assert_eq!(server.stats().workloads, 2);
}
