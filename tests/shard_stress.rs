//! Ordered-lock stress over the sharded Experiment Graph (DESIGN.md
//! §14): many concurrent publishers whose workloads span pseudo-random
//! shard subsets must never deadlock — every publish acquires its
//! touched shards' write locks in ascending index order, so circular
//! waits are impossible by construction — and after a crash (injected
//! at any journal-side point, including between two shards' appends of
//! one publish) a reopened server holds exactly the committed prefix.

use co_core::{DurabilityConfig, OptimizerServer, ServerConfig};
use co_dataframe::Scalar;
use co_graph::{shard_of, ArtifactId, WorkloadDag};
use co_graph::{CrashPoint, FaultInjector, NodeKind, Operation, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

struct Step(String);
impl Operation for Step {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        Ok(Value::Aggregate(Scalar::Float(1.0)))
    }
}

/// Deterministic xorshift, so every run stresses the same (varied)
/// shard subsets.
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A chain workload rooted at one of three shared sources, with 2–4 ops
/// named from `seed`: artifact ids (op hashes) land on pseudo-random
/// shards, and the shared sources make distinct workloads collide on
/// the sources' shards — the contended case the ordered-lock protocol
/// exists for.
fn random_workload(seed: u64) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let src = dag.add_source(
        ["alpha", "beta", "gamma"][(seed % 3) as usize],
        Value::Aggregate(Scalar::Float(0.0)),
    );
    let mut prev = src;
    let n_ops = 2 + (xorshift(seed) % 3) as usize;
    for i in 0..n_ops {
        let tag = xorshift(seed.wrapping_add(i as u64 * 7919));
        prev = dag
            .add_op(Arc::new(Step(format!("op_{tag:x}"))), &[prev])
            .unwrap();
    }
    dag.mark_terminal(prev).unwrap();
    dag
}

/// id → (frequency, mat flag) across every shard.
fn fingerprint(server: &OptimizerServer) -> BTreeMap<u64, (u64, bool)> {
    let guards = server.shards().read_all();
    guards
        .iter()
        .flat_map(|eg| {
            eg.vertices()
                .map(|v| (v.id.0, (v.frequency, eg.was_materialized(v.id))))
        })
        .collect()
}

fn data_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_sharded(shards: usize, dir: &PathBuf) -> OptimizerServer {
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.shards = shards;
    OptimizerServer::open(config, DurabilityConfig::new(dir))
        .unwrap()
        .0
}

fn assert_sharded_fsck_clean(dir: &std::path::Path, shards: usize) {
    let report = co_graph::fsck::check_sharded_data_dir(dir, shards, true).unwrap();
    assert!(report.is_clean(), "{report}");
}

/// 8 publishers × 6 pseudo-random cross-shard workloads each, at both a
/// coarse (2) and a fine (8) partition. Completion IS the deadlock
/// assertion; the reopen asserts the committed prefix (here: all of it,
/// since nothing crashed) survives byte-exactly.
#[test]
fn concurrent_random_subset_publishes_never_deadlock() {
    for shards in [2, 8] {
        let dir = data_dir(&format!("stress_{shards}"));
        let server = Arc::new(open_sharded(shards, &dir));
        crossbeam::thread::scope(|scope| {
            for t in 0..8u64 {
                let server = Arc::clone(&server);
                scope.spawn(move |_| {
                    for i in 0..6u64 {
                        let seed = t * 1000 + i;
                        server.run_workload(random_workload(seed)).unwrap();
                        // Half the publishers immediately resubmit: the
                        // frequency-bump path touches the same shard
                        // subset again under contention.
                        if t % 2 == 0 {
                            server.run_workload(random_workload(seed)).unwrap();
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(server.stats().workloads, 8 * 6 + 4 * 6);
        let committed = fingerprint(&server);

        // Every artifact must live on the shard its id hashes to.
        {
            let guards = server.shards().read_all();
            for (k, eg) in guards.iter().enumerate() {
                for v in eg.vertices() {
                    assert_eq!(shard_of(v.id, shards), k);
                }
            }
        }

        let server = Arc::try_unwrap(server).ok().expect("threads joined");
        drop(server);
        let reopened = open_sharded(shards, &dir);
        assert_eq!(fingerprint(&reopened), committed, "shards = {shards}");
        assert_sharded_fsck_clean(&dir, shards);
    }
}

/// Crash points under pre-existing concurrent state: after a stress
/// phase, a crash anywhere in the journaling of one more cross-shard
/// publish rolls exactly that publish back — everything the concurrent
/// phase committed survives.
#[test]
fn crash_after_concurrent_stress_recovers_committed_prefix() {
    let shards = 8;
    for point in [
        CrashPoint::JournalMidAppend,
        CrashPoint::ShardGapAppend,
        CrashPoint::CommitPreAppend,
    ] {
        let dir = data_dir(&format!("stress_crash_{}", point.name()));
        let server = Arc::new(open_sharded(shards, &dir));
        crossbeam::thread::scope(|scope| {
            for t in 0..4u64 {
                let server = Arc::clone(&server);
                scope.spawn(move |_| {
                    for i in 0..4u64 {
                        server.run_workload(random_workload(t * 100 + i)).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let committed = fingerprint(&server);

        // One more publish, guaranteed to span ≥ 2 shards so the
        // between-appends point is reachable, with the crash armed.
        let victim = (10_000..)
            .map(random_workload)
            .find(|dag| {
                let set: BTreeSet<usize> = dag
                    .nodes()
                    .iter()
                    .map(|n| shard_of(n.artifact, shards))
                    .collect();
                set.len() >= 2
            })
            .unwrap();
        let faults = Arc::new(FaultInjector::new());
        server.set_fault_injector(Arc::clone(&faults));
        faults.arm_crash(point);
        let err = server.run_workload(victim).unwrap_err();
        assert!(err.to_string().contains(point.name()), "{point:?}: {err}");
        assert!(server.is_wedged());

        let server = Arc::try_unwrap(server).ok().expect("threads joined");
        drop(server);
        let reopened = open_sharded(shards, &dir);
        assert_eq!(fingerprint(&reopened), committed, "{point:?}");
        assert_sharded_fsck_clean(&dir, shards);

        // Eviction shares the commit path; prove it still round-trips
        // after the recovery.
        let evict: Vec<ArtifactId> = {
            let guards = reopened.shards().read_all();
            guards
                .iter()
                .flat_map(|g| g.storage().materialized_ids())
                .take(2)
                .collect()
        };
        for id in &evict {
            reopened.evict_artifact(*id);
        }
        let after = fingerprint(&reopened);
        for id in &evict {
            assert!(!after[&id.0].1, "{id:?} still materialized");
        }
        drop(reopened);
        let third = open_sharded(shards, &dir);
        assert_eq!(fingerprint(&third), after, "{point:?}: eviction durable");
    }
}

/// Threshold compaction under concurrency: with a 1-byte journal
/// threshold every publish triggers a full-shard compaction right after
/// releasing its publish locks. Ordered acquisition (publish subsets
/// ascending, compaction all-ascending) keeps this deadlock-free, and
/// the final directory is snapshots-only.
#[test]
fn threshold_compaction_under_concurrency_is_deadlock_free() {
    let shards = 8;
    let dir = data_dir("stress_compact");
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.shards = shards;
    let mut durability = DurabilityConfig::new(&dir);
    durability.compact_journal_bytes = 1;
    let (server, _) = OptimizerServer::open(config, durability).unwrap();
    let server = Arc::new(server);
    crossbeam::thread::scope(|scope| {
        for t in 0..4u64 {
            let server = Arc::clone(&server);
            scope.spawn(move |_| {
                for i in 0..3u64 {
                    server.run_workload(random_workload(t * 31 + i)).unwrap();
                }
            });
        }
    })
    .unwrap();
    assert!(server.stats().snapshots_compacted >= 1);
    let committed = fingerprint(&server);
    let server = Arc::try_unwrap(server).ok().expect("threads joined");
    drop(server);

    let mut config2 = ServerConfig::collaborative(u64::MAX);
    config2.shards = shards;
    let (reopened, recovery) = OptimizerServer::open(config2, DurabilityConfig::new(&dir)).unwrap();
    assert!(recovery.snapshot_loaded);
    assert_eq!(fingerprint(&reopened), committed);
    assert_sharded_fsck_clean(&dir, shards);
}
