//! The optimizer must never change *what* a workload computes — only how.
//! Every system configuration (reuse planner x materializer) must produce
//! bit-identical terminal values for the same script.

use co_core::server::{MaterializerKind, ReuseKind};
use co_core::{CostModel, OptimizerServer, ServerConfig};
use co_graph::{NodeId, Value, WorkloadDag};
use co_workloads::data::{creditg, home_credit, HomeCreditScale};
use co_workloads::kaggle;
use co_workloads::openml;

fn terminal_values(dag: &WorkloadDag) -> Vec<(NodeId, Value)> {
    let mut out: Vec<(NodeId, Value)> = dag
        .terminals()
        .into_iter()
        .map(|t| {
            (
                t,
                dag.node(t)
                    .unwrap()
                    .computed
                    .clone()
                    .expect("terminal computed"),
            )
        })
        .collect();
    out.sort_by_key(|(t, _)| t.0);
    out
}

fn configs() -> Vec<(MaterializerKind, ReuseKind)> {
    vec![
        (MaterializerKind::None, ReuseKind::None),
        (MaterializerKind::StorageAware, ReuseKind::Linear),
        (MaterializerKind::Greedy, ReuseKind::Linear),
        (MaterializerKind::Helix, ReuseKind::Helix),
        (MaterializerKind::All, ReuseKind::AllMaterialized),
    ]
}

/// NaN-aware dataframe equality (float `NaN` = missing compares equal to
/// itself, as the engine intends).
fn frames_equal(a: &co_dataframe::DataFrame, b: &co_dataframe::DataFrame) -> bool {
    use co_dataframe::ColumnData;
    if a.n_rows() != b.n_rows() || a.n_cols() != b.n_cols() {
        return false;
    }
    a.columns().iter().zip(b.columns()).all(|(ca, cb)| {
        ca.name() == cb.name()
            && ca.id() == cb.id()
            && match (ca.data().as_ref(), cb.data().as_ref()) {
                (ColumnData::Float(x), ColumnData::Float(y)) => x
                    .iter()
                    .zip(y)
                    .all(|(u, v)| u == v || (u.is_nan() && v.is_nan())),
                (x, y) => x == y,
            }
    })
}

fn assert_equal_outputs(runs: &[(String, Vec<(NodeId, Value)>)]) {
    let (ref_name, reference) = &runs[0];
    for (name, values) in &runs[1..] {
        assert_eq!(
            values.len(),
            reference.len(),
            "{name} vs {ref_name}: terminal count"
        );
        for ((t_a, a), (t_b, b)) in values.iter().zip(reference) {
            assert_eq!(t_a, t_b);
            match (a, b) {
                (Value::Dataset(da), Value::Dataset(db)) => {
                    assert_eq!(da.column_ids(), db.column_ids(), "{name}: lineage differs");
                    assert!(
                        frames_equal(da, db),
                        "{name}: dataset content differs from {ref_name}"
                    );
                }
                (Value::Aggregate(sa), Value::Aggregate(sb)) => {
                    let (x, y) = (sa.as_f64().unwrap(), sb.as_f64().unwrap());
                    assert!(
                        (x - y).abs() < 1e-12 || (x.is_nan() && y.is_nan()),
                        "{name}: aggregate {x} != {y}"
                    );
                }
                (Value::Model(ma), Value::Model(mb)) => {
                    assert_eq!(ma.model, mb.model, "{name}: model differs");
                }
                _ => panic!("{name}: terminal kind mismatch"),
            }
        }
    }
}

#[test]
fn kaggle_w1_is_invariant_across_systems() {
    let data = home_credit(&HomeCreditScale::tiny());
    let mut runs = Vec::new();
    for (materializer, reuse) in configs() {
        let srv = OptimizerServer::new(ServerConfig {
            budget: u64::MAX,
            alpha: 0.5,
            materializer,
            reuse,
            cost: CostModel::memory(),
            warmstart: false,
            retry: co_core::RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
            shards: 1,
        });
        // Warm the graph with related workloads first so reuse genuinely
        // kicks in before the workload under test.
        srv.run_workload(kaggle::w1(&data).unwrap()).unwrap();
        srv.run_workload(kaggle::w4(&data).unwrap()).unwrap();
        let (executed, _) = srv.run_workload(kaggle::w1(&data).unwrap()).unwrap();
        runs.push((
            format!("{materializer:?}/{reuse:?}"),
            terminal_values(&executed),
        ));
    }
    assert_equal_outputs(&runs);
}

#[test]
fn kaggle_w8_is_invariant_across_systems() {
    // W8 joins two other workloads' features: the hardest reuse surface.
    let data = home_credit(&HomeCreditScale::tiny());
    let mut runs = Vec::new();
    for (materializer, reuse) in configs() {
        let srv = OptimizerServer::new(ServerConfig {
            budget: u64::MAX,
            alpha: 0.5,
            materializer,
            reuse,
            cost: CostModel::memory(),
            warmstart: false,
            retry: co_core::RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
            shards: 1,
        });
        srv.run_workload(kaggle::w1(&data).unwrap()).unwrap();
        srv.run_workload(kaggle::w2(&data).unwrap()).unwrap();
        let (executed, _) = srv.run_workload(kaggle::w8(&data).unwrap()).unwrap();
        runs.push((
            format!("{materializer:?}/{reuse:?}"),
            terminal_values(&executed),
        ));
    }
    assert_equal_outputs(&runs);
}

#[test]
fn openml_pipelines_are_invariant_across_systems() {
    let data = creditg(300, 0);
    for run_idx in [0u64, 3, 9] {
        let mut runs = Vec::new();
        for (materializer, reuse) in configs() {
            let srv = OptimizerServer::new(ServerConfig {
                budget: u64::MAX,
                alpha: 0.5,
                materializer,
                reuse,
                cost: CostModel::memory(),
                warmstart: false,
                retry: co_core::RetryPolicy::default(),
                quarantine_after: Some(3),
                df_threads: None,
                shards: 1,
            });
            for warm in 0..run_idx.min(4) {
                srv.run_workload(openml::pipeline(&data, warm, 7).unwrap())
                    .unwrap();
            }
            let (executed, _) = srv
                .run_workload(openml::pipeline(&data, run_idx, 7).unwrap())
                .unwrap();
            runs.push((
                format!("{materializer:?}/{reuse:?}"),
                terminal_values(&executed),
            ));
        }
        assert_equal_outputs(&runs);
    }
}

#[test]
fn partial_budgets_do_not_change_results() {
    // Tight budgets force mixed load/recompute plans; outputs must still
    // be identical to the no-reuse reference.
    let data = home_credit(&HomeCreditScale::tiny());
    let reference = {
        let srv = OptimizerServer::new(ServerConfig::baseline());
        let (executed, _) = srv.run_workload(kaggle::w3(&data).unwrap()).unwrap();
        terminal_values(&executed)
    };
    for budget_shift in [14u32, 17, 20, 23] {
        let srv = OptimizerServer::new(ServerConfig::collaborative(1 << budget_shift));
        srv.run_workload(kaggle::w2(&data).unwrap()).unwrap();
        let (executed, _) = srv.run_workload(kaggle::w3(&data).unwrap()).unwrap();
        let runs = vec![
            ("baseline".to_owned(), reference.clone()),
            (
                format!("budget 2^{budget_shift}"),
                terminal_values(&executed),
            ),
        ];
        assert_equal_outputs(&runs);
    }
}
