//! Warmstarting through the full system (paper §6.2 + Figure 10).

use co_core::ops::EvalMetric;
use co_core::{OptimizerServer, Script, ServerConfig};
use co_graph::WorkloadDag;
use co_ml::linear::LogisticParams;
use co_ml::tree::{GbtParams, TreeParams};
use co_workloads::data::{creditg, CreditG};
use co_workloads::runner::terminal_eval_score;

fn logistic_workload(data: &CreditG, lr: f64, max_iter: usize) -> WorkloadDag {
    let mut s = Script::new();
    let train = s.load("creditg_train", data.train.clone());
    let test = s.load("creditg_test", data.test.clone());
    let model = s
        .train_logistic(
            train,
            "class",
            LogisticParams {
                lr,
                max_iter,
                l2: 1e-4,
                tol: 1e-7,
            },
        )
        .unwrap();
    let score = s
        .evaluate(model, test, "class", EvalMetric::RocAuc)
        .unwrap();
    s.output(score).unwrap();
    s.into_dag()
}

fn gbt_workload(data: &CreditG, n_estimators: usize) -> WorkloadDag {
    let mut s = Script::new();
    let train = s.load("creditg_train", data.train.clone());
    let test = s.load("creditg_test", data.test.clone());
    let params = GbtParams {
        n_estimators,
        learning_rate: 0.2,
        tree: TreeParams {
            max_depth: 3,
            min_samples_leaf: 5,
            n_thresholds: 8,
        },
    };
    let model = s.train_gbt(train, "class", params).unwrap();
    let score = s
        .evaluate(model, test, "class", EvalMetric::RocAuc)
        .unwrap();
    s.output(score).unwrap();
    s.into_dag()
}

fn warm_server() -> OptimizerServer {
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.warmstart = true;
    OptimizerServer::new(config)
}

#[test]
fn warmstart_only_fires_with_a_candidate() {
    let data = creditg(300, 0);
    let server = warm_server();
    let (_, first) = server
        .run_workload(logistic_workload(&data, 0.3, 100))
        .unwrap();
    assert_eq!(first.warmstarts, 0, "no candidates on a cold graph");
    let (_, second) = server
        .run_workload(logistic_workload(&data, 0.1, 100))
        .unwrap();
    assert_eq!(
        second.warmstarts, 1,
        "prior model on the same artifact is a candidate"
    );
    // Exact resubmission: reuse, not warmstart.
    let (_, third) = server
        .run_workload(logistic_workload(&data, 0.3, 100))
        .unwrap();
    assert_eq!(third.warmstarts, 0);
    assert!(third.artifacts_loaded >= 1);
}

#[test]
fn warmstart_is_off_by_default() {
    let data = creditg(300, 0);
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    server
        .run_workload(logistic_workload(&data, 0.3, 100))
        .unwrap();
    let (_, second) = server
        .run_workload(logistic_workload(&data, 0.1, 100))
        .unwrap();
    assert_eq!(
        second.warmstarts, 0,
        "paper: only warmstart on explicit request"
    );
}

#[test]
fn warmstarted_capped_training_scores_at_least_as_well() {
    let data = creditg(1000, 0);
    // Cold: a tightly capped run with a slow learning rate.
    let cold_server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let (cold_dag, _) = cold_server
        .run_workload(logistic_workload(&data, 0.01, 25))
        .unwrap();
    let cold_score = terminal_eval_score(&cold_dag).unwrap();

    // Warm: same capped run, but the graph already has a well-trained
    // model on the same artifact.
    let warm = warm_server();
    warm.run_workload(logistic_workload(&data, 0.5, 400))
        .unwrap();
    let (warm_dag, report) = warm
        .run_workload(logistic_workload(&data, 0.01, 25))
        .unwrap();
    assert_eq!(report.warmstarts, 1);
    let warm_score = terminal_eval_score(&warm_dag).unwrap();
    // The warm run ends nearer the *training* optimum; on held-out AUC
    // that is at least as good up to generalization noise.
    assert!(
        warm_score >= cold_score - 0.005,
        "warmstarted {warm_score} well below cold {cold_score}"
    );
}

#[test]
fn gbt_warmstart_extends_the_prior_ensemble() {
    let data = creditg(500, 0);
    let warm = warm_server();
    warm.run_workload(gbt_workload(&data, 6)).unwrap();
    let (warm_dag, report) = warm.run_workload(gbt_workload(&data, 12)).unwrap();
    assert_eq!(report.warmstarts, 1);

    // Deterministic boosting: warm continuation equals the cold 12-tree
    // model.
    let cold = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let (cold_dag, _) = cold.run_workload(gbt_workload(&data, 12)).unwrap();
    let warm_score = terminal_eval_score(&warm_dag).unwrap();
    let cold_score = terminal_eval_score(&cold_dag).unwrap();
    assert!((warm_score - cold_score).abs() < 1e-12);
}

#[test]
fn warmstart_prefers_the_highest_quality_candidate() {
    let data = creditg(1000, 0);
    let server = warm_server();
    // Two candidates on the same artifact: a deliberately bad one (tiny
    // cap) and a good one.
    server
        .run_workload(logistic_workload(&data, 0.001, 1))
        .unwrap();
    server
        .run_workload(logistic_workload(&data, 0.5, 400))
        .unwrap();
    // A zero-progress run (max_iter minimal, negligible lr) inherits its
    // initialiser's parameters almost unchanged: its score reveals which
    // candidate was chosen.
    let (dag, report) = server
        .run_workload(logistic_workload(&data, 1e-9, 1))
        .unwrap();
    assert_eq!(report.warmstarts, 1);
    let score = terminal_eval_score(&dag).unwrap();
    let (good_dag, _) = OptimizerServer::new(ServerConfig::collaborative(u64::MAX))
        .run_workload(logistic_workload(&data, 0.5, 400))
        .unwrap();
    let good_score = terminal_eval_score(&good_dag).unwrap();
    assert!(
        (score - good_score).abs() < 0.02,
        "chosen candidate scores {score}, best candidate {good_score}"
    );
}
