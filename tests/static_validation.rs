//! Static validation + egfsck integration suite.
//!
//! Property tests: generated well-formed workloads always pass the
//! validator; each class of single-mutation corruption — in a workload
//! DAG (dropped column, wrong arity, bad params, …) or in the Experiment
//! Graph (rewired edge, stray content, attribute skew) — is caught by
//! [`co_core::validate`] or `co_graph::fsck` respectively, while graphs
//! produced by real executed workloads stay fsck-clean.

use co_core::ops::SelectOp;
use co_core::{validate, DurabilityConfig, OptimizerServer, Script, ServerConfig};
use co_dataframe::ops::{AggFn, Predicate};
use co_dataframe::{Column, ColumnData, DataFrame};
use co_graph::fsck::{self, FsckCode};
use co_graph::meta::MetaCode;
use co_graph::{ArtifactId, NodeId, NodeKind, Operation, Value, WorkloadDag};
use co_ml::feature::ScaleKind;
use co_ml::linear::LogisticParams;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn frame() -> DataFrame {
    DataFrame::new(vec![
        Column::source("t", "id", ColumnData::Int(vec![1, 2, 3, 4])),
        Column::source("t", "x", ColumnData::Float(vec![0.5, 1.5, 2.5, 3.5])),
        Column::source(
            "t",
            "c",
            ColumnData::Str(vec!["a".into(), "b".into(), "a".into(), "c".into()]),
        ),
        Column::source("t", "y", ColumnData::Int(vec![0, 1, 0, 1])),
    ])
    .unwrap()
}

/// Apply one schema-preserving op picked by `code`; every choice keeps
/// the four columns `id`/`x`/`c`/`y` with their dtypes, so any sequence
/// is valid by construction.
fn apply_safe_op(s: &mut Script, node: NodeId, code: usize) -> NodeId {
    match code % 6 {
        0 => s
            .filter(
                node,
                Predicate::GtF {
                    col: "x".into(),
                    value: 0.0,
                },
            )
            .unwrap(),
        1 => s.dropna(node, &["x"]).unwrap(),
        2 => s.sample(node, 3, code as u64).unwrap(),
        3 => s.sort(node, "id", true).unwrap(),
        4 => s.scale(node, ScaleKind::Standard, &["x"]).unwrap(),
        _ => s.select(node, &["id", "x", "c", "y"]).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed workloads — any chain of schema-preserving ops capped
    /// by an aggregate — always pass validation, with a meta per node.
    #[test]
    fn generated_valid_workloads_pass(codes in proptest::collection::vec(0usize..6, 0..12)) {
        let mut s = Script::new();
        let mut node = s.load("train", frame());
        for code in codes {
            node = apply_safe_op(&mut s, node, code);
        }
        let t = s.agg(node, "x", AggFn::Mean).unwrap();
        s.output(t).unwrap();
        let report = validate(s.dag());
        prop_assert!(report.is_valid(), "spurious rejection: {:?}", report.errors);
        prop_assert_eq!(report.metas.len(), s.dag().n_nodes());
    }

    /// Dropping any single column from the source is caught as soon as a
    /// downstream op needs it.
    #[test]
    fn dropped_column_is_always_caught(victim in 0usize..3, codes in proptest::collection::vec(0usize..6, 0..6)) {
        let victim = ["id", "x", "y"][victim];
        let mut s = Script::new();
        let d = s.load("train", frame());
        let keep: Vec<&str> = ["id", "x", "c", "y"]
            .into_iter()
            .filter(|c| *c != victim)
            .collect();
        let mut node = s.drop_columns(d, &[victim]).unwrap();
        for code in codes {
            // Schema-preserving ops on the remaining columns keep the
            // corruption latent...
            node = match code % 3 {
                0 => s.dropna(node, &[]).unwrap(),
                1 => s.sample(node, 3, code as u64).unwrap(),
                _ => s.select(node, &keep).unwrap(),
            };
        }
        // ...until an op needs every original column again.
        let sel = s.select(node, &["id", "x", "y"]).unwrap();
        s.output(sel).unwrap();
        let report = validate(s.dag());
        prop_assert!(!report.is_valid());
        prop_assert!(report.errors.iter().any(|e| e.code == MetaCode::MissingColumn
            && e.message.contains(victim)));
    }
}

// ---------------------------------------------------------------------
// One test per malformed-DAG class, each asserting the diagnostic class
// and a non-empty node path.

fn reject(s: &Script, code: MetaCode) {
    let report = validate(s.dag());
    let hit = report.errors.iter().find(|e| e.code == code);
    let Some(diag) = hit else {
        panic!("expected {code:?}, got: {:?}", report.errors);
    };
    assert!(!diag.path.is_empty(), "{diag}");
}

#[test]
fn rejects_missing_column() {
    let mut s = Script::new();
    let d = s.load("train", frame());
    let sel = s.select(d, &["id", "nope"]).unwrap();
    s.output(sel).unwrap();
    reject(&s, MetaCode::MissingColumn);
}

#[test]
fn rejects_duplicate_column() {
    let mut s = Script::new();
    let d = s.load("train", frame());
    let r = s.rename(d, "x", "y").unwrap(); // "y" already exists
    s.output(r).unwrap();
    reject(&s, MetaCode::DuplicateColumn);
}

#[test]
fn rejects_type_mismatch() {
    let mut s = Script::new();
    let d = s.load("train", frame());
    let a = s.agg(d, "c", AggFn::Mean).unwrap(); // mean of a string column
    s.output(a).unwrap();
    reject(&s, MetaCode::TypeMismatch);
}

#[test]
fn rejects_join_key_mismatch() {
    let mut s = Script::new();
    let a = s.load("a", frame());
    let b = s.load("b", frame());
    let j = s.join(a, b, "x").unwrap(); // float join key
    s.output(j).unwrap();
    reject(&s, MetaCode::JoinKeyMismatch);
}

#[test]
fn rejects_arity_mismatch() {
    let mut dag = WorkloadDag::new();
    let d = dag.add_source("train", Value::dataset(frame()));
    // A unary op wired as a supernode with two inputs.
    let sel = dag
        .add_op(
            Arc::new(SelectOp {
                columns: vec!["id".into()],
            }),
            &[d, d],
        )
        .unwrap();
    dag.mark_terminal(sel).unwrap();
    let report = validate(&dag);
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.code == MetaCode::ArityMismatch),
        "{:?}",
        report.errors
    );
}

#[test]
fn rejects_fit_predict_mismatch() {
    let mut s = Script::new();
    let d = s.load("train", frame());
    let feats = s.select(d, &["id", "x", "y"]).unwrap();
    let model = s
        .train_logistic(feats, "y", LogisticParams::default())
        .unwrap();
    // Forgot to exclude the label: the feature set at predict time is
    // [id, x, y], the model was fitted on [id, x].
    let p = s.predict(model, feats, "score", &[]).unwrap();
    s.output(p).unwrap();
    reject(&s, MetaCode::FitPredictMismatch);
}

#[test]
fn rejects_empty_selection() {
    let mut s = Script::new();
    let d = s.load("train", frame());
    let no_feats = s.select(d, &["c", "y"]).unwrap();
    // No numeric feature column besides the label.
    let m = s
        .train_logistic(no_feats, "y", LogisticParams::default())
        .unwrap();
    s.output(m).unwrap();
    reject(&s, MetaCode::EmptySelection);
}

#[test]
fn rejects_bad_params() {
    let mut s = Script::new();
    let d = s.load("train", frame());
    let oh = s.one_hot(d, "c", 0).unwrap(); // zero categories
    s.output(oh).unwrap();
    reject(&s, MetaCode::BadParams);
}

#[test]
fn rejects_op_hash_collision() {
    struct Colliding(&'static str);
    impl Operation for Colliding {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Dataset
        }
        fn run(&self, inputs: &[&Value]) -> co_graph::Result<Value> {
            Ok(inputs[0].clone())
        }
        fn op_hash(&self) -> u64 {
            0xc0111de // both ops claim the same artifact identity
        }
    }
    let mut dag = WorkloadDag::new();
    let d = dag.add_source("train", Value::dataset(frame()));
    let a = dag.add_op(Arc::new(Colliding("alpha")), &[d]).unwrap();
    let b = dag.add_op(Arc::new(Colliding("beta")), &[a]).unwrap();
    dag.mark_terminal(b).unwrap();
    let report = validate(&dag);
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.code == MetaCode::HashCollision),
        "{:?}",
        report.errors
    );
}

#[test]
fn warns_on_dead_subgraphs() {
    let mut s = Script::new();
    let d = s.load("train", frame());
    let _dead = s.select(d, &["id"]).unwrap();
    let live = s.agg(d, "x", AggFn::Mean).unwrap();
    s.output(live).unwrap();
    let report = validate(s.dag());
    assert!(report.is_valid());
    assert!(report
        .warnings
        .iter()
        .any(|w| w.code == MetaCode::DeadSubgraph));
}

// ---------------------------------------------------------------------
// egfsck over graphs produced by real workloads, then single-mutation
// corruptions of them.

/// Train-and-evaluate workload whose execution populates an EG.
fn real_workload() -> WorkloadDag {
    let mut s = Script::new();
    let d = s.load("train", frame());
    let feats = s.select(d, &["id", "x", "y"]).unwrap();
    let model = s
        .train_logistic(feats, "y", LogisticParams::default())
        .unwrap();
    let score = s
        .evaluate(model, feats, "y", co_core::ops::EvalMetric::Accuracy)
        .unwrap();
    s.output(score).unwrap();
    s.into_dag()
}

fn populated_server() -> OptimizerServer {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    server.run_workload(real_workload()).unwrap();
    server
        .run_workload({
            let mut s = Script::new();
            let d = s.load("train", frame());
            let a = s.agg(d, "x", AggFn::Mean).unwrap();
            s.output(a).unwrap();
            s.into_dag()
        })
        .unwrap();
    server
}

#[test]
fn executed_workload_graphs_are_fsck_clean() {
    let server = populated_server();
    let report = fsck::check_graph(&server.eg());
    assert!(report.is_clean(), "{report}");
    assert!(report.vertices >= 5);
}

#[test]
fn fsck_catches_each_seeded_graph_corruption() {
    // Rewired edge: a vertex claiming a topologically later parent.
    {
        let server = populated_server();
        let mut eg = server.eg_mut();
        let (early, late) = (eg.topo_order()[1], *eg.topo_order().last().unwrap());
        eg.vertex_mut(early).unwrap().parents.push(late);
        let report = fsck::check_graph(&eg);
        assert!(report.has(FsckCode::OrderViolation), "{report}");
    }
    // Dangling edge: a parent the graph never defined.
    {
        let server = populated_server();
        let mut eg = server.eg_mut();
        let v = eg.topo_order()[1];
        eg.vertex_mut(v).unwrap().parents.push(ArtifactId(0xdead));
        let report = fsck::check_graph(&eg);
        assert!(report.has(FsckCode::DanglingReference), "{report}");
    }
    // Flipped mat flag: content for an artifact the graph doesn't know,
    // and a restored flag pointing nowhere.
    {
        let server = populated_server();
        let mut eg = server.eg_mut();
        eg.storage_mut()
            .store(ArtifactId(0xbeef), &Value::dataset(frame()));
        eg.mark_restored_materialized(ArtifactId(0xfeed));
        let report = fsck::check_graph(&eg);
        assert!(report.has(FsckCode::StrayContent), "{report}");
        assert!(report.has(FsckCode::StrayRestoredFlag), "{report}");
    }
    // Attribute skew.
    {
        let server = populated_server();
        let mut eg = server.eg_mut();
        let v = eg.topo_order()[0];
        eg.vertex_mut(v).unwrap().frequency = 0;
        let report = fsck::check_graph(&eg);
        assert!(report.has(FsckCode::BadAttribute), "{report}");
    }
}

#[test]
fn fsck_checks_a_durability_directory() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fsck_data_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig::collaborative(u64::MAX);
    let (server, _) = OptimizerServer::open(config, DurabilityConfig::new(&dir)).unwrap();
    server.run_workload(real_workload()).unwrap();
    server.compact().unwrap();
    server.run_workload(real_workload()).unwrap();
    drop(server);

    // Snapshot + journal replay to a clean graph.
    let report = fsck::check_data_dir(&dir, true).unwrap();
    assert!(report.is_clean(), "{report}");
    assert!(report.vertices >= 4);

    // A torn journal tail is reported as a note, not a violation, and
    // the file is left untouched (offline check is read-only).
    let wal = dir.join(fsck::JOURNAL_FILE);
    let len_before = std::fs::metadata(&wal).unwrap().len();
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(b"EGD 99 torn").unwrap();
    drop(f);
    let report = fsck::check_data_dir(&dir, true).unwrap();
    assert!(report.is_clean(), "{report}");
    assert!(report.notes.iter().any(|n| n.contains("torn")), "{report}");
    assert!(std::fs::metadata(&wal).unwrap().len() > len_before);
}
