//! Multi-tenant behavior: the paper's collaborative environment runs
//! many isolated clients against one shared Experiment Graph (§3). These
//! tests drive concurrent sessions through one server.

use co_core::ops::EvalMetric;
use co_core::{OptimizerServer, Script, ServerConfig};
use co_graph::WorkloadDag;
use co_workloads::data::{creditg, CreditG};
use co_workloads::openml;
use std::sync::Arc;

fn simple_workload(data: &CreditG, lr: f64) -> WorkloadDag {
    let mut s = Script::new();
    let train = s.load("creditg_train", data.train.clone());
    let test = s.load("creditg_test", data.test.clone());
    let model = s
        .train_logistic(
            train,
            "class",
            co_ml::linear::LogisticParams {
                lr,
                ..Default::default()
            },
        )
        .unwrap();
    let score = s
        .evaluate(model, test, "class", EvalMetric::RocAuc)
        .unwrap();
    s.output(score).unwrap();
    s.into_dag()
}

#[test]
fn identical_concurrent_submissions_converge() {
    let data = creditg(300, 0);
    let server = Arc::new(OptimizerServer::new(ServerConfig::collaborative(u64::MAX)));
    crossbeam::thread::scope(|scope| {
        for _ in 0..8 {
            let server = Arc::clone(&server);
            let data = data.clone();
            scope.spawn(move |_| {
                let (dag, report) = server.run_workload(simple_workload(&data, 0.3)).unwrap();
                assert!(report.ops_executed + report.artifacts_loaded > 0);
                let score = co_workloads::runner::terminal_eval_score(&dag).unwrap();
                assert!(score > 0.5);
            });
        }
    })
    .unwrap();
    // One artifact set, regardless of racing updaters.
    let dag = simple_workload(&data, 0.3);
    let eg = server.eg();
    for node in dag.nodes() {
        assert!(eg.contains(node.artifact));
        assert!(eg.vertex(node.artifact).unwrap().frequency >= 1);
    }
}

#[test]
fn distinct_concurrent_submissions_all_land_in_the_graph() {
    let data = creditg(300, 0);
    let server = Arc::new(OptimizerServer::new(ServerConfig::collaborative(u64::MAX)));
    let rates = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5];
    crossbeam::thread::scope(|scope| {
        for &lr in &rates {
            let server = Arc::clone(&server);
            let data = data.clone();
            scope.spawn(move |_| {
                server.run_workload(simple_workload(&data, lr)).unwrap();
            });
        }
    })
    .unwrap();
    let eg = server.eg();
    for &lr in &rates {
        let dag = simple_workload(&data, lr);
        for node in dag.nodes() {
            assert!(eg.contains(node.artifact), "lr={lr} artifact missing");
        }
    }
}

#[test]
fn concurrent_pipeline_stream_matches_sequential_results() {
    let data = creditg(300, 0);
    // Sequential reference scores.
    let seq = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let mut expected = Vec::new();
    for i in 0..12u64 {
        let (dag, _) = seq
            .run_workload(openml::pipeline(&data, i, 5).unwrap())
            .unwrap();
        expected.push(co_workloads::runner::terminal_eval_score(&dag).unwrap());
    }
    // The same twelve pipelines raced across four threads.
    let server = Arc::new(OptimizerServer::new(ServerConfig::collaborative(u64::MAX)));
    let results = parking_lot::Mutex::new(vec![0.0f64; 12]);
    crossbeam::thread::scope(|scope| {
        for t in 0..4u64 {
            let server = Arc::clone(&server);
            let data = data.clone();
            let results = &results;
            scope.spawn(move |_| {
                for i in (t..12).step_by(4) {
                    let (dag, _) = server
                        .run_workload(openml::pipeline(&data, i, 5).unwrap())
                        .unwrap();
                    let score = co_workloads::runner::terminal_eval_score(&dag).unwrap();
                    results.lock()[i as usize] = score;
                }
            });
        }
    })
    .unwrap();
    let results = results.into_inner();
    for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
        assert!((got - want).abs() < 1e-12, "pipeline {i}: {got} != {want}");
    }
}
