//! Storage I/O fault injection: graded degradation and self-healing.
//!
//! Where the crash matrix (`crash_recovery.rs`) simulates a *dead
//! process* — the durability layer wedges and a restart recovers the
//! committed prefix — this suite simulates a *live process on a sick
//! disk*: ENOSPC, failed fsyncs (with fsyncgate handle poisoning), and
//! short writes. The server must degrade to read-only (reads, reuse and
//! warm-starts keep serving; publishes are rejected retriably), queue
//! the unpersisted deltas, and heal itself — no restart — once the
//! faults clear. The scrubber half covers cold column files: bit rot is
//! detected by CRC, healed byte-identically from lineage, and only the
//! genuinely unrecoverable is quarantined.

use co_core::{DurabilityConfig, DurabilityHealth, OptimizerServer, ServerConfig};
use co_dataframe::{Column, ColumnData, DataFrame, Scalar};
use co_graph::{
    ArtifactId, FaultInjector, GraphError, IoFault, NodeKind, Operation, Value, WorkloadDag,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Step(String);
impl Operation for Step {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(Duration::from_millis(2));
        Ok(Value::Aggregate(Scalar::Float(1.0)))
    }
}

fn step(name: impl Into<String>) -> Arc<Step> {
    Arc::new(Step(name.into()))
}

/// src → prep_step → <tail> (terminal).
fn workload(tail: &str) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let prep = dag.add_op(step("prep_step"), &[s]).unwrap();
    let t = dag.add_op(step(tail.to_owned()), &[prep]).unwrap();
    dag.mark_terminal(t).unwrap();
    dag
}

/// Everything durability must preserve across a restart.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    vertices: BTreeMap<u64, (u64, u64, u64, u64)>,
    mat: BTreeSet<u64>,
}

fn fingerprint(server: &OptimizerServer) -> Fingerprint {
    let guards = server.shards().read_all();
    let vertices = guards
        .iter()
        .flat_map(|eg| {
            eg.vertices().map(|v| {
                (
                    v.id.0,
                    (
                        v.frequency,
                        v.compute_time.to_bits(),
                        v.size,
                        v.quality.to_bits(),
                    ),
                )
            })
        })
        .collect();
    let mat = guards
        .iter()
        .flat_map(|eg| {
            eg.vertices()
                .filter(|v| eg.was_materialized(v.id))
                .map(|v| v.id.0)
        })
        .collect();
    Fingerprint { vertices, mat }
}

fn data_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(config: ServerConfig, dir: &PathBuf) -> OptimizerServer {
    OptimizerServer::open(config, DurabilityConfig::new(dir))
        .unwrap()
        .0
}

fn assert_fsck_clean(dir: &std::path::Path) {
    let report = match co_graph::fsck::detect_shard_layout(dir) {
        Some(n) => co_graph::fsck::check_sharded_data_dir(dir, n, true).unwrap(),
        None => co_graph::fsck::check_data_dir(dir, true).unwrap(),
    };
    assert!(report.is_clean(), "data dir: {report}");
}

// ---------------------------------------------------------------------
// Graded degradation: ReadOnly instead of wedge, self-heal, wedge cap
// ---------------------------------------------------------------------

#[test]
fn failed_fsync_degrades_to_read_only_then_self_heals_without_restart() {
    let dir = data_dir("io_fsync_heal");
    let config = ServerConfig::collaborative(u64::MAX);
    let server = open(config, &dir);
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));

    server.run_workload(workload("tail_one")).unwrap();
    assert_eq!(server.durability_health(), DurabilityHealth::Healthy);

    // The disk "goes bad": every fsync fails until further notice.
    // fsyncgate semantics: the failed fsync poisons the journal handle,
    // so even later writes through it fail until repair reopens it.
    faults.arm_io_fault(IoFault::FsyncFail, usize::MAX);
    let err = server.run_workload(workload("tail_two")).unwrap_err();
    assert!(
        matches!(err.error, GraphError::ReadOnly { retry_after_ms } if retry_after_ms > 0),
        "{err}"
    );
    assert!(err.error.is_transient(), "read-only must invite a retry");
    assert_eq!(server.durability_health(), DurabilityHealth::ReadOnly);
    assert!(!server.is_wedged(), "a live I/O failure must not wedge");
    assert_eq!(server.backlog_len(), 1, "the failed delta is queued");

    // Still read-only: further publishes are rejected at the gate (and
    // counted), but reads and planning still serve.
    let err = server.run_workload(workload("tail_three")).unwrap_err();
    assert!(err.error.is_transient(), "{err}");
    assert!(server.stats().publishes_rejected_readonly >= 1);
    server.explain(workload("tail_two")).unwrap();

    // The disk "comes back": one explicit repair attempt heals the
    // layer — torn tail truncated, journal reopened on a fresh handle,
    // backlog re-appended — and publishes flow again. No restart.
    faults.clear_io_faults();
    assert!(server.try_repair().unwrap(), "repair should run and heal");
    assert_eq!(server.durability_health(), DurabilityHealth::Healthy);
    assert_eq!(server.backlog_len(), 0);
    assert!(server.stats().repairs_succeeded >= 1);
    server.run_workload(workload("tail_three")).unwrap();

    // Disk now agrees with memory: a reopen sees tail_one (committed
    // before the outage), tail_two (healed from the backlog), and
    // tail_three (published after recovery).
    let live = fingerprint(&server);
    drop(server);
    let reopened = open(config, &dir);
    assert_eq!(fingerprint(&reopened), live);
    assert_fsck_clean(&dir);
}

#[test]
fn enospc_on_journal_append_keeps_exactly_the_committed_prefix_on_reopen() {
    let dir = data_dir("io_enospc_reopen");
    let config = ServerConfig::collaborative(u64::MAX);
    let server = open(config, &dir);
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));

    server.run_workload(workload("tail_one")).unwrap();
    let committed = fingerprint(&server);

    // Disk full, and it never recovers in this process's lifetime: the
    // failed publish is rejected retriably, its delta queued in memory.
    faults.arm_io_fault(IoFault::Enospc, usize::MAX);
    let err = server.run_workload(workload("tail_two")).unwrap_err();
    assert!(err.error.is_transient(), "{err}");
    assert_eq!(server.durability_health(), DurabilityHealth::ReadOnly);

    // "Power cycle" with the fault still present: the reopened
    // directory holds exactly the pre-outage committed prefix — the
    // short write the ENOSPC produced must have been truncated away.
    drop(server);
    let reopened = open(config, &dir);
    assert_eq!(fingerprint(&reopened), committed);
    reopened.run_workload(workload("tail_two")).unwrap();
    assert_fsck_clean(&dir);
}

#[test]
fn short_write_mid_compaction_preserves_the_committed_prefix() {
    let dir = data_dir("io_enospc_compact");
    let config = ServerConfig::collaborative(u64::MAX);
    let server = open(config, &dir);
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));

    server.run_workload(workload("tail_one")).unwrap();
    server.compact().unwrap();
    server.run_workload(workload("tail_two")).unwrap();
    let committed = fingerprint(&server);

    // ENOSPC mid-compaction: the snapshot temp file dies before the
    // rename, so the live snapshot + journal are untouched.
    faults.arm_io_fault(IoFault::Enospc, usize::MAX);
    let err = server.compact().unwrap_err();
    assert!(err.to_string().contains("enospc"), "{err}");

    // A short write mid-compaction behaves the same way.
    faults.clear_io_faults();
    faults.arm_io_fault(IoFault::ShortWrite, 1);
    let err = server.compact().unwrap_err();
    assert!(err.to_string().contains("short-write"), "{err}");

    // Back on a good disk: compaction succeeds and nothing was lost
    // (the interrupted saves only ever touched the temp file).
    faults.clear_io_faults();
    if server.durability_health() == DurabilityHealth::ReadOnly {
        server.try_repair().unwrap();
    }
    server.compact().unwrap();
    assert_eq!(fingerprint(&server), committed);
    drop(server);
    let reopened = open(config, &dir);
    assert_eq!(fingerprint(&reopened), committed);
    assert_fsck_clean(&dir);
}

#[test]
fn repeated_failed_repairs_wedge_permanently() {
    let dir = data_dir("io_wedge_cap");
    let config = ServerConfig::collaborative(u64::MAX);
    let mut durability = DurabilityConfig::new(&dir);
    durability.max_repair_attempts = 3;
    let (server, _) = OptimizerServer::open(config, durability).unwrap();
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));

    server.run_workload(workload("tail_one")).unwrap();
    faults.arm_io_fault(IoFault::FsyncFail, usize::MAX);
    let err = server.run_workload(workload("tail_two")).unwrap_err();
    assert!(err.error.is_transient(), "{err}");

    // Three *counted* failed repairs exhaust the budget.
    for attempt in 1..=3 {
        assert!(server.try_repair().is_err(), "attempt {attempt}");
    }
    assert!(server.is_wedged());
    assert_eq!(server.durability_health(), DurabilityHealth::Wedged);
    let err = server.try_repair().unwrap_err();
    assert!(err.to_string().contains("wedged"), "{err}");

    // Wedged is terminal: even with the disk healthy again, publishes
    // refuse until a restart (which recovers the committed prefix).
    faults.clear_io_faults();
    let err = server.run_workload(workload("tail_three")).unwrap_err();
    assert!(err.to_string().contains("wedged"), "{err}");
    assert_eq!(server.stats().repair_attempts, 3);
    drop(server);
    let reopened = open(config, &dir);
    reopened.run_workload(workload("tail_two")).unwrap();
    assert_fsck_clean(&dir);
}

#[test]
fn publish_storms_during_an_outage_never_wedge() {
    let dir = data_dir("io_storm_no_wedge");
    let config = ServerConfig::collaborative(u64::MAX);
    let mut durability = DurabilityConfig::new(&dir);
    durability.max_repair_attempts = 2;
    let (server, _) = OptimizerServer::open(config, durability).unwrap();
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));

    faults.arm_io_fault(IoFault::FsyncFail, usize::MAX);
    // Far more failed publishes than the wedge cap: every one triggers
    // (at most) an *opportunistic* repair, which must not burn the
    // budget — only deliberate try_repair calls may wedge the layer.
    for i in 0..10 {
        let err = server
            .run_workload(workload(&format!("storm_{i}")))
            .unwrap_err();
        assert!(err.error.is_transient(), "storm publish {i}: {err}");
    }
    assert_eq!(server.durability_health(), DurabilityHealth::ReadOnly);
    assert!(!server.is_wedged());

    faults.clear_io_faults();
    assert!(server.try_repair().unwrap());
    server.run_workload(workload("after_storm")).unwrap();
    let live = fingerprint(&server);
    drop(server);
    let reopened = open(config, &dir);
    assert_eq!(fingerprint(&reopened), live);
    assert_fsck_clean(&dir);
}

// ---------------------------------------------------------------------
// Cold columns: scrub, lineage healing, quarantine
// ---------------------------------------------------------------------

fn make_df(seed: i64) -> DataFrame {
    DataFrame::new(vec![
        Column::source(
            "cold_src",
            "ints",
            ColumnData::Int((0..64).map(|i| i * seed).collect()),
        ),
        Column::source(
            "cold_src",
            "floats",
            ColumnData::Float((0..64).map(|i| f64::from(i) * 0.5).collect()),
        ),
    ])
    .unwrap()
}

/// Source-independent dataset producer with real compute cost, so its
/// output is materialized (and therefore cold-mirrored and usable as a
/// lineage parent held in the memory store).
struct Make;
impl Operation for Make {
    fn name(&self) -> &str {
        "make_data"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(Duration::from_millis(2));
        Ok(Value::dataset(make_df(3)))
    }
}

/// Dataset → dataset: doubles every Int column, deterministically, with
/// real compute cost so the output is worth materializing.
struct Double;
impl Operation for Double {
    fn name(&self) -> &str {
        "double_cols"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(Duration::from_millis(2));
        let df = inputs[0]
            .as_dataset()
            .ok_or_else(|| GraphError::op_failed("double_cols", "expected a dataset input"))?;
        let cols = df
            .columns()
            .iter()
            .map(|c| {
                let data = match c.to_data() {
                    ColumnData::Int(v) => ColumnData::Int(v.into_iter().map(|x| x * 2).collect()),
                    other => other,
                };
                Column::derived(c.name(), c.id().derive(0xD0B1), data)
            })
            .collect();
        Ok(Value::dataset(DataFrame::new(cols).unwrap()))
    }
}

fn cold_server(dir: &PathBuf) -> (OptimizerServer, ArtifactId) {
    let config = ServerConfig::collaborative(u64::MAX);
    let mut durability = DurabilityConfig::new(dir);
    durability.cold_columns = true;
    let (server, _) = OptimizerServer::open(config, durability).unwrap();

    let mut dag = WorkloadDag::new();
    let s = dag.add_source("cold_src", Value::Aggregate(Scalar::Float(0.0)));
    let m = dag.add_op(Arc::new(Make), &[s]).unwrap();
    let d = dag.add_op(Arc::new(Double), &[m]).unwrap();
    dag.mark_terminal(d).unwrap();
    let (dag, _) = server.run_workload(dag).unwrap();
    let id = dag.nodes()[d.0].artifact;
    (server, id)
}

fn cold_path(dir: &std::path::Path, id: ArtifactId) -> PathBuf {
    dir.join("cold").join(format!("cold-{:016x}.col", id.0))
}

#[test]
fn scrub_heals_a_bit_flipped_cold_column_byte_identically() {
    let dir = data_dir("scrub_heal");
    let (server, id) = cold_server(&dir);
    let path = cold_path(&dir, id);
    let original = std::fs::read(&path).expect("cold file written at publish");
    assert!(original.len() > 32);

    // Clean pass first: everything verifies, nothing to heal.
    let outcome = server.scrub();
    assert!(outcome.checked >= 1);
    assert_eq!((outcome.healed, outcome.quarantined), (0, 0));

    // Bit rot strikes a payload byte, and the in-memory copy is gone —
    // the only way back is recomputing the artifact from its lineage
    // (the producing op re-run over its parents).
    let mut rotted = original.clone();
    let mid = rotted.len() / 2;
    rotted[mid] ^= 0x40;
    std::fs::write(&path, &rotted).unwrap();
    server.eg_mut().storage_mut().evict(id);

    let outcome = server.scrub();
    assert!(outcome.checked >= 1);
    assert_eq!(outcome.healed, 1, "the rotted column heals from lineage");
    assert_eq!(outcome.quarantined, 0);
    // The cold encoding is deterministic, so healing is byte-exact.
    assert_eq!(std::fs::read(&path).unwrap(), original);
    let stats = server.stats();
    assert!(stats.scrub_checked >= 2);
    assert_eq!(stats.scrub_healed, 1);
    assert_eq!(stats.scrub_quarantined, 0);
}

#[test]
fn scrub_quarantines_the_unrecoverable_without_deleting() {
    let dir = data_dir("scrub_quarantine");
    let (server, _) = cold_server(&dir);

    // A cold file for an artifact the graph knows nothing about — no
    // memory copy, no lineage — with garbage contents.
    let orphan = dir.join("cold").join("cold-00000000deadbeef.col");
    std::fs::write(&orphan, b"EGCOL 1\n<<<garbage beyond repair>>>").unwrap();

    let outcome = server.scrub();
    assert_eq!(outcome.quarantined, 1);
    assert_eq!(outcome.healed, 0);
    // Set aside for forensics, not deleted.
    assert!(!orphan.exists());
    let quarantined = orphan.with_extension("col.quarantined");
    assert!(
        quarantined.exists(),
        "expected {} to exist",
        quarantined.display()
    );

    // A later scrub no longer sees the quarantined file.
    let outcome = server.scrub();
    assert_eq!(outcome.quarantined, 0);
}

#[test]
fn cold_files_follow_evictions() {
    let dir = data_dir("cold_evict");
    let (server, id) = cold_server(&dir);
    let path = cold_path(&dir, id);
    assert!(path.exists());
    assert!(server.evict_artifact(id) > 0);
    assert!(
        !path.exists(),
        "evicting an artifact must drop its cold file"
    );
}
