//! End-to-end integration: the eight Kaggle workloads through the full
//! client/server pipeline, checking the system-level properties the
//! paper's evaluation relies on.

use co_core::server::{MaterializerKind, ReuseKind};
use co_core::{CostModel, OptimizerServer, ServerConfig};
use co_workloads::data::{home_credit, HomeCredit, HomeCreditScale};
use co_workloads::kaggle;
use co_workloads::runner::run_sequence;

fn data() -> HomeCredit {
    home_credit(&HomeCreditScale::tiny())
}

fn server(materializer: MaterializerKind, reuse: ReuseKind, budget: u64) -> OptimizerServer {
    OptimizerServer::new(ServerConfig {
        budget,
        alpha: 0.5,
        materializer,
        reuse,
        cost: CostModel::memory(),
        warmstart: false,
        retry: co_core::RetryPolicy::default(),
        quarantine_after: Some(3),
        df_threads: None,
        shards: 1,
    })
}

#[test]
fn full_sequence_executes_under_every_system() {
    let data = data();
    for (materializer, reuse) in [
        (MaterializerKind::StorageAware, ReuseKind::Linear),
        (MaterializerKind::Greedy, ReuseKind::Linear),
        (MaterializerKind::Helix, ReuseKind::Helix),
        (MaterializerKind::All, ReuseKind::AllMaterialized),
        (MaterializerKind::None, ReuseKind::None),
    ] {
        let srv = server(materializer, reuse, 1 << 22);
        let reports = run_sequence(&srv, kaggle::all_workloads(&data).unwrap()).unwrap();
        assert_eq!(reports.len(), 8);
        for (i, r) in reports.iter().enumerate() {
            assert!(
                r.ops_executed + r.artifacts_loaded > 0,
                "{materializer:?}/{reuse:?} W{} did nothing",
                i + 1
            );
        }
    }
}

#[test]
fn collaborative_beats_baseline_cumulatively() {
    let data = data();
    let co = server(MaterializerKind::StorageAware, ReuseKind::Linear, u64::MAX);
    let kg = server(MaterializerKind::None, ReuseKind::None, 0);
    let co_reports = run_sequence(&co, kaggle::all_workloads(&data).unwrap()).unwrap();
    let kg_reports = run_sequence(&kg, kaggle::all_workloads(&data).unwrap()).unwrap();
    let co_ops: usize = co_reports.iter().map(|r| r.ops_executed).sum();
    let kg_ops: usize = kg_reports.iter().map(|r| r.ops_executed).sum();
    assert!(
        co_ops < kg_ops / 2,
        "reuse should eliminate most repeated operations: CO {co_ops} vs KG {kg_ops}"
    );
    let loads: usize = co_reports.iter().map(|r| r.artifacts_loaded).sum();
    assert!(
        loads > 5,
        "derived workloads must load shared artifacts, got {loads}"
    );
}

#[test]
fn repeated_sequences_are_almost_free() {
    let data = data();
    let co = server(MaterializerKind::StorageAware, ReuseKind::Linear, u64::MAX);
    let first = run_sequence(&co, kaggle::all_workloads(&data).unwrap()).unwrap();
    // Second submission of every workload: only loads, plus the terminal
    // scalar aggregates (scores/means), which are deliberately never
    // materialized (see `co_core::materialize`) and recompute from loaded
    // parents in microseconds.
    let reports = run_sequence(&co, kaggle::all_workloads(&data).unwrap()).unwrap();
    let first_ops: usize = first.iter().map(|r| r.ops_executed).sum();
    let ops: usize = reports.iter().map(|r| r.ops_executed).sum();
    let loads: usize = reports.iter().map(|r| r.artifacts_loaded).sum();
    assert!(
        ops < first_ops / 5,
        "repeat re-ran too much: {ops} of {first_ops}"
    );
    assert!(loads > 0);

    // Everything that did run produced an Aggregate.
    let mut aggregate_ops = 0;
    let mut other_ops = 0;
    for dag in kaggle::all_workloads(&data).unwrap() {
        let (executed, _) = co.run_workload(dag).unwrap();
        for (i, node) in executed.nodes().iter().enumerate() {
            // A freshly measured compute time marks an executed op.
            if executed.producer(co_graph::NodeId(i)).is_some() && node.compute_time.is_some() {
                if node.kind == co_graph::NodeKind::Aggregate {
                    aggregate_ops += 1;
                } else {
                    other_ops += 1;
                }
            }
        }
    }
    assert_eq!(
        other_ops, 0,
        "only scalar aggregates may recompute on a repeat"
    );
    assert!(aggregate_ops > 0);
}

#[test]
fn experiment_graph_accumulates_consistently() {
    let data = data();
    let srv = server(MaterializerKind::StorageAware, ReuseKind::Linear, u64::MAX);
    let mut seen_vertices = 0;
    for dag in kaggle::all_workloads(&data).unwrap() {
        srv.run_workload(dag).unwrap();
        let eg = srv.eg();
        let n = eg.n_vertices();
        assert!(n >= seen_vertices, "EG must only grow");
        seen_vertices = n;
        // Structural invariants: parents precede children in topo order,
        // and every edge endpoint exists.
        let order = eg.topo_order();
        let position: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for v in eg.vertices() {
            for p in &v.parents {
                assert!(
                    position[p] < position[&v.id],
                    "parent after child in topo order"
                );
            }
            for c in &v.children {
                assert!(eg.contains(*c));
            }
        }
    }
    // Frequencies: artifacts shared across workloads appear more often.
    let eg = srv.eg();
    let max_freq = eg.vertices().map(|v| v.frequency).max().unwrap();
    assert!(
        max_freq >= 4,
        "shared FE artifacts should recur, max freq = {max_freq}"
    );
}

#[test]
fn budget_is_respected_under_pressure() {
    let data = data();
    for budget in [1 << 18, 1 << 20, 1 << 22] {
        let srv = server(MaterializerKind::StorageAware, ReuseKind::Linear, budget);
        run_sequence(&srv, kaggle::all_workloads(&data).unwrap()).unwrap();
        let (_, unique, logical) = srv.storage_stats();
        // Sources are stored unconditionally and form the only permitted
        // overflow.
        let eg = srv.eg();
        let source_bytes: u64 = eg
            .sources()
            .iter()
            .filter_map(|id| eg.vertex(*id).ok().map(|v| v.size))
            .sum();
        drop(eg);
        assert!(
            unique <= budget.max(source_bytes) + source_bytes,
            "budget {budget}: unique {unique} (sources {source_bytes})"
        );
        // Dedup never loses bytes: logical >= unique.
        assert!(logical >= unique);
    }
}

#[test]
fn stored_artifacts_round_trip_through_the_graph() {
    let data = data();
    let srv = server(MaterializerKind::All, ReuseKind::Linear, u64::MAX);
    let (executed, _) = srv.run_workload(kaggle::w2(&data).unwrap()).unwrap();
    let eg = srv.eg();
    for node in executed.nodes() {
        let Some(original) = &node.computed else {
            continue;
        };
        if !eg.is_materialized(node.artifact) {
            continue;
        }
        let stored = eg
            .storage()
            .get(node.artifact)
            .expect("materialized content");
        match (original, &stored) {
            (co_graph::Value::Dataset(a), co_graph::Value::Dataset(b)) => {
                assert_eq!(a.n_rows(), b.n_rows());
                assert_eq!(a.column_ids(), b.column_ids());
                assert_eq!(a.nbytes(), b.nbytes());
            }
            (a, b) => assert_eq!(a.kind(), b.kind()),
        }
    }
}

#[test]
fn local_pruner_skips_interactive_recomputation() {
    // Simulate a Jupyter session: the user already computed the FE table
    // in an earlier cell; resubmitting the full script must not re-run
    // its upstream operations.
    let data = data();
    let srv = server(MaterializerKind::None, ReuseKind::None, 0);
    let (first, baseline) = srv.run_workload(kaggle::w2(&data).unwrap()).unwrap();

    let mut dag = kaggle::w2(&data).unwrap();
    // Copy the computed value of the feature table (the largest dataset
    // terminal) into the fresh DAG, as the notebook kernel would hold it.
    let feature_terminal = first
        .terminals()
        .into_iter()
        .find(|t| first.node(*t).unwrap().kind == co_graph::NodeKind::Dataset)
        .expect("w2 outputs its feature table");
    let value = first
        .node(feature_terminal)
        .unwrap()
        .computed
        .clone()
        .unwrap();
    dag.set_computed(feature_terminal, value).unwrap();

    let (_, rerun) = srv.run_workload(dag).unwrap();
    assert!(
        rerun.ops_executed < baseline.ops_executed / 2,
        "pruner must skip the computed subtree: {} vs {}",
        rerun.ops_executed,
        baseline.ops_executed
    );
}
