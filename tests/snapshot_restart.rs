//! Server-restart behavior: the Experiment Graph's meta-data survives
//! through a snapshot; contents repopulate as workloads execute.

use co_core::{OptimizerServer, ServerConfig};
use co_graph::snapshot;
use co_workloads::data::{home_credit, HomeCreditScale};
use co_workloads::kaggle;

#[test]
fn restart_keeps_meta_and_regains_reuse() {
    let data = home_credit(&HomeCreditScale::tiny());

    // Session 1: run two workloads, snapshot the graph.
    let first = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    first.run_workload(kaggle::w1(&data).unwrap()).unwrap();
    first.run_workload(kaggle::w2(&data).unwrap()).unwrap();
    let text = snapshot::to_snapshot(&first.eg()).unwrap();
    let n_before = first.eg().n_vertices();

    // Session 2 (after a "restart"): restore the meta-data.
    let restored = snapshot::from_snapshot(&text, true).unwrap();
    assert_eq!(restored.n_vertices(), n_before);
    let second =
        OptimizerServer::with_graph(ServerConfig::collaborative(u64::MAX), restored).unwrap();

    // The graph knows every artifact of W1 (frequencies, costs) but holds
    // no content, so the first resubmission recomputes —
    let (_, rerun) = second.run_workload(kaggle::w1(&data).unwrap()).unwrap();
    assert_eq!(rerun.artifacts_loaded, 0, "no content right after restart");
    assert!(rerun.ops_executed > 0);
    // — and frequencies carried over: W1's artifacts now have f >= 2.
    {
        let eg = second.eg();
        let w1 = kaggle::w1(&data).unwrap();
        let some_artifact = w1.nodes().last().unwrap().artifact;
        assert!(eg.vertex(some_artifact).unwrap().frequency >= 2);
    }

    // The updater re-materialized during that run: the *next* repeat
    // reuses again, as before the restart.
    let (_, repeat) = second.run_workload(kaggle::w1(&data).unwrap()).unwrap();
    assert!(
        repeat.artifacts_loaded > 0,
        "reuse regained after repopulation"
    );
    assert!(repeat.run_seconds() < rerun.run_seconds() / 2.0);
}

#[test]
fn restore_rejects_mismatched_dedup_mode() {
    let data = home_credit(&HomeCreditScale::tiny());
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    server.run_workload(kaggle::w1(&data).unwrap()).unwrap();
    let text = snapshot::to_snapshot(&server.eg()).unwrap();

    // Restored with a plain (non-dedup) store, but the storage-aware
    // materializer budgets deduplicated bytes: the constructor refuses.
    let plain = snapshot::from_snapshot(&text, false).unwrap();
    let err = OptimizerServer::with_graph(ServerConfig::collaborative(u64::MAX), plain);
    assert!(matches!(
        err,
        Err(co_graph::GraphError::InvalidStructure(_))
    ));

    // And the other way around: a dedup store under a baseline config.
    let dedup = snapshot::from_snapshot(&text, true).unwrap();
    let err = OptimizerServer::with_graph(ServerConfig::baseline(), dedup);
    assert!(matches!(
        err,
        Err(co_graph::GraphError::InvalidStructure(_))
    ));
}

#[test]
fn snapshot_is_stable_across_round_trips() {
    let data = home_credit(&HomeCreditScale::tiny());
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    server.run_workload(kaggle::w4(&data).unwrap()).unwrap();
    let once = snapshot::to_snapshot(&server.eg()).unwrap();
    let twice = snapshot::to_snapshot(&snapshot::from_snapshot(&once, true).unwrap()).unwrap();
    assert_eq!(once, twice, "snapshot must be a fixpoint");
}
