//! Durable restart: run a workload against a server opened from a data
//! directory, "crash" it (drop the process state), reopen from the same
//! directory, and watch the recovered Experiment Graph plan with full
//! cost information — frequencies, compute times, and materialization
//! flags all survive; only artifact *content* streams back in as
//! workloads re-execute (see DESIGN.md §10).
//!
//! The second half shows the *graded* failure mode (DESIGN.md §15): the
//! disk filling up mid-session does NOT require a restart. Publishes
//! are rejected with a retriable read-only error while reads keep
//! serving, and once space is back one repair call (or the background
//! repair loop of `co-serve`) drains the queued deltas and returns the
//! server to full health.
//!
//! ```sh
//! cargo run --release -p co-workloads --example durable_restart
//! ```

use co_core::ops::EvalMetric;
use co_core::{DurabilityConfig, DurabilityHealth, OptimizerServer, Script, ServerConfig};
use co_dataframe::{Column, ColumnData, DataFrame};
use co_graph::{FaultInjector, IoFault, WorkloadDag};
use co_ml::linear::LogisticParams;
use std::sync::Arc;

fn toy_dataset() -> DataFrame {
    let n = 1500;
    let mut x1 = Vec::with_capacity(n);
    let mut x2 = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let a = (i % 13) as f64 / 13.0;
        let b = (i % 7) as f64 / 7.0;
        x1.push(a);
        x2.push(b);
        y.push(i64::from(a + b > 1.0));
    }
    DataFrame::new(vec![
        Column::source("events.csv", "x1", ColumnData::Float(x1)),
        Column::source("events.csv", "x2", ColumnData::Float(x2)),
        Column::source("events.csv", "y", ColumnData::Int(y)),
    ])
    .expect("equal-length columns")
}

fn workload() -> WorkloadDag {
    let mut s = Script::new();
    let train = s.load("events.csv", toy_dataset());
    let features = s
        .scale(train, co_ml::feature::ScaleKind::Standard, &["x1", "x2"])
        .unwrap();
    let model = s
        .train_logistic(features, "y", LogisticParams::default())
        .unwrap();
    let score = s
        .evaluate(model, features, "y", EvalMetric::RocAuc)
        .unwrap();
    s.output(score).unwrap();
    s.into_dag()
}

fn main() {
    let dir = std::env::temp_dir().join("co_durable_restart_example");
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig::collaborative(1 << 30);

    println!("== session 1: fresh data directory ==");
    let (server, recovery) =
        OptimizerServer::open(config, DurabilityConfig::new(&dir)).expect("open data dir");
    println!("{}", recovery.render());
    let (_, report) = server.run_workload(workload()).expect("workload runs");
    println!(
        "executed {} operations; the committed delta is in the write-ahead journal",
        report.ops_executed
    );
    // Simulate a crash: the process state is simply dropped. Nothing
    // was shut down cleanly — durability must not depend on that.
    drop(server);

    println!("\n== session 2: reopened from {} ==", dir.display());
    let (server, recovery) =
        OptimizerServer::open(config, DurabilityConfig::new(&dir)).expect("reopen data dir");
    println!("{}", recovery.render());
    let eg = server.eg();
    println!(
        "recovered graph: {} vertices, {} flagged materialized",
        eg.n_vertices(),
        eg.topo_order()
            .iter()
            .filter(|id| eg.was_materialized(**id))
            .count()
    );
    drop(eg);

    let (_, report) = server.run_workload(workload()).expect("resubmission runs");
    println!(
        "resubmission: executed {} operations, skipped {} (recovered meta-data priced the plan)",
        report.ops_executed, report.nodes_skipped
    );

    server.compact().expect("compaction");
    println!(
        "compacted journal into snapshot ({} so far)",
        server.stats().snapshots_compacted
    );

    // The disk fills up mid-session. The old behavior was a permanent
    // wedge ("restart required"); now the server degrades to read-only
    // and heals itself once space is back — same process, no restart.
    println!("\n== the disk fills up (injected ENOSPC) ==");
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));
    faults.arm_io_fault(IoFault::Enospc, usize::MAX);
    let err = server
        .run_workload(workload())
        .expect_err("publish cannot persist");
    println!(
        "publish rejected: {} (transient: {})",
        err.error,
        err.error.is_transient()
    );
    println!(
        "health = {:?}; {} delta(s) queued for repair; reads still serve",
        server.durability_health(),
        server.backlog_len()
    );
    server
        .explain(workload())
        .expect("planning still works read-only");

    println!("\n== space freed: self-heal without restart ==");
    faults.clear_io_faults();
    server.try_repair().expect("repair runs once faults clear");
    assert_eq!(server.durability_health(), DurabilityHealth::Healthy);
    println!(
        "health = {:?}; backlog drained to {}; publishes flow again",
        server.durability_health(),
        server.backlog_len()
    );
    let (_, report) = server.run_workload(workload()).expect("healed");
    println!("post-recovery workload: {} operations", report.ops_executed);
    let _ = std::fs::remove_dir_all(&dir);
}
