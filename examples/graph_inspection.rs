//! Inspecting a live collaborative environment: the EXPLAIN view of an
//! incoming workload, the Experiment Graph dashboard statistics, the
//! model leaderboard / hyperparameter advisor (the paper's §9 future
//! work), and a Graphviz rendering of a workload DAG (paper Figure 1).
//!
//! ```sh
//! cargo run --release -p co-workloads --example graph_inspection
//! ```

use co_core::advisor;
use co_core::{OptimizerServer, ServerConfig};
use co_graph::export::{eg_stats, workload_to_dot};
use co_workloads::data::creditg;
use co_workloads::openml::pipeline;

fn main() {
    let data = creditg(1000, 0);
    let server = OptimizerServer::new(ServerConfig::collaborative(64 << 20));

    println!("simulating 40 community submissions...");
    for i in 0..40 {
        server
            .run_workload(pipeline(&data, i, 11).expect("builds"))
            .expect("runs");
    }

    // 1. EXPLAIN an incoming workload before running it.
    println!("\n== EXPLAIN: what would running pipeline #3 again cost? ==");
    let plan = server
        .explain(pipeline(&data, 3, 11).expect("builds"))
        .expect("plans");
    println!("{plan}");

    // 2. Graph dashboard.
    let stats = eg_stats(&server.eg());
    println!("== Experiment Graph ==");
    println!(
        "{} vertices ({} datasets, {} models, {} aggregates), {} materialized",
        stats.n_vertices,
        stats.n_datasets,
        stats.n_models,
        stats.n_aggregates,
        stats.n_materialized
    );
    println!(
        "store: {:.2} MiB unique / {:.2} MiB logical; best model quality {:.3}; max frequency {}",
        stats.stored_unique_bytes as f64 / (1 << 20) as f64,
        stats.stored_logical_bytes as f64 / (1 << 20) as f64,
        stats.best_model_quality,
        stats.max_frequency
    );
    let lifetime = server.stats();
    println!(
        "lifetime: {} workloads, {} ops executed, {} artifacts served, ~{:.3}s saved",
        lifetime.workloads,
        lifetime.ops_executed,
        lifetime.artifacts_loaded,
        lifetime.seconds_saved()
    );

    // 3. The community leaderboard and hyperparameter advice (paper §9).
    println!("\n== model leaderboard (top 5) ==");
    for (i, entry) in advisor::leaderboard(&server.eg(), 5).iter().enumerate() {
        println!(
            "{}. q={:.3}  f={}  depth={}  {}{}",
            i + 1,
            entry.quality,
            entry.frequency,
            entry.pipeline_depth,
            entry.description,
            if entry.materialized {
                "  [materialized]"
            } else {
                ""
            }
        );
    }

    // 4. Render a workload DAG for the paper's Figure-1-style view.
    let mut dag = pipeline(&data, 3, 11).expect("builds");
    dag.prune().expect("has terminals");
    let dot = workload_to_dot(&dag);
    let path = std::env::temp_dir().join("co_workload.dot");
    std::fs::write(&path, &dot).expect("writable temp dir");
    println!(
        "\nworkload DAG rendered to {} ({} bytes; `dot -Tpng` to view)",
        path.display(),
        dot.len()
    );
}
