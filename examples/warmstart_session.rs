//! Warmstarting (paper §6.2, Figure 10): a session that trains
//! iteration-capped logistic-regression models with varying
//! hyperparameters. With warmstarting on, each training operation is
//! initialised from the best materialized model trained on the same
//! artifact, converging faster and (under the iteration cap) to better
//! solutions.
//!
//! ```sh
//! cargo run --release -p co-workloads --example warmstart_session
//! ```

use co_core::ops::EvalMetric;
use co_core::{OptimizerServer, Script, ServerConfig};
use co_graph::WorkloadDag;
use co_ml::feature::ScaleKind;
use co_ml::linear::LogisticParams;
use co_workloads::data::creditg;
use co_workloads::runner::terminal_eval_score;

fn training_workload(data: &co_workloads::data::CreditG, lr: f64, max_iter: usize) -> WorkloadDag {
    let mut s = Script::new();
    let train = s.load("creditg_train", data.train.clone());
    let test = s.load("creditg_test", data.test.clone());
    let cols: Vec<&str> = (0..10)
        .map(|i| Box::leak(format!("a{i}").into_boxed_str()) as &str)
        .collect();
    let fe_train = s.scale(train, ScaleKind::Standard, &cols).unwrap();
    let fe_test = s.scale(test, ScaleKind::Standard, &cols).unwrap();
    let model = s
        .train_logistic(
            fe_train,
            "class",
            LogisticParams {
                lr,
                max_iter,
                tol: 1e-7,
                l2: 1e-4,
            },
        )
        .unwrap();
    let score = s
        .evaluate(model, fe_test, "class", EvalMetric::RocAuc)
        .unwrap();
    s.output(score).unwrap();
    s.into_dag()
}

fn run_session(warmstart: bool, data: &co_workloads::data::CreditG) -> (f64, f64, usize) {
    let mut config = ServerConfig::collaborative(64 << 20);
    config.warmstart = warmstart;
    let server = OptimizerServer::new(config);
    let mut total_time = 0.0;
    let mut total_score = 0.0;
    let mut warmstarts = 0;
    // A sweep of learning rates under a tight iteration cap: every run
    // trains a *different* model (no exact reuse possible), but each can
    // warmstart from its predecessors.
    for (i, lr) in [
        0.02, 0.03, 0.05, 0.04, 0.06, 0.025, 0.045, 0.035, 0.055, 0.015,
    ]
    .iter()
    .enumerate()
    {
        let dag = training_workload(data, *lr, 40 + i);
        let (executed, report) = server.run_workload(dag).expect("runs");
        total_time += report.run_seconds();
        total_score += terminal_eval_score(&executed).unwrap_or(0.0);
        warmstarts += report.warmstarts;
    }
    (total_time, total_score / 10.0, warmstarts)
}

fn main() {
    let data = creditg(1000, 0);
    println!("session without warmstarting (CO-W)...");
    let (cold_time, cold_auc, _) = run_session(false, &data);
    println!("session with warmstarting (CO+W)...");
    let (warm_time, warm_auc, warmstarts) = run_session(true, &data);

    println!("\n                 time (ms)   mean test AUC");
    println!("CO-W (cold)      {:>8.1}   {cold_auc:.4}", cold_time * 1e3);
    println!("CO+W (warm)      {:>8.1}   {warm_auc:.4}", warm_time * 1e3);
    println!("\n{warmstarts} of 10 training operations were warmstarted");
    println!(
        "warmstarting changed training time by {:.0}% and mean AUC by {:+.4}",
        (warm_time / cold_time - 1.0) * 100.0,
        warm_auc - cold_auc
    );
}
