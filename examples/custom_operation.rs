//! Extending the optimizer with a user-defined operation — the paper's
//! Listing 2 (`class Sample(DataOperation)`), in Rust: implement
//! [`co_graph::Operation`] with a name, a parameter digest, an output
//! kind, and a `run` body; the framework handles hashing, artifact
//! identity, materialization, and reuse.
//!
//! ```sh
//! cargo run --release -p co-workloads --example custom_operation
//! ```

use co_core::{OptimizerServer, ServerConfig};
use co_dataframe::{Column, ColumnData, DataFrame};
use co_graph::{GraphError, NodeKind, Operation, Value, WorkloadDag};
use std::sync::Arc;

/// Listing 2's sampling operation: draw every `step`-th row starting at
/// `offset` (a deterministic systematic sample).
struct SystematicSample {
    step: usize,
    offset: usize,
}

impl Operation for SystematicSample {
    fn name(&self) -> &str {
        "systematic_sample"
    }

    fn params_digest(&self) -> String {
        format!("step={},offset={}", self.step, self.offset)
    }

    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }

    fn run(&self, inputs: &[&Value]) -> co_graph::Result<Value> {
        let df = inputs.first().and_then(|v| v.as_dataset()).ok_or_else(|| {
            GraphError::BadOperationInput {
                op: self.name().to_owned(),
                message: "expected one dataset input".to_owned(),
            }
        })?;
        let rows: Vec<usize> = (self.offset..df.n_rows()).step_by(self.step).collect();
        // take_rows keeps ids; a sample changes content, so derive them.
        let sampled = df
            .take_rows(&rows)
            .map_err(|e| GraphError::BadOperationInput {
                op: self.name().to_owned(),
                message: e.to_string(),
            })?
            .map_ids(|id| id.derive(self.op_hash()));
        Ok(Value::dataset(sampled))
    }
}

fn workload(step: usize) -> WorkloadDag {
    let data = DataFrame::new(vec![Column::source(
        "numbers",
        "x",
        ColumnData::Int((0..100_000).collect()),
    )])
    .expect("one column");
    let mut dag = WorkloadDag::new();
    let source = dag.add_source("numbers", Value::dataset(data));
    let sampled = dag
        .add_op(Arc::new(SystematicSample { step, offset: 0 }), &[source])
        .expect("valid input");
    dag.mark_terminal(sampled).expect("node exists");
    dag
}

fn main() {
    let server = OptimizerServer::new(ServerConfig::collaborative(1 << 30));

    let (dag, first) = server.run_workload(workload(10)).expect("runs");
    let terminal = dag.terminals()[0];
    let rows = dag
        .node(terminal)
        .unwrap()
        .computed
        .as_ref()
        .unwrap()
        .as_dataset()
        .unwrap()
        .n_rows();
    println!(
        "first run:  computed {rows} sampled rows in {:.2} ms",
        first.run_seconds() * 1e3
    );

    // The same custom operation re-submitted: served from the graph.
    let (_, second) = server.run_workload(workload(10)).expect("runs");
    println!(
        "second run: {} ops executed, {} artifacts loaded, {:.3} ms",
        second.ops_executed,
        second.artifacts_loaded,
        second.run_seconds() * 1e3
    );

    // Different parameters = a different operation = a new artifact.
    let (_, third) = server.run_workload(workload(7)).expect("runs");
    println!(
        "step=7 run: {} ops executed (different parameters are a new artifact)",
        third.ops_executed
    );
    assert_eq!(second.ops_executed, 0);
    assert_eq!(third.ops_executed, 1);
}
