//! Fault tolerance in action: transient retries, panic isolation,
//! partial-progress salvage, quarantine, load-miss degradation, and
//! graded storage degradation with self-healing (DESIGN.md §15).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use co_core::{DurabilityConfig, DurabilityHealth, OptimizerServer, ServerConfig};
use co_dataframe::Scalar;
use co_graph::{FaultInjector, FaultKind, IoFault, NodeKind, Operation, Value, WorkloadDag};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A step that burns a little compute and succeeds.
struct Step(&'static str);
impl Operation for Step {
    fn name(&self) -> &str {
        self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(std::time::Duration::from_millis(3));
        Ok(Value::Aggregate(Scalar::Float(1.0)))
    }
}

/// Fails permanently until its budget is refilled, like a broken
/// external dependency.
struct Brittle {
    ok_runs: Arc<AtomicUsize>,
}
impl Operation for Brittle {
    fn name(&self) -> &str {
        "brittle_step"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(std::time::Duration::from_millis(3));
        if self
            .ok_runs
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
        {
            Ok(Value::Aggregate(Scalar::Float(2.0)))
        } else {
            Err(co_graph::GraphError::op_failed(
                "brittle_step",
                "upstream service is down",
            ))
        }
    }
}

/// src → prep_a → prep_b → brittle_step → report_step (terminal)
fn pipeline(ok_runs: &Arc<AtomicUsize>) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let src = dag.add_source("events.csv", Value::Aggregate(Scalar::Float(0.0)));
    let a = dag.add_op(Arc::new(Step("prep_a")), &[src]).unwrap();
    let b = dag.add_op(Arc::new(Step("prep_b")), &[a]).unwrap();
    let c = dag
        .add_op(
            Arc::new(Brittle {
                ok_runs: Arc::clone(ok_runs),
            }),
            &[b],
        )
        .unwrap();
    let d = dag.add_op(Arc::new(Step("report_step")), &[c]).unwrap();
    dag.mark_terminal(d).unwrap();
    dag
}

fn main() {
    let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));

    // 1. A workload dies on its 4th of 5 steps. The server salvages the
    //    completed prefix instead of throwing it away.
    println!("== failing run: brittle_step's dependency is down ==");
    let broken = Arc::new(AtomicUsize::new(0));
    let err = server
        .run_workload(pipeline(&broken))
        .expect_err("must fail");
    println!("error: {err}");
    println!(
        "salvaged {} of {} vertices into the Experiment Graph",
        err.untainted(),
        err.tainted.len()
    );

    // 2. The dependency comes back. Resubmission reuses the salvaged
    //    prefix: prep_a/prep_b never run again.
    println!("\n== resubmission after the dependency recovers ==");
    let fixed = Arc::new(AtomicUsize::new(usize::MAX));
    let (_, report) = server.run_workload(pipeline(&fixed)).expect("must pass");
    println!(
        "executed {} operations (prefix reused), loaded {} artifacts",
        report.ops_executed, report.artifacts_loaded
    );

    // 3. Transient flakes retry transparently under the default policy.
    println!("\n== transient flakes on a fresh server ==");
    let flaky_server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let faults = Arc::new(FaultInjector::new());
    faults.fail_op("prep_b", FaultKind::Transient, 2);
    flaky_server.set_fault_injector(Arc::clone(&faults));
    let (_, report) = flaky_server
        .run_workload(pipeline(&fixed))
        .expect("retries absorb it");
    println!(
        "succeeded after {} retries; client saw no error",
        report.retries
    );

    // 4. Panicking user code becomes a structured error, not a dead
    //    server. (Fresh server: on `flaky_server` the terminal artifact
    //    is already materialized, so report_step would never re-run and
    //    the injected panic would never fire — reuse shadows the fault.)
    println!("\n== a user op that panics ==");
    let panic_server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let panic_faults = Arc::new(FaultInjector::new());
    panic_faults.fail_op("report_step", FaultKind::Panic, 1);
    panic_server.set_fault_injector(Arc::clone(&panic_faults));
    let err = panic_server
        .run_workload(pipeline(&fixed))
        .expect_err("panic surfaces");
    println!("caught: {}", err.error);
    println!("panics_caught = {}", err.report.panics_caught);

    // 5. The store loses artifacts behind the planner's back; the
    //    executor recomputes instead of erroring.
    println!("\n== store loses its contents mid-plan ==");
    for n in 0..64 {
        faults.fail_nth_load(n);
    }
    let (_, report) = flaky_server
        .run_workload(pipeline(&fixed))
        .expect("degrades cleanly");
    println!(
        "recovered {} planned loads by recomputing ({} ops executed)",
        report.load_misses_recovered, report.ops_executed
    );

    // 6. Repeat offenders are quarantined and fast-failed.
    println!("\n== quarantine after repeated permanent failures ==");
    let q_server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
    let dead = Arc::new(AtomicUsize::new(0));
    for attempt in 1..=4 {
        let err = q_server
            .run_workload(pipeline(&dead))
            .expect_err("still broken");
        println!("attempt {attempt}: {}", err.error);
    }
    let quarantined = q_server
        .quarantine()
        .expect("enabled by default")
        .quarantined();
    println!("quarantined ops: {quarantined:?}");

    // 7. An operator fixes the dependency and releases the op; the next
    //    submission runs it again.
    let dag = pipeline(&dead);
    let brittle_hash = dag
        .producer(co_graph::NodeId(3))
        .expect("brittle edge")
        .op
        .op_hash();
    q_server.quarantine().unwrap().release(brittle_hash);
    dead.store(usize::MAX, Ordering::SeqCst);
    let (_, report) = q_server.run_workload(dag).expect("released and fixed");
    println!(
        "after release: executed {} operations, workload ok",
        report.ops_executed
    );

    // 8. Storage faults degrade gracefully too: a durable server whose
    //    disk fills up mid-run rejects publishes with a *retriable*
    //    read-only error (reads, reuse and planning keep serving),
    //    queues the unpersisted deltas, and heals itself the moment
    //    space is back — transient ENOSPC never needs a restart.
    println!("\n== transient ENOSPC on a durable server ==");
    let dir = std::env::temp_dir().join("co_fault_tolerance_example");
    let _ = std::fs::remove_dir_all(&dir);
    let (durable, _) = OptimizerServer::open(
        ServerConfig::collaborative(u64::MAX),
        DurabilityConfig::new(&dir),
    )
    .expect("open data dir");
    let disk = Arc::new(FaultInjector::new());
    durable.set_fault_injector(Arc::clone(&disk));
    durable.run_workload(pipeline(&fixed)).expect("persists");

    disk.arm_io_fault(IoFault::Enospc, usize::MAX);
    let err = durable
        .run_workload(pipeline(&fixed))
        .expect_err("the journal append hits ENOSPC");
    println!(
        "publish rejected: {} (transient: {}); health = {:?}, backlog = {}",
        err.error,
        err.error.is_transient(),
        durable.durability_health(),
        durable.backlog_len()
    );

    disk.clear_io_faults();
    durable.try_repair().expect("space is back; repair heals");
    assert_eq!(durable.durability_health(), DurabilityHealth::Healthy);
    let (_, report) = durable.run_workload(pipeline(&fixed)).expect("healed");
    println!(
        "after repair: health = {:?}, backlog = {}, workload ran {} ops — no restart",
        durable.durability_health(),
        durable.backlog_len(),
        report.ops_executed
    );
    let _ = std::fs::remove_dir_all(&dir);

    println!("\nserver stats: {:?}", q_server.stats());
}
