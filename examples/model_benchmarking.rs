//! The model-benchmarking scenario (paper §7.3, Figure 8): a stream of
//! OpenML-style pipelines where every non-improving submission re-runs
//! the current best ("gold standard") workload for comparison. With the
//! collaborative optimizer the gold standard's artifacts are served from
//! the Experiment Graph.
//!
//! ```sh
//! cargo run --release -p co-workloads --example model_benchmarking
//! ```

use co_core::{OptimizerServer, ServerConfig};
use co_workloads::data::creditg;
use co_workloads::openml::model_benchmark_scenario;

fn main() {
    let data = creditg(1000, 0);
    let n = 150;

    println!("running {n} pipelines with the collaborative optimizer...");
    let co = OptimizerServer::new(ServerConfig::collaborative(64 << 20));
    let co_steps = model_benchmark_scenario(&co, &data, n, 17).expect("scenario runs");

    println!("running {n} pipelines with the OpenML baseline (no reuse)...");
    let oml = OptimizerServer::new(ServerConfig::baseline());
    let oml_steps = model_benchmark_scenario(&oml, &data, n, 17).expect("scenario runs");

    let total = |steps: &[co_workloads::openml::BenchmarkStep]| -> f64 {
        steps.iter().map(|s| s.run_seconds).sum()
    };
    let best = co_steps.iter().map(|s| s.score).fold(0.0f64, f64::max);

    println!("\ngold-standard progression (CO):");
    let mut last_gold = usize::MAX;
    for (i, step) in co_steps.iter().enumerate() {
        if step.gold != last_gold {
            println!(
                "  workload {:>3} becomes the gold standard (AUC {:.3})",
                i, step.score
            );
            last_gold = step.gold;
        }
    }
    println!("\nbest model AUC:        {best:.3}");
    println!("CO  cumulative time:   {:.2} s", total(&co_steps));
    println!("OML cumulative time:   {:.2} s", total(&oml_steps));
    println!(
        "improvement:           {:.1}x",
        total(&oml_steps) / total(&co_steps).max(1e-9)
    );
}
