//! The motivating Kaggle scenario (paper §2): users copy, re-run, and
//! modify three published kernels. This example runs the eight Table-1
//! workloads through the collaborative optimizer and the no-reuse
//! baseline and prints the cumulative run-time comparison.
//!
//! ```sh
//! cargo run --release -p co-workloads --example kaggle_home_credit
//! ```

use co_core::{OptimizerServer, ServerConfig};
use co_workloads::data::{home_credit, HomeCreditScale};
use co_workloads::kaggle;
use co_workloads::runner::{cumulative_run_times, run_sequence};

fn main() {
    let scale = HomeCreditScale {
        application_rows: 2000,
        ..HomeCreditScale::default()
    };
    println!(
        "generating synthetic Home Credit data ({} applications)...",
        scale.application_rows
    );
    let data = home_credit(&scale);

    // Budget: an eighth of the ALL footprint, like the paper's 16 GB of
    // 130 GB. Estimated from one baseline pass below; a fixed generous
    // value works for the example.
    let budget = 256 << 20;

    println!("running W1..W8 with the collaborative optimizer (SA + LN)...");
    let co = OptimizerServer::new(ServerConfig::collaborative(budget));
    let co_reports =
        run_sequence(&co, kaggle::all_workloads(&data).expect("workloads build")).expect("runs");

    println!("running W1..W8 with the baseline (no reuse)...");
    let kg = OptimizerServer::new(ServerConfig::baseline());
    let kg_reports =
        run_sequence(&kg, kaggle::all_workloads(&data).expect("workloads build")).expect("runs");

    let co_cum = cumulative_run_times(&co_reports);
    let kg_cum = cumulative_run_times(&kg_reports);

    println!("\nworkload  CO cumulative (s)  KG cumulative (s)  loads  ops");
    for i in 0..8 {
        println!(
            "W{}        {:>14.2}     {:>14.2}   {:>4}  {:>4}",
            i + 1,
            co_cum[i],
            kg_cum[i],
            co_reports[i].artifacts_loaded,
            co_reports[i].ops_executed,
        );
    }
    let saved = (1.0 - co_cum[7] / kg_cum[7]) * 100.0;
    println!("\ncollaborative optimizer saves {saved:.0}% of the cumulative run time");
    let (artifacts, unique, logical) = co.storage_stats();
    println!(
        "experiment graph holds {} artifacts: {:.1} MiB unique, {:.1} MiB logical (dedup ratio {:.1}x)",
        artifacts,
        unique as f64 / (1 << 20) as f64,
        logical as f64 / (1 << 20) as f64,
        logical as f64 / unique.max(1) as f64
    );
}
