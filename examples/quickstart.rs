//! Quickstart: the paper's Listing 1 workload, executed twice through the
//! collaborative optimizer to show artifact reuse.
//!
//! ```sh
//! cargo run --release -p co-workloads --example quickstart
//! ```

use co_core::ops::EvalMetric;
use co_core::{OptimizerServer, Script, ServerConfig};
use co_dataframe::{Column, ColumnData, DataFrame};
use co_graph::WorkloadDag;
use co_ml::feature::VectorizerParams;
use co_ml::linear::SvmParams;

/// The ads dataset of Listing 1: description text, timestamp, user,
/// price, and a purchase label.
fn ads_dataset() -> DataFrame {
    let phrases = [
        "great red shoes for sale",
        "cheap blue hat",
        "vintage red hat almost new",
        "brand new laptop fast",
        "old laptop good price",
        "red shoes barely used",
        "designer hat sale",
        "fast bike for city",
        "bike with new tires cheap",
        "gaming laptop high end",
    ];
    let n = 2000;
    let mut desc = Vec::with_capacity(n);
    let mut ts = Vec::with_capacity(n);
    let mut u_id = Vec::with_capacity(n);
    let mut price = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let phrase = phrases[i % phrases.len()];
        desc.push(phrase.to_owned());
        ts.push(i as f64);
        u_id.push((i % 97) as f64);
        let p = 5.0 + (i % 50) as f64;
        price.push(p);
        // Cheap ads with "sale"/"cheap" in the text sell more often.
        let hot = phrase.contains("sale") || phrase.contains("cheap");
        y.push(i64::from(hot && p < 40.0));
    }
    DataFrame::new(vec![
        Column::source("train.csv", "ad_desc", ColumnData::Str(desc)),
        Column::source("train.csv", "ts", ColumnData::Float(ts)),
        Column::source("train.csv", "u_id", ColumnData::Float(u_id)),
        Column::source("train.csv", "price", ColumnData::Float(price)),
        Column::source("train.csv", "y", ColumnData::Int(y)),
    ])
    .expect("equal-length columns")
}

/// Listing 1, line by line.
fn listing1_workload() -> WorkloadDag {
    let mut s = Script::new();
    let train = s.load("train.csv", ads_dataset());
    let ad_desc = s.select(train, &["ad_desc"]).unwrap();
    let count_vectorized = s
        .count_vectorize(
            ad_desc,
            "ad_desc",
            VectorizerParams {
                max_features: 50,
                min_token_len: 2,
            },
        )
        .unwrap();
    let t_subset = s.select(train, &["ts", "u_id", "price", "y"]).unwrap();
    let top_features = s.select_k_best(t_subset, "y", 2).unwrap();
    let y = s.select(train, &["y"]).unwrap();
    let x = s.hconcat(&[count_vectorized, top_features, y]).unwrap();
    let model = s.train_svm(x, "y", SvmParams::default()).unwrap();
    let score = s.evaluate(model, x, "y", EvalMetric::RocAuc).unwrap();
    s.output(model).unwrap();
    s.output(score).unwrap();
    s.into_dag()
}

fn main() {
    // A collaborative server with an effectively unlimited budget.
    let server = OptimizerServer::new(ServerConfig::collaborative(1 << 30));

    println!("== first run (cold Experiment Graph) ==");
    let (dag, first) = server
        .run_workload(listing1_workload())
        .expect("workload runs");
    let score = co_workloads::runner::terminal_eval_score(&dag).unwrap_or(0.0);
    println!(
        "executed {} operations in {:.1} ms; model AUC = {score:.3}",
        first.ops_executed,
        first.run_seconds() * 1e3,
    );

    println!("\n== second run (same script, re-submitted) ==");
    let (_, second) = server
        .run_workload(listing1_workload())
        .expect("workload runs");
    println!(
        "executed {} operations, loaded {} artifacts, in {:.3} ms",
        second.ops_executed,
        second.artifacts_loaded,
        second.run_seconds() * 1e3,
    );

    let speedup = first.run_seconds() / second.run_seconds().max(1e-9);
    println!("\nspeedup from reuse: {speedup:.0}x");
    let (artifacts, unique, logical) = server.storage_stats();
    println!(
        "experiment graph: {} materialized artifacts, {:.1} KiB unique / {:.1} KiB logical",
        artifacts,
        unique as f64 / 1024.0,
        logical as f64 / 1024.0
    );
    assert!(second.run_seconds() < first.run_seconds());
}
