//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s API shape and its
//! key semantic difference: locks are **not poisoned** by panics. A
//! panicking lock holder releases the lock and later acquisitions
//! proceed normally — exactly the behaviour the optimizer server relies
//! on for fault isolation.

use std::sync::PoisonError;

/// A non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

/// A non-poisoning mutex.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_survives_panicking_holder() {
        let lock = std::sync::Arc::new(RwLock::new(1));
        let l2 = std::sync::Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 1); // no poisoning
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let lock = std::sync::Arc::new(Mutex::new(7));
        let l2 = std::sync::Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.lock(), 7);
    }
}
