//! Minimal offline stand-in for the `criterion` crate.
//!
//! Benchmarks compile and run: each `iter` body executes a fixed small
//! number of iterations and the mean wall-clock time is printed. No
//! statistics, no reports — just enough to keep `cargo bench` (and
//! `cargo test --benches`) working offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_ITERS: u64 = 10;

/// Batch sizing hints (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// A named benchmark id: `BenchmarkId::new(name, parameter)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs benchmark bodies and records elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / iters.max(1) as f64;
    println!("bench {label:50} {:>12.3} µs/iter", mean * 1e6);
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 100);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.iters, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.iters, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: DEFAULT_ITERS, _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_ITERS, &mut f);
        self
    }
}

/// Declares a benchmark-group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
