//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `collection::vec`,
//! `bool::ANY`, `sample::select`, `Just`, `prop_map`, and
//! `prop_flat_map`. Cases are generated deterministically from a seed
//! derived from the test name; there is **no shrinking** — failures
//! report the case number and the generated inputs' `Debug` output is
//! left to the assertion message.

use std::ops::{Range, RangeInclusive};

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_B00C }
    }

    /// Seed derived from a test's name so distinct tests explore
    /// distinct streams, stably across runs.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator. Unlike real proptest there is no intermediate
/// value tree and no shrinking: strategies generate values directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed length or a range
    /// (upstream's `Into<SizeRange>`).
    pub trait IntoSizeRange {
        /// As a half-open `(start, end)` pair.
        fn into_size_range(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: (usize, usize),
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, size: size.into_size_range() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let (start, end) = self.size;
            assert!(start < end, "empty vec size range");
            let len = start + rng.below((end - start).max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy selecting uniformly from a fixed set.
    pub struct Select<T: Clone>(Vec<T>);

    /// `proptest::sample::select`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty set");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

/// The test-definition macro. Each `fn name(args in strategies) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        case + 1, config.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::bool as prop_bool;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (0u8..4, crate::bool::ANY)) {
            prop_assert!(x < 10);
            prop_assert!(a < 4);
            prop_assert!(b || !b);
        }

        fn vec_lengths(v in crate::collection::vec(0i64..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    proptest! {
        fn combinators(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(Just(n), n..n + 1))) {
            prop_assert_eq!(v.len(), v[0]);
        }

        fn select_picks_members(c in crate::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&c));
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
