//! Minimal offline stand-in for the `rand` crate (0.10 API surface).
//!
//! Implements exactly what this workspace uses: `rngs::StdRng` (a seeded
//! xoshiro256++), `SeedableRng::seed_from_u64`, the `RngExt` helpers
//! `random` / `random_range`, and `seq::SliceRandom::shuffle`.
//! Deterministic for a given seed, like the real `StdRng`, though the
//! streams differ from upstream `rand`.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the full domain (floats: `[0, 1)`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over a half-open or closed interval.
pub trait SampleUniform: Copy {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "empty range in random_range");
                let offset = (rng.next_u64() as u128) % (span as u128);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi },
                    "empty range in random_range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Ranges that can be sampled uniformly, producing a `T`. Parameterized
/// over the output type with *blanket* impls over `SampleUniform` (like
/// upstream `rand`) so the context drives inference:
/// `v[rng.random_range(0..3)]` makes `0..3` a `Range<usize>`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for code written against the pre-0.10 trait name.
pub use RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Seeded xoshiro256++ generator (the role `rand::rngs::StdRng`
    /// plays upstream: deterministic for a given seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let i = rng.random_range(3..5usize);
            assert!((3..5).contains(&i));
            let f = rng.random_range(-0.75..0.75);
            assert!((-0.75..0.75).contains(&f));
            let n = rng.random_range(-100i64..100);
            assert!((-100..100).contains(&n));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
