//! Minimal offline stand-in for the `crossbeam` crate: just
//! `crossbeam::thread::scope`, implemented over `std::thread::scope`.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to the scope closure; spawns scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. Like crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; joins all spawned threads before
    /// returning. Returns `Err` if any thread (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_observe_borrows() {
        let data = vec![1, 2, 3];
        let sum = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for &x in &data {
                scope.spawn(|_| {
                    sum.fetch_add(x, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(std::sync::atomic::Ordering::SeqCst), 6);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
